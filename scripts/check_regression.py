#!/usr/bin/env python
"""Compare a fresh BENCH_results.json against the committed baseline.

Usage:

    python scripts/check_regression.py \
        --baseline benchmarks/BENCH_results.json \
        --fresh /tmp/BENCH_fresh.json \
        [--tolerance 0.10] [--no-calibrate]

For every benchmark present in both files, fail (exit 1) when

    fresh_median > baseline_median * scale * (1 + tolerance)

where ``scale`` is the host-speed ratio
``fresh_calibration / baseline_calibration`` (1.0 when either file
lacks ``calibration_seconds`` or ``--no-calibrate`` is given).  The
calibration workload is pure Python with a fixed input, so the ratio
tracks how much slower/faster the current host is than the one that
produced the baseline — without it, CI machine variance would trip the
gate on unchanged code.

Benchmarks only in one file are reported but never fail the check
(benchmarks get added and removed across PRs) — *except* suites named
with ``--require PREFIX`` (repeatable): the fresh results must contain
at least one benchmark whose key starts with that prefix, so a suite
CI depends on (e.g. ``benchmarks/bench_durability.py``) cannot be
silently deleted or skipped without tripping the gate.

``--against seed`` switches the reference from the baseline file's
medians to the *seed-implementation* medians recorded inside the fresh
file itself (``seed_median_seconds``, the pre-acceleration evaluator's
timings).  That is the CI smoke gate: the current engine runs those
queries several times faster than the seed did, so host variance
cannot trip it, but an instrumentation change that destroyed the win
would.  Calibration is skipped in seed mode (the seed host is
unknown).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load(path: str) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def check_against_seed(fresh: dict, tolerance: float) -> int:
    """Fail when any benchmark is slower than its recorded seed median."""
    checked = 0
    regressions = []
    for name, entry in sorted(fresh.get("benchmarks", {}).items()):
        seed_median = entry.get("seed_median_seconds")
        fresh_median = entry.get("median_seconds")
        if not seed_median or not fresh_median:
            continue
        checked += 1
        ratio = fresh_median / seed_median
        status = "REGRESSION" if ratio > 1.0 + tolerance else "ok"
        print(f"{status:>10}  {ratio:5.2f}x of seed  {name}")
        if ratio > 1.0 + tolerance:
            regressions.append((name, ratio))
    if not checked:
        print("no benchmarks carry seed_median_seconds; nothing checked",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) slower than the seed "
              f"implementation by more than {tolerance:.0%}:",
              file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {ratio:5.2f}x  {name}", file=sys.stderr)
        return 1
    print(f"\nall {checked} seed-tracked benchmarks within "
          f"{tolerance:.0%} of their seed medians")
    return 0


def check_required(fresh: dict, prefixes: list[str]) -> int:
    """Exit-code contribution of ``--require``: 0 ok, 1 missing."""
    missing = []
    keys = fresh.get("benchmarks", {})
    for prefix in prefixes:
        count = sum(1 for key in keys if key.startswith(prefix))
        if count:
            print(f"required suite present: {prefix} "
                  f"({count} benchmark(s))")
        else:
            missing.append(prefix)
    for prefix in missing:
        print(f"REQUIRED suite missing from fresh results: {prefix}",
              file=sys.stderr)
    return 1 if missing else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_results.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_results.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown (default 0.10)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="skip host-speed normalisation")
    parser.add_argument("--against", choices=("baseline", "seed"),
                        default="baseline",
                        help="reference medians: the baseline file, or "
                             "the seed_median_seconds recorded in the "
                             "fresh file (CI smoke gate)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="PREFIX",
                        help="fail unless the fresh results contain a "
                             "benchmark key starting with PREFIX "
                             "(repeatable)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    required_status = check_required(fresh, args.require)

    if args.against == "seed":
        return check_against_seed(fresh, args.tolerance) or required_status

    scale = 1.0
    if not args.no_calibrate:
        base_cal = baseline.get("calibration_seconds")
        fresh_cal = fresh.get("calibration_seconds")
        if base_cal and fresh_cal:
            scale = fresh_cal / base_cal
            print(f"host calibration: baseline {base_cal:.4f}s, "
                  f"fresh {fresh_cal:.4f}s, scale {scale:.2f}x")
        else:
            print("calibration missing in one file; comparing raw medians")

    base_benches = baseline.get("benchmarks", {})
    fresh_benches = fresh.get("benchmarks", {})
    shared = sorted(set(base_benches) & set(fresh_benches))
    only_base = sorted(set(base_benches) - set(fresh_benches))
    only_fresh = sorted(set(fresh_benches) - set(base_benches))
    for name in only_base:
        print(f"note: baseline-only benchmark skipped: {name}")
    for name in only_fresh:
        print(f"note: new benchmark (no baseline): {name}")

    regressions = []
    for name in shared:
        base_median = base_benches[name].get("median_seconds")
        fresh_median = fresh_benches[name].get("median_seconds")
        if not base_median or not fresh_median:
            continue
        allowed = base_median * scale * (1.0 + args.tolerance)
        ratio = fresh_median / (base_median * scale)
        status = "REGRESSION" if fresh_median > allowed else "ok"
        print(f"{status:>10}  {ratio:5.2f}x  {name}")
        if fresh_median > allowed:
            regressions.append((name, ratio))

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.tolerance:.0%} (host-scaled):", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {ratio:5.2f}x  {name}", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} shared benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return required_status


if __name__ == "__main__":
    raise SystemExit(main())
