#!/usr/bin/env python
"""CI smoke test for ``repro serve`` — the full lifecycle, end to end.

Boots the server as a real subprocess on a durable data directory,
then checks the three facts the serving layer rests on:

* all 30 paper queries over the socket are **byte-identical** to the
  in-process answers (engine errors included — they are part of the
  canonical output);
* a prepared statement executes and matches its ad-hoc twin;
* SIGTERM drains gracefully: the process prints ``drained``, exits 0,
  and the data directory reopens cleanly afterwards.

Exits non-zero (with a message) on any violation.  Run as:

    PYTHONPATH=src python scripts/smoke_server.py
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.durability import DurableDatabase  # noqa: E402
from repro.server import ServerClient, render_payload  # noqa: E402
from repro.workload.paperqueries import (PAPER_QUERIES,  # noqa: E402
                                         load_paper_fixture,
                                         run_paper_query)

BOOT_DEADLINE = 30.0
DRAIN_DEADLINE = 30.0


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def boot(data_dir: str) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--data", data_dir,
         "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO)
    deadline = time.monotonic() + BOOT_DEADLINE
    while True:
        line = process.stdout.readline()
        if line.startswith("serving on "):
            host, _, port = line.split()[-1].rpartition(":")
            return process, host, int(port)
        if process.poll() is not None or time.monotonic() > deadline:
            fail(f"server never announced itself (last line: {line!r})")


def main() -> int:
    with tempfile.TemporaryDirectory() as scratch:
        data_dir = os.path.join(scratch, "db")
        with DurableDatabase(data_dir) as oracle_db:
            load_paper_fixture(oracle_db)
            oracle = {number: run_paper_query(oracle_db, number)
                      for number in PAPER_QUERIES}
            oracle_db.checkpoint()

        process, host, port = boot(data_dir)
        try:
            with ServerClient(host, port) as client:
                mismatches = []
                for number in sorted(PAPER_QUERIES):
                    _kind, statement = PAPER_QUERIES[number]
                    answer = client.query_text(statement)
                    if answer != oracle[number]:
                        mismatches.append(number)
                if mismatches:
                    fail(f"queries not byte-identical: {mismatches}")

                handle = client.prepare(PAPER_QUERIES[1][1])
                prepared = render_payload(client.execute(handle))
                if prepared != oracle[1]:
                    fail("prepared execution diverged from oracle")
                client.deallocate(handle)

                if not client.ping():
                    fail("ping failed")
                stats = client.stats()
                if "server.queries" not in stats:
                    fail(f"stats missing server.queries: {stats!r}")

            process.send_signal(signal.SIGTERM)
            try:
                out, _ = process.communicate(timeout=DRAIN_DEADLINE)
            except subprocess.TimeoutExpired:
                process.kill()
                fail("server did not drain within deadline after SIGTERM")
            if process.returncode != 0:
                fail(f"server exited {process.returncode}: {out!r}")
            if "drained" not in out:
                fail(f"server never printed 'drained': {out!r}")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        # The drained directory must reopen cleanly (WAL was flushed).
        with DurableDatabase(data_dir) as reopened:
            answer = run_paper_query(reopened, 1)
            if answer != oracle[1]:
                fail("reopened database diverged after drain")

    print(f"smoke ok: {len(PAPER_QUERIES)} queries byte-identical over "
          "the socket; prepared execution matched; SIGTERM drained, "
          "exit 0, and the data directory reopened cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
