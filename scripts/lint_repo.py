#!/usr/bin/env python
"""Repo-specific lint: lock discipline, exception hygiene, obs gating,
fsync discipline.

Four rules, all enforced over ``src/repro/`` with Python's own ``ast``
(no third-party linters, mirroring how ``repro lint`` reasons about
query ASTs):

1. **Lock discipline** (``src/repro/storage/catalog.py``): in any class
   that owns a ``self._rwlock``, attribute mutations (``self.x = …``,
   ``self.x += …``) and :class:`Table` mutator calls (``new_row`` /
   ``remove_row``) outside ``__init__`` must sit lexically inside
   ``with self._rwlock.write():`` — the copy-on-write contract
   snapshot readers rely on.

2. **Exception hygiene** (all of ``src/repro/``): no bare ``except:``
   and no ``except Exception:`` in engine modules.  Handlers that
   re-raise (a bare ``raise`` in the handler body) are allowed — the
   cleanup-then-propagate pattern — as is an explicit
   ``# lint: broad-except-ok`` pragma on the ``except`` line.

3. **Obs gating** (all of ``src/repro/`` except ``obs/`` itself):
   every ``METRICS.inc`` / ``METRICS.observe`` call must be lexically
   inside an ``if METRICS.enabled:`` test, so the disabled-metrics hot
   path never pays for counter bookkeeping.

4. **Fsync discipline** (``src/repro/durability/`` except ``fsio.py``):
   no builtin ``open()``, no ``os.*`` / ``shutil.*`` calls, and no
   pathlib read/write/rename methods.  Crash safety hangs on every
   write and rename of a durability file following the
   write → fsync → rename → dir-fsync protocol, so those primitives
   live only in ``durability/fsio.py`` where the protocol is enforced
   and fault points are injected; a bare ``os.rename`` elsewhere is a
   torn-state bug waiting for a power cut.

Exit status 0 when clean, 1 with findings (one per line,
``path:line: rule — message``).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

PRAGMA = "lint: broad-except-ok"
TABLE_MUTATORS = frozenset({"new_row", "remove_row"})


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str,
                 message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        path = self.path
        if path.is_relative_to(REPO):
            path = path.relative_to(REPO)
        return f"{path}:{self.line}: {self.rule} — {self.message}"


# ---------------------------------------------------------------------------
# Rule 1: catalog mutations only under the write lock
# ---------------------------------------------------------------------------


def _is_write_lock_with(node: ast.With) -> bool:
    """``with self._rwlock.write():`` (any position among the items)."""
    for item in node.items:
        call = item.context_expr
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "write"
                and isinstance(call.func.value, ast.Attribute)
                and call.func.value.attr == "_rwlock"):
            return True
    return False


def _owns_rwlock(class_node: ast.ClassDef) -> bool:
    for node in ast.walk(class_node):
        if (isinstance(node, ast.Assign)
                and any(isinstance(target, ast.Attribute)
                        and target.attr == "_rwlock"
                        for target in node.targets)):
            return True
    return False


def check_lock_discipline(path: pathlib.Path,
                          tree: ast.Module) -> list[Finding]:
    findings: list[Finding] = []
    for class_node in (node for node in tree.body
                       if isinstance(node, ast.ClassDef)):
        if not _owns_rwlock(class_node):
            continue
        for method in (node for node in class_node.body
                       if isinstance(node, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))):
            if method.name in ("__init__", "__post_init__"):
                continue
            findings.extend(_check_method(path, method))
    return findings


def _check_method(path: pathlib.Path, method) -> list[Finding]:
    findings: list[Finding] = []

    def visit(node, locked: bool) -> None:
        if isinstance(node, ast.With) and _is_write_lock_with(node):
            locked = True
        if not locked:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr != "_rwlock"):
                        findings.append(Finding(
                            path, node.lineno, "lock-discipline",
                            f"self.{target.attr} mutated in "
                            f"{method.name}() outside "
                            f"'with self._rwlock.write()'"))
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in TABLE_MUTATORS):
                findings.append(Finding(
                    path, node.lineno, "lock-discipline",
                    f"table mutator .{node.func.attr}() called in "
                    f"{method.name}() outside "
                    f"'with self._rwlock.write()'"))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for child in ast.iter_child_nodes(method):
        visit(child, False)
    return findings


# ---------------------------------------------------------------------------
# Rule 2: no unexcused broad excepts
# ---------------------------------------------------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return (isinstance(handler.type, ast.Name)
            and handler.type.id in ("Exception", "BaseException"))


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) and node.exc is None
               for node in ast.walk(handler))


def check_broad_excepts(path: pathlib.Path, tree: ast.Module,
                        source_lines: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
            continue
        if _reraises(node):
            continue
        line = source_lines[node.lineno - 1]
        if PRAGMA in line:
            continue
        what = ("bare except:" if node.type is None
                else f"except {node.type.id}:")
        findings.append(Finding(
            path, node.lineno, "broad-except",
            f"{what} swallows engine errors; catch ReproError (or a "
            f"subclass), re-raise, or annotate '# {PRAGMA} (reason)'"))
    return findings


# ---------------------------------------------------------------------------
# Rule 3: METRICS calls stay behind the enabled guard
# ---------------------------------------------------------------------------


def _mentions_metrics_enabled(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if (isinstance(node, ast.Attribute) and node.attr == "enabled"
                and isinstance(node.value, ast.Name)
                and node.value.id == "METRICS"):
            return True
    return False


def check_metrics_gating(path: pathlib.Path,
                         tree: ast.Module) -> list[Finding]:
    findings: list[Finding] = []

    def visit(node, guarded: bool) -> None:
        if isinstance(node, ast.If) and \
                _mentions_metrics_enabled(node.test):
            for child in node.body:
                visit(child, True)
            for child in node.orelse:
                visit(child, guarded)
            return
        if (not guarded and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "METRICS"):
            findings.append(Finding(
                path, node.lineno, "metrics-gating",
                f"METRICS.{node.func.attr}() outside an "
                f"'if METRICS.enabled:' guard: the disabled path pays "
                f"for bookkeeping"))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for child in tree.body:
        visit(child, False)
    return findings


# ---------------------------------------------------------------------------
# Rule 4: raw file primitives only inside durability/fsio.py
# ---------------------------------------------------------------------------

RAW_IO_MODULES = frozenset({"os", "shutil"})
PATHLIB_IO_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
    "rename", "replace", "unlink", "touch", "rmdir", "mkdir"})


def check_fsync_discipline(path: pathlib.Path,
                           tree: ast.Module) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            findings.append(Finding(
                path, node.lineno, "fsync-discipline",
                "builtin open() in durability code; all file I/O goes "
                "through durability/fsio.py, where the write→fsync→"
                "rename protocol and fault points live"))
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in RAW_IO_MODULES):
                findings.append(Finding(
                    path, node.lineno, "fsync-discipline",
                    f"{func.value.id}.{func.attr}() bypasses the fsync "
                    f"discipline; use the durability/fsio.py helper"))
            elif (func.attr in PATHLIB_IO_METHODS
                    and not (isinstance(func.value, ast.Name)
                             and func.value.id == "fsio")):
                findings.append(Finding(
                    path, node.lineno, "fsync-discipline",
                    f".{func.attr}() on a path bypasses the fsync "
                    f"discipline; use the durability/fsio.py helper"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def lint_file(path: pathlib.Path) -> list[Finding]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    findings = check_broad_excepts(path, tree, source.splitlines())
    if path.name == "catalog.py":
        findings.extend(check_lock_discipline(path, tree))
    if "obs" not in path.parts:
        findings.extend(check_metrics_gating(path, tree))
    if "durability" in path.parts and path.name != "fsio.py":
        findings.extend(check_fsync_discipline(path, tree))
    return findings


def main(argv: list[str]) -> int:
    paths = ([pathlib.Path(argument) for argument in argv[1:]]
             or sorted(SRC.rglob("*.py")))
    findings: list[Finding] = []
    for path in paths:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"lint_repo: {len(paths)} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
