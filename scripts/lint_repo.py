#!/usr/bin/env python
"""Back-compat shim: the repo lint grew into ``repro check``.

The four lexical rules this script used to implement (lock discipline,
exception hygiene, obs gating, fsync discipline) now live in
:mod:`repro.analysis.lexical` as reason codes ``SA407``–``SA410``,
running alongside the interprocedural concurrency passes
``SA401``–``SA406`` (lock order, read->write upgrades,
blocking-under-lock, blocking-in-coroutine, fork safety, guard-tick
discipline).  See ``repro check --help`` / ``README.md``.

Kept so existing invocations — editors, git hooks, muscle memory —
keep working; CI calls ``python -m repro check`` directly.  Output
format is unchanged (``path:line: CODE — message``), exit 1 on
findings.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.runner import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
