#!/usr/bin/env python
"""CI smoke test for ``repro lint``.

Builds the paper's indexed schema and feeds the lint entry point one
statement per diagnostic family, asserting each produces exactly the
reason code the paper's section predicts:

* §3.1  incomparable comparison            → SE004
* §3.1  statically-empty path              → SE005
* §3.7  namespace drift vs the index       → SW307
* §3.8  ``/text()`` misalignment           → SW308
* §3.9  attribute-axis confusion           → SW309
* Tip 1 uncast join                        → SW301
* clean query                              → no findings, exit 0

Also checks the CLI contract: error-severity findings exit 1, JSON
output parses.  Run as::

    PYTHONPATH=src python scripts/smoke_lint.py
"""

from __future__ import annotations

import io
import json
import sys

from repro import Database
from repro.cli import run_lint
from repro.static import lint_statement
from repro.workload import populate_paper_schema

XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"

CASES = [
    ("SE004", f"for $i in {XMLCOL}//order"
              "[xs:double(custid) = xs:date(date)] return $i"),
    ("SE005", f"for $i in {XMLCOL}//order[warehouse/code = 'X'] "
              "return $i"),
    ("SW307", "declare namespace f = 'http://fruit.example'; "
              f"for $i in {XMLCOL}//f:order[f:lineitem/@price > 100] "
              "return $i"),
    ("SW308", f"for $i in {XMLCOL}//order[custid/text() = '1001'] "
              "return $i"),
    ("SW309", f"for $i in {XMLCOL}//order[lineitem/price > 100] "
              "return $i"),
    ("SW301", 'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
              'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
              "where $i/custid = $j/id return $i"),
]

CLEAN = (f"for $i in {XMLCOL}//order[lineitem/@price > 100] "
         "return $i")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    database = Database()
    populate_paper_schema(database, orders=40, customers=8, products=10,
                          seed=7, with_indexes=True)
    database.create_xml_index("o_custid_str", "orders", "orddoc",
                              "//order/custid", "VARCHAR")

    for expected, statement in CASES:
        codes = {finding.code.code for finding in
                 lint_statement(statement, database=database)}
        if expected not in codes:
            fail(f"expected {expected} for {statement!r}, got "
                 f"{sorted(codes) or 'nothing'}")

    clean = lint_statement(CLEAN, database=database)
    if clean:
        fail(f"clean query produced findings: "
             f"{[str(finding) for finding in clean]}")

    # CLI contract: SE-severity findings exit 1 and JSON parses.
    buffer = io.StringIO()
    status = run_lint(database, CASES[0][1], as_json=True, out=buffer)
    if status != 1:
        fail("run_lint should exit 1 on a static error")
    payload = json.loads(buffer.getvalue())
    if not any(entry["code"] == "SE004" for entry in payload):
        fail(f"JSON output missing SE004: {payload}")
    if run_lint(database, CLEAN, out=io.StringIO()) != 0:
        fail("run_lint should exit 0 on a clean statement")

    print(f"smoke ok: {len(CASES)} diagnostic families fire, clean "
          "query is clean, CLI exit codes and JSON agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
