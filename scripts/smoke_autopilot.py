#!/usr/bin/env python
"""CI smoke test for the self-driving indexing autopilot.

Starts from a **cold** paper database (no indexes), runs the full
30-query paper workload once so the autopilot can profile it, lets the
autopilot build its recommended indexes online, and asserts the
acceptance criteria of the convergence story:

* the autopilot builds at least one index from the observed workload;
* a second pass answers **byte-identically** to a manually-indexed
  oracle (Definition 1: indexes are an access path, not a semantics
  change);
* the second pass actually probes the auto-built indexes;
* a third advise cycle recommends nothing — the loop has converged.

Exits non-zero (with a message) on any violation.  Run as:

    PYTHONPATH=src python scripts/smoke_autopilot.py
"""

from __future__ import annotations

import sys

from repro import Database
from repro.obs.metrics import METRICS, enabled_metrics
from repro.workload.paperqueries import (PAPER_QUERIES,
                                         load_paper_fixture,
                                         run_paper_query)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def run_workload(database) -> dict[int, str]:
    return {number: run_paper_query(database, number)
            for number in sorted(PAPER_QUERIES)}


def main() -> int:
    cold = Database()
    load_paper_fixture(cold, with_indexes=False)
    oracle = Database()
    load_paper_fixture(oracle, with_indexes=True)

    pilot = cold.autopilot()
    first_pass = run_workload(cold)          # pass 1: observe only

    built = pilot.apply()
    if not built:
        fail("autopilot built nothing from the 30-query paper workload")

    with enabled_metrics():
        second_pass = run_workload(cold)     # pass 2: converged
        probes = METRICS.counter("index.probes")

    expected = run_workload(oracle)
    if first_pass != expected:
        fail("cold database disagreed with the oracle before any DDL "
             "(fixture mismatch, not an autopilot bug)")
    if second_pass != expected:
        mismatches = [number for number in expected
                      if second_pass[number] != expected[number]]
        fail("post-autopilot answers diverged from the manually-indexed "
             f"oracle on queries {mismatches}")
    if probes <= 0:
        fail("second pass never probed the auto-built indexes")

    leftover = pilot.advise()
    if leftover:
        fail("advisor did not converge; still recommends: "
             + "; ".join(candidate.ddl for candidate in leftover))

    print(f"smoke ok: autopilot built {len(built)} indexes "
          f"({', '.join(sorted(cold.xml_indexes))}), second pass "
          f"byte-identical to oracle with {probes} index probes, "
          "advisor converged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
