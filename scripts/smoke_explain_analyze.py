#!/usr/bin/env python
"""CI smoke test for EXPLAIN ANALYZE.

Builds the paper's schema, runs one index-eligible query and one
ineligible (wildcard) query through ``explain_analyze``, and asserts
the structural facts the paper's §3.1 cliff rests on:

* the eligible query probes an index and scans few documents;
* the wildcard query probes nothing and scans the whole collection;
* both traces validate against the trace schema and every operator
  reports a non-negative wall time.

Exits non-zero (with a message) on any violation.  Run as:

    PYTHONPATH=src python scripts/smoke_explain_analyze.py
"""

from __future__ import annotations

import sys

from repro import Database
from repro.obs.trace import validate_trace
from repro.workload import populate_paper_schema

ELIGIBLE = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
            "//order[lineitem/@price>190] return $i")
INELIGIBLE = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
              "//order[lineitem/@*>190] return $i")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_common(analyzed, label: str) -> None:
    problems = validate_trace(analyzed.tracer.to_dict())
    if problems:
        fail(f"{label}: trace does not validate: {problems}")

    def walk(node):
        if node.time_ms < 0:
            fail(f"{label}: operator {node.name} has negative time")
        for child in node.children:
            walk(child)

    walk(analyzed.root)
    if analyzed.root.actual_rows != len(analyzed):
        fail(f"{label}: root actual_rows {analyzed.root.actual_rows} "
             f"!= result count {len(analyzed)}")


def main() -> int:
    database = Database()
    populate_paper_schema(database, orders=60, customers=10, products=20,
                          seed=7, with_indexes=True)
    total_docs = len(database.xmlcolumn("ORDERS.ORDDOC"))

    eligible = database.explain_analyze(ELIGIBLE)
    check_common(eligible, "eligible")
    if not eligible.operators("index-scan"):
        fail("eligible query did not use an index")
    residual = eligible.operators("residual-eval")[0]
    if residual.attrs["docs_scanned"] >= total_docs:
        fail("eligible query scanned the whole collection "
             f"({residual.attrs['docs_scanned']}/{total_docs})")

    ineligible = database.explain_analyze(INELIGIBLE)
    check_common(ineligible, "ineligible")
    if ineligible.operators("index-scan"):
        fail("wildcard query must not use the typed index "
             "(paper §3.1: '@*' is ineligible)")
    residual = ineligible.operators("residual-eval")[0]
    if residual.attrs["docs_scanned"] != total_docs:
        fail("wildcard query should scan every document "
             f"({residual.attrs['docs_scanned']}/{total_docs})")

    print("smoke ok: eligible query used "
          f"{eligible.operators('index-scan')[0].attrs['index']}, "
          f"scanned {eligible.operators('residual-eval')[0].attrs['docs_scanned']}"
          f"/{total_docs} docs; wildcard scanned {total_docs}/{total_docs}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
