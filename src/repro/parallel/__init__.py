"""Process-parallel execution: read replicas fed by log shipping.

CPython's GIL caps the thread-based partition executor
(:mod:`repro.planner.parallel`) at roughly one core of XQuery
evaluation; this package escapes it with real processes.  The primary
serializes a checkpoint of its current state (the same encoding
:mod:`repro.durability.checkpoint` writes to disk), ships it over a
pipe to N worker processes, and each worker runs recovery into a
read-only :class:`~repro.parallel.replica.ReplicaDatabase`.  From then
on the primary streams every appended WAL record to its followers —
log shipping — so replicas track the primary's applied state with a
lag of at most one in-flight pipe message, and a long-lived
:class:`~repro.parallel.pool.ProcessPool` amortizes the one-time
checkpoint-ship cost across every query it serves.

A freshness watermark (``last_applied_lsn``) gates every replica read:
each request carries the LSN the primary had applied when the request
was issued, and a replica that has not caught up refuses to serve
(:class:`repro.errors.StaleReplicaError`) rather than return a stale
snapshot — the orchestrator then falls back to serial execution on the
primary, recorded under ``parallel.fallback_reason.freshness``.
"""

from __future__ import annotations

from .pool import ProcessPool, ShippedQueryResult, ShippedSQLResult
from .replica import ReplicaDatabase, build_replica

__all__ = ["ProcessPool", "ReplicaDatabase", "build_replica",
           "ShippedQueryResult", "ShippedSQLResult"]
