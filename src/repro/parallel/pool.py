"""The primary's side of log shipping: a pool of replica processes.

:class:`ProcessPool` escapes the GIL for partitionable queries.  On
construction it takes the database's shared read lock once, encodes a
checkpoint of the current state (the durability layer's own encoding —
replication *is* recovery over a pipe), subscribes to the WAL, and
records the base LSN/version; it then spawns N worker processes, ships
each the checkpoint, and streams every subsequently appended WAL
record to all of them.  Each worker replays into a sealed
:class:`~repro.parallel.replica.ReplicaDatabase` and serves partition
requests from it — real processes, so N partitions evaluate on N cores.

Correctness rests on two invariants:

* **FIFO freshness.**  WAL records are shipped from inside the
  primary's exclusive writer section, and query requests are sent
  while the primary holds its read lock; both go down the same pipe,
  and one :attr:`_ship_lock` serializes the sends.  A request stamped
  with ``required_lsn = wal.last_lsn`` therefore travels *behind*
  every record it depends on, so replicas are never stale in practice;
  the watermark check on the worker is a tripwire, and a tripped one
  falls back to serial execution under
  ``parallel.fallback_reason.freshness``.
* **Order-preserving partitions.**  Partitions are contiguous ranges
  of *positions* in the column's document list (doc_ids are process-
  local counters and do not survive the pipe), replica row order
  equals primary row order (records replay in LSN order), and workers
  document-order pure path results locally — so concatenating the
  partition results in order is byte-identical to the serial answer.

Non-durable primaries have no WAL to ship; the pool then pins the
database ``version`` it bootstrapped from and falls back to serial for
any query after a write until :meth:`ProcessPool.resync` re-ships the
full state.

Every serial fallback is recorded through
:func:`repro.planner.parallel.record_fallback` — same reason taxonomy
as the thread backend — and every pool entry point degrades to the
primary's ordinary execution paths rather than failing the query.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

from ..analysis import sanitizer as _sanitizer
from ..core.querycache import compile_query
from ..durability.checkpoint import encode_database
from ..errors import ReplicationError
from ..obs.metrics import METRICS
from ..planner.parallel import _partition, partition_reference, \
    record_fallback
from ..planner.plan import plan_prefilters
from ..planner.stats import ExecutionStats
from .worker import worker_main

__all__ = ["ProcessPool", "ShippedQueryResult", "ShippedSQLResult"]

_WRITE_HEADS = ("INSERT", "DELETE", "CREATE", "DROP", "REGISTER")


class ShippedQueryResult:
    """A QueryResult lookalike whose items crossed a process boundary.

    Workers serialize on their side, so there are no live ``items`` —
    only ``(text, is_atomic)`` segments.  ``serialize()`` and
    ``serialized()`` match :class:`repro.planner.plan.QueryResult`
    byte-for-byte (including the space between adjacent atomics that
    ``serialize_sequence`` inserts).
    """

    def __init__(self, segments: list[tuple[str, bool]],
                 stats: ExecutionStats, *, partitions: int = 0,
                 worker_cache_hits: int = 0):
        self.segments = segments
        self.stats = stats
        #: How many replica partitions produced this result.
        self.partitions = partitions
        #: Workers that reused a compiled plan from their own cache —
        #: after the pool's first request for a statement this should
        #: equal ``partitions`` (the per-process cache is long-lived).
        self.worker_cache_hits = worker_cache_hits

    def __iter__(self):
        return iter(text for text, _ in self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def serialize(self) -> list[str]:
        return [text for text, _ in self.segments]

    def serialized(self) -> str:
        parts: list[str] = []
        previous_atomic = False
        for text, is_atomic in self.segments:
            if is_atomic and previous_atomic:
                parts.append(" ")
            parts.append(text)
            previous_atomic = is_atomic
        return "".join(parts)


class ShippedSQLResult:
    """An SQLResult lookalike: rows arrive already rendered to text."""

    def __init__(self, columns: list[str], rows: list[tuple],
                 stats: ExecutionStats):
        self.columns = columns
        self.rows = rows
        self.stats = stats

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def serialize_rows(self) -> list[tuple]:
        return self.rows


class _Worker:
    """One follower process and its pipe endpoint."""

    __slots__ = ("process", "conn", "alive", "pid", "applied_lsn")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.alive = True
        self.pid: int | None = None
        self.applied_lsn = 0


class _Failure:
    __slots__ = ("reason", "detail")

    def __init__(self, reason: str, detail: str):
        self.reason = reason
        self.detail = detail


class ProcessPool:
    """N replica processes serving partitioned reads for one primary.

    Use as a context manager (or call :meth:`close`); worker processes
    are daemons, but a graceful shutdown message lets them exit their
    serve loop instead of being killed mid-request.
    """

    def __init__(self, database, processes: int = 2, *,
                 start_method: str | None = None,
                 response_timeout: float = 60.0):
        if processes < 1:
            raise ReplicationError(
                f"a process pool needs at least one worker, "
                f"got {processes}")
        self._database = database
        self._response_timeout = response_timeout
        self._context = multiprocessing.get_context(start_method)
        self._workers: list[_Worker] = []
        self._closed = False
        self._request_counter = 0
        #: Serializes every pipe send: the WAL subscriber fires on
        #: writer threads while request fan-out runs on caller threads,
        #: and interleaved sends would corrupt the stream.  Lock order
        #: is always database rwlock -> _ship_lock (the subscriber runs
        #: inside the write lock, dispatch inside the read lock), so
        #: the pair is acyclic.
        self._ship_lock = threading.Lock()
        #: Serializes whole fan-outs: responses are read off the worker
        #: pipes, and two concurrent dispatchers would steal each
        #: other's replies.
        self._dispatch_lock = threading.RLock()
        #: Records appended between WAL subscription and worker INIT —
        #: buffered, then drained in order once every pipe is primed.
        self._backlog: list[tuple[int, dict]] = []
        self._accepting = False
        self._wal = getattr(database, "wal", None)

        started = time.perf_counter() if METRICS.enabled else 0.0
        # One consistent cut: state, base LSN/version, and the WAL
        # subscription point all describe the same instant because the
        # shared lock excludes writers (encode_database only needs
        # writer exclusion, not the exclusive side).
        with database._rwlock.read():
            self._base_lsn = self._wal.last_lsn if self._wal else 0
            self._base_version = database.version
            # ship_columns: followers materialize trees straight from
            # the columnar payloads instead of re-parsing XML text.
            state = encode_database(database, self._base_lsn,
                                    ship_columns=True)
            if self._wal is not None:
                self._wal.subscribe(self._on_wal_append)
        try:
            self._spawn_workers(processes, state)
        except BaseException:
            self.close()
            raise
        if METRICS.enabled:
            METRICS.observe("replication.bootstrap_seconds",
                            time.perf_counter() - started)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn_workers(self, processes: int, state: dict) -> None:
        if _sanitizer.ACTIVE is not None:
            # The bootstrap read section above has been released by
            # now; a held lock here would be cloned into every child.
            _sanitizer.ACTIVE.check_fork("ProcessPool._spawn_workers")
        for _ in range(processes):
            parent_conn, child_conn = self._context.Pipe()
            process = self._context.Process(
                target=worker_main, args=(child_conn,), daemon=True)
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn))
        init = ("init", state, self._base_lsn,
                self._database.index_order)
        with self._ship_lock:
            for worker in self._workers:
                self._send(worker, init)
        for worker in self._workers:
            self._await_ready(worker)
        with self._ship_lock:
            for lsn, record in self._backlog:
                for worker in self._workers:
                    if worker.alive:
                        self._send(worker, ("wal", lsn, record))
            self._backlog.clear()
            self._accepting = True

    def _await_ready(self, worker: _Worker) -> None:
        if not worker.alive:
            return
        if not worker.conn.poll(self._response_timeout):
            self._demote(worker, "init-timeout")
            return
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._demote(worker, "init-eof")
            return
        if message[0] == "ready":
            worker.applied_lsn = message[1]
            worker.pid = message[2]
        else:
            self._demote(worker, "init-protocol")

    def close(self) -> None:
        """Graceful shutdown: unsubscribe, signal, join, reap.

        Idempotent; also invoked by ``__exit__``.  Workers that ignore
        the shutdown message within a short grace period are
        terminated — they are daemons serving an in-memory replica, so
        nothing needs flushing.
        """
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.unsubscribe(self._on_wal_append)
        with self._ship_lock:
            self._accepting = False
            for worker in self._workers:
                if worker.alive:
                    self._send(worker, ("shutdown",))
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                # terminate() is SIGTERM, which stays *pending* on a
                # stopped (SIGSTOPped) process; SIGKILL does not.
                worker.process.kill()
                worker.process.join(timeout=5.0)
            worker.alive = False
            if not worker.conn.closed:
                worker.conn.close()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    @property
    def closed(self) -> bool:
        return self._closed

    def workers_alive(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    def ping(self) -> list[tuple[int, int]]:
        """``(pid, last_applied_lsn)`` per live worker — the lag probe."""
        with self._dispatch_lock:
            requests = []
            with self._ship_lock:
                for worker in self._workers:
                    if not worker.alive:
                        continue
                    request_id = self._next_request_id()
                    self._send(worker, ("ping", request_id))
                    requests.append((worker, request_id))
            states: list[tuple[int, int]] = []
            for worker, request_id in requests:
                message = self._recv_matching(worker, "pong", request_id)
                if message is not None:
                    worker.applied_lsn = message[2]
                    states.append((worker.pid or -1, message[2]))
            return states

    def resync(self) -> int:
        """Re-ship the full current state to every live worker.

        The recovery path for non-durable primaries (no WAL to stream):
        after writes, reads fall back serially until resync re-bases
        the replicas.  Returns the number of workers refreshed.
        """
        if self._closed:
            return 0
        with self._dispatch_lock:
            with self._database._rwlock.read():
                self._base_lsn = (self._wal.last_lsn
                                  if self._wal else 0)
                self._base_version = self._database.version
                state = encode_database(self._database, self._base_lsn,
                                        ship_columns=True)
                init = ("init", state, self._base_lsn,
                        self._database.index_order)
                with self._ship_lock:
                    for worker in self._workers:
                        if worker.alive:
                            self._send(worker, init)
            refreshed = 0
            for worker in self._workers:
                if worker.alive:
                    self._await_ready(worker)
                    refreshed += 1 if worker.alive else 0
            return refreshed

    # ------------------------------------------------------------------
    # Log shipping
    # ------------------------------------------------------------------

    def _on_wal_append(self, lsn: int, record: dict) -> None:
        """WAL subscriber: runs inside the primary's writer section."""
        with self._ship_lock:
            if not self._accepting:
                self._backlog.append((lsn, record))
                return
            shipped = 0
            for worker in self._workers:
                if worker.alive:
                    self._send(worker, ("wal", lsn, record))
                    shipped += 1
        if METRICS.enabled and shipped:
            METRICS.inc("replication.shipped_records", shipped)

    # ------------------------------------------------------------------
    # Partitioned reads
    # ------------------------------------------------------------------

    def xquery(self, query: str, use_indexes: bool = True,
               tracer=None, indent: bool = False):
        """Fan one partitionable XQuery across the replica processes.

        Same soundness gate and order guarantees as the thread backend
        (:mod:`repro.planner.parallel`); anything the gate refuses —
        and any replica failure — runs serially on the primary instead,
        with the reason recorded.  Returns a
        :class:`ShippedQueryResult` on the parallel path, the primary's
        ordinary ``QueryResult`` on fallbacks.
        """
        if self._closed:
            return self._fallback(query, use_indexes, tracer,
                                  "pool-closed")
        compiled = compile_query(query)
        reference = partition_reference(compiled.module)
        if reference is None:
            return self._fallback(query, use_indexes, tracer,
                                  "gate-rejected")
        alive = [worker for worker in self._workers if worker.alive]
        if len(alive) < 2:
            return self._fallback(query, use_indexes, tracer,
                                  "single-worker")
        started = time.perf_counter() if METRICS.enabled else 0.0
        database = self._database
        with self._dispatch_lock, database._rwlock.read():
            if self._wal is not None:
                required_lsn = self._wal.last_lsn
            else:
                required_lsn = self._base_lsn
                if database.version != self._base_version:
                    # No WAL to ship: replicas froze at bootstrap.
                    return self._fallback(query, use_indexes, tracer,
                                          "freshness")
            table, column = database._split_reference(reference)
            documents = database.documents(table, column)
            if len(documents) < 2:
                # Checked against the raw column (before prefiltering):
                # an index that narrows 1000 documents to one still
                # deserves the fan-out machinery's stats/notes, but a
                # one-document column never does.
                return self._fallback(query, use_indexes, tracer,
                                      "too-few-docs")
            stats = ExecutionStats()
            positions = self._plan_positions(
                database, compiled, reference, documents, use_indexes,
                stats)
            partitions = _partition(positions, len(alive))
            stats.note(f"process-parallel: {len(positions)} documents "
                       f"of {reference} across {len(partitions)} "
                       f"replica processes")
            requests = []
            with self._ship_lock:
                for worker, partition in zip(alive, partitions):
                    request_id = self._next_request_id()
                    self._send(worker, (
                        "xquery", request_id, query, reference,
                        partition, required_lsn, tracer is not None,
                        indent))
                    requests.append((worker, request_id))
            payloads, failure = self._collect(requests)
        if failure is not None or len(payloads) != len(requests):
            reason = failure.reason if failure else "worker-error"
            return self._fallback(query, use_indexes, tracer, reason)

        segments: list[tuple[str, bool]] = []
        cache_hits = 0
        min_applied = required_lsn
        for worker_index, (worker, request_id) in enumerate(requests):
            payload = payloads[request_id]
            segments.extend(payload["items"])
            stats.merge(payload["stats"])
            cache_hits += 1 if payload["cache_hit"] else 0
            worker.applied_lsn = payload["applied"]
            min_applied = min(min_applied, payload["applied"])
            if tracer is not None and payload["spans"]:
                tracer.attach_remote(payload["spans"],
                                     worker=worker_index,
                                     pid=worker.pid or -1)
        stats.note(f"replica compiled-query cache: {cache_hits}/"
                   f"{len(requests)} partitions reused a plan")
        if METRICS.enabled:
            METRICS.inc("process.fanouts")
            METRICS.inc("process.partitions", len(partitions))
            METRICS.observe("process.seconds",
                            time.perf_counter() - started)
            METRICS.set_gauge("replication.replica_lag_records",
                              required_lsn - min_applied)
        return ShippedQueryResult(segments, stats,
                                  partitions=len(partitions),
                                  worker_cache_hits=cache_hits)

    def execute_many(self, statements, max_workers: int | None = None
                     ) -> list:
        """Round-robin a batch of read statements across the replicas.

        Mirrors ``Database.execute_many`` but with process-level
        parallelism.  A batch containing any write statement runs
        entirely on the primary (``write-statements`` fallback — the
        primary is the only writer), as does a batch of fewer than two
        statements.  ``max_workers`` caps how many replicas share the
        batch.  Results are in input order: ``ShippedQueryResult`` for
        XQuery texts, ``ShippedSQLResult`` for SQL reads.
        """
        statements = list(statements)
        if self._closed:
            record_fallback("pool-closed")
            return self._database.execute_many(statements)
        if any(statement.lstrip().upper().startswith(_WRITE_HEADS)
               for statement in statements):
            record_fallback("write-statements")
            return self._database.execute_many(statements)
        alive = [worker for worker in self._workers if worker.alive]
        if max_workers is not None:
            alive = alive[:max(1, max_workers)]
        if len(alive) < 2 or len(statements) < 2:
            record_fallback("single-worker" if len(alive) < 2
                            else "too-few-docs")
            return self._database.execute_many(statements)
        database = self._database
        with self._dispatch_lock, database._rwlock.read():
            if self._wal is not None:
                required_lsn = self._wal.last_lsn
            else:
                required_lsn = self._base_lsn
                if database.version != self._base_version:
                    record_fallback("freshness")
                    return database.execute_many(statements)
            requests = []
            with self._ship_lock:
                for position, statement in enumerate(statements):
                    worker = alive[position % len(alive)]
                    request_id = self._next_request_id()
                    self._send(worker, ("stmt", request_id, statement,
                                        required_lsn))
                    requests.append((worker, request_id))
            payloads, failure = self._collect(requests)
        if failure is not None or len(payloads) != len(requests):
            record_fallback(failure.reason if failure
                            else "worker-error")
            return database.execute_many(statements)
        results = []
        for worker, request_id in requests:
            payload = payloads[request_id]
            worker.applied_lsn = payload["applied"]
            if payload.get("sql"):
                results.append(ShippedSQLResult(
                    payload["columns"],
                    [tuple(row) for row in payload["rows"]],
                    payload["stats"]))
            else:
                stats = payload["stats"]
                results.append(ShippedQueryResult(
                    payload["items"], stats, partitions=1,
                    worker_cache_hits=1 if payload["cache_hit"] else 0))
        return results

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan_positions(self, database, compiled, reference: str,
                        documents, use_indexes: bool,
                        stats: ExecutionStats) -> list[int]:
        """Index-prefilter once on the primary, return the surviving
        row positions (the wire form of a partition)."""
        positions = list(range(len(documents)))
        if not use_indexes:
            return positions
        allowed: set[int] | None = None
        prefilters = plan_prefilters(database, list(compiled.candidates),
                                     stats)
        for column, prefilter in prefilters.items():
            if column.lower() != reference.lower():
                continue
            docs = prefilter.run(stats)
            allowed = docs if allowed is None else (allowed & docs)
            for note in prefilter.notes:
                stats.note(note)
            stats.note(f"prefilter {column}: {len(docs)} documents "
                       f"survive")
        if allowed is None:
            return positions
        return [position for position in positions
                if documents[position].doc_id in allowed]

    def _fallback(self, query: str, use_indexes: bool, tracer,
                  reason: str):
        record_fallback(reason, tracer)
        return self._database.xquery(query, use_indexes=use_indexes,
                                     tracer=tracer)

    def _next_request_id(self) -> int:
        self._request_counter += 1
        return self._request_counter

    def _send(self, worker: _Worker, message: tuple) -> None:
        """Send under ``_ship_lock`` (caller holds it); a dead pipe
        demotes the worker instead of failing the operation."""
        try:
            worker.conn.send(message)
        except (OSError, ValueError):
            self._demote(worker, "send-failed")

    def _demote(self, worker: _Worker, reason: str) -> None:
        """Retire a failed worker *completely*: terminate and join its
        process and close our pipe end.

        Flagging ``alive = False`` alone leaks the process (a hung
        replica keeps its core, its replica memory, and — as a child we
        never join — eventually a zombie entry) and the pipe fd.  The
        pool must shrink honestly: after demotion the process is gone,
        the fd is closed, and ``workers_alive()`` tells the truth.
        Safe against already-exited processes and double demotion.
        """
        already = not worker.alive and worker.conn.closed
        worker.alive = False
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)
        if process.is_alive():
            # terminate() is SIGTERM, which a *stopped* (SIGSTOPped —
            # exactly how a worker hangs without burning CPU) process
            # leaves pending forever; SIGKILL acts regardless.
            process.kill()
            process.join(timeout=5.0)
        else:
            process.join(timeout=0)  # reap an already-dead child
        if not worker.conn.closed:
            worker.conn.close()
        if not already and METRICS.enabled:
            METRICS.inc("parallel.workers_demoted")

    def _collect(self, requests) -> tuple[dict, _Failure | None]:
        """Await one response per request, in send order per worker.

        Pipes are FIFO and workers serve serially, so each worker's
        replies arrive in its own request order.  On a failure the
        remaining workers are still drained (bounded by the response
        timeout) so stray replies cannot pollute the next fan-out; an
        unresponsive worker is demoted.
        """
        payloads: dict[int, dict] = {}
        failure: _Failure | None = None
        for worker, request_id in requests:
            message = self._recv_matching(worker, "result", request_id)
            if message is None:
                if failure is None:
                    failure = _Failure(
                        "worker-error",
                        f"worker pid {worker.pid} stopped responding")
                continue
            if message[0] == "error":
                kind, detail = message[2], message[3]
                worker.applied_lsn = message[4]
                if failure is None:
                    reason = ("freshness" if kind == "StaleReplicaError"
                              else "worker-error")
                    failure = _Failure(reason, f"{kind}: {detail}")
                continue
            payloads[request_id] = message[2]
        return payloads, failure

    def _recv_matching(self, worker: _Worker, kind: str,
                       request_id: int):
        """The next reply for ``request_id`` (or the matching error);
        None on timeout/EOF, which also demotes the worker."""
        if not worker.alive:
            return None
        deadline = time.monotonic() + self._response_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not worker.conn.poll(remaining):
                self._demote(worker, "response-timeout")
                return None
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                self._demote(worker, "recv-eof")
                return None
            if message[0] == kind and message[1] == request_id:
                return message
            if message[0] == "error" and message[1] == request_id:
                return message
            # A reply to an abandoned earlier request: drop it.
