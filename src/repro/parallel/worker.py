"""The follower process: bootstrap a replica, then serve the pipe.

``worker_main`` is the target of every :class:`~repro.parallel.pool.
ProcessPool` process.  Its contract is built on one property: the pipe
is FIFO.  The primary sends, in order, one ``init`` message (checkpoint
state + base LSN), then an interleaving of ``wal`` records (log
shipping, sent from inside the primary's exclusive writer section) and
request messages (sent while the primary holds its read lock).  Because
every record the primary applied before a request was *sent* before
that request, draining the pipe in order means the replica is never
behind the watermark a request carries — the ``ensure_fresh`` check is
a corruption tripwire, not an expected path.

Requests never transfer live node objects between processes: results
are serialized on the worker (each item as ``(text, is_atomic)`` so the
orchestrator can rebuild ``serialize_sequence`` byte-identically) and
the compiled query, plan notes, span tree and compiled-query-cache
outcome ride along as plain data.

Message protocol (tuples, pickled by ``multiprocessing.Connection``):

=========================================  ================================
primary → worker                           worker → primary
=========================================  ================================
``("init", state, base_lsn, order)``       ``("ready", applied, pid)``
``("wal", lsn, record)``                   —
``("xquery", id, text, ref, positions,     ``("result", id, payload)`` or
  required_lsn, trace?, indent?)``           ``("error", id, kind, msg,
``("stmt", id, text, required_lsn)``         applied)``
``("ping", id)``                           ``("pong", id, applied)``
``("shutdown",)``                          — (worker exits)
=========================================  ================================
"""

from __future__ import annotations

import os

from ..core.querycache import cache_info, compile_query, reinit_after_fork
from ..errors import ReproError
from ..obs.metrics import METRICS
from ..planner.plan import PrefilteredDatabase
from ..planner.stats import ExecutionStats
from ..xdm.nodes import Node
from ..xdm.sequence import AtomicValue, document_order
from ..xmlio.serializer import serialize
from ..xquery import ast
from ..xquery.evaluator import evaluate_module
from .replica import build_replica

__all__ = ["worker_main"]


def worker_main(conn) -> None:
    """Serve one replica over ``conn`` until shutdown or EOF."""
    # Fork safety: re-arm process-global state inherited from the
    # primary.  A forked lock captured mid-acquisition by another
    # parent thread would deadlock on first use, and a forked compiled-
    # query cache would blur the worker-side hit accounting the pool
    # reports — start both from a clean slate.
    METRICS.__init__()  # fresh lock, disabled, empty counters
    reinit_after_fork()
    try:
        message = conn.recv()
    except (EOFError, OSError):
        return
    replica = _bootstrap(conn, message)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "shutdown":
            return
        if kind == "wal":
            _lsn, _record = message[1], message[2]
            replica.apply_wal_record(_lsn, _record)
            continue
        if kind == "init":
            # Resync: rebuild the replica from freshly shipped state
            # (used for non-durable primaries whose writes don't ship).
            replica = _bootstrap(conn, message)
            continue
        if kind == "ping":
            conn.send(("pong", message[1], replica.last_applied_lsn))
            continue
        request_id = message[1]
        try:
            if kind == "xquery":
                payload = _serve_xquery(replica, *message[2:])
            elif kind == "stmt":
                payload = _serve_statement(replica, *message[2:])
            else:
                raise ReproError(f"unknown pool message kind {kind!r}")
            conn.send(("result", request_id, payload))
        except Exception as error:  # lint: broad-except-ok (a worker must survive any per-request failure and report it to the primary, which falls back to serial execution)
            conn.send(("error", request_id, type(error).__name__,
                       str(error), replica.last_applied_lsn))


def _bootstrap(conn, message):
    """Handle an ``init`` message: recover state into a fresh replica."""
    _kind, state, base_lsn, index_order = message
    replica = build_replica(state, [], index_order=index_order)
    if state is None:
        replica.last_applied_lsn = base_lsn
    conn.send(("ready", replica.last_applied_lsn, os.getpid()))
    return replica


def _serve_xquery(replica, query: str, reference: str,
                  positions: list[int], required_lsn: int,
                  with_trace: bool, indent: bool) -> dict:
    """One partition of a fanned-out xquery: evaluate and serialize.

    The primary already planned prefilters and resolved them to
    ``positions`` — indexes into the column's document list, which is
    identical on primary and replica because shipped records replay in
    LSN order.  The worker therefore goes straight to evaluation over a
    PrefilteredDatabase view; it never re-plans.
    """
    replica.ensure_fresh(required_lsn)
    before = cache_info()
    compiled = compile_query(query)
    cache_hit = cache_info().hits > before.hits
    table, column = replica._split_reference(reference)
    docs = replica.documents(table, column)
    chosen = {docs[position].doc_id for position in positions}
    view = PrefilteredDatabase(replica, {reference: chosen})
    stats = ExecutionStats()
    tracer = None
    if with_trace:
        from ..obs.trace import Tracer
        tracer = Tracer(statement=query, language="xquery")
        with tracer.span("replica-eval", documents=len(positions),
                         pid=os.getpid(),
                         applied_lsn=replica.last_applied_lsn) as span:
            items = evaluate_module(compiled.module, database=view,
                                    stats=stats)
            span.set(actual_rows=len(items), unit="items")
    else:
        items = evaluate_module(compiled.module, database=view,
                                stats=stats)
    if isinstance(compiled.module.body,
                  (ast.PathExpr, ast.FunctionCall)) \
            and all(isinstance(item, Node) for item in items):
        # Pure path bodies are document-order sorted per partition; the
        # orchestrator concatenates contiguous partitions, which
        # preserves global order because replica creation order equals
        # row order (records replay in LSN order).
        items = document_order(items)
    return {
        "items": [(serialize(item, indent=indent),
                   isinstance(item, AtomicValue)) for item in items],
        "stats": stats,
        "spans": tracer.to_dict()["spans"] if tracer else None,
        "cache_hit": cache_hit,
        "applied": replica.last_applied_lsn,
    }


def _serve_statement(replica, statement: str, required_lsn: int) -> dict:
    """One statement of a fanned-out ``execute_many`` batch.

    Read-only by construction (the pool routes any batch containing a
    write head to the primary); the replica refuses writes anyway.
    Unlike the partitioned xquery path this runs the full planner on
    the replica — its own indexes were rebuilt from shipped DDL.
    """
    replica.ensure_fresh(required_lsn)
    head = statement.lstrip().upper()
    if head.startswith(("SELECT", "VALUES")):
        result = replica.sql(statement)
        return {
            "sql": True,
            "columns": list(result.columns),
            "rows": [list(row) for row in result.serialize_rows()],
            "stats": result.stats,
            "applied": replica.last_applied_lsn,
        }
    result = replica.xquery(statement)
    return {
        "items": [(serialize(item), isinstance(item, AtomicValue))
                  for item in result.items],
        "stats": result.stats,
        "spans": None,
        "cache_hit": False,
        "applied": replica.last_applied_lsn,
    }
