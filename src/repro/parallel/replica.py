"""Read-only replicas: a Database rebuilt from shipped state + WAL.

A :class:`ReplicaDatabase` is the follower half of log shipping.  It is
bootstrapped from the primary's encoded checkpoint state (the same
document :func:`repro.durability.checkpoint.encode_database` produces
for disk checkpoints — recovery *is* the replication substrate) and
then advanced one logical WAL record at a time by
:meth:`apply_wal_record`, exactly the replay path crash recovery uses.
Because replay drives the ordinary public write path, the replica
rebuilds path summaries, re-validates schemas, and maintains its own
B+Tree indexes from DDL — indexes are derived state on the follower
just as they are in a checkpoint.

Everything except the replication apply path is sealed: once bootstrap
finishes, direct writes raise :class:`repro.errors.ReplicationError`.
The freshness watermark ``last_applied_lsn`` is advanced atomically
with each applied record (under the replica's own write lock), and
:meth:`ensure_fresh` is the stale-read gate the worker loop calls
before serving any request.
"""

from __future__ import annotations

from ..durability.recovery import apply_checkpoint_state, apply_wal_record
from ..errors import ReplicationError, StaleReplicaError
from ..schema.schema import Schema
from ..storage.catalog import Database

__all__ = ["ReplicaDatabase", "build_replica"]

_WRITER_NAMES = ("create_table", "drop_table", "register_schema",
                 "create_xml_index", "create_relational_index",
                 "drop_index", "insert", "delete_rows")


class ReplicaDatabase(Database):
    """A Database that only moves forward by applying shipped records.

    Reads (``xquery``, ``sql`` SELECT/VALUES, snapshots, explains) work
    exactly as on the primary; writes are allowed only during bootstrap
    and through :meth:`apply_wal_record`.
    """

    def __init__(self, index_order: int = 64):
        super().__init__(index_order=index_order)
        #: Validation schemas referenced by shipped rows without being
        #: registered in the catalog (mirrors DurableDatabase).
        self._doc_schemas: dict[str, Schema] = {}
        #: LSN of the last applied record — the freshness watermark.
        self.last_applied_lsn = 0
        self._sealed = False
        self._applying = False

    # ------------------------------------------------------------------
    # Replication apply path
    # ------------------------------------------------------------------

    def apply_wal_record(self, lsn: int, record: dict) -> bool:
        """Apply one shipped logical record and advance the watermark.

        Records at or below the watermark are skipped (idempotent
        redelivery, same guard recovery uses for stale logs).  Returns
        True when the record was applied.  State change and watermark
        advance happen under one exclusive section, so a reader that
        observes ``last_applied_lsn >= L`` is guaranteed to see every
        record up to ``L``.
        """
        with self._rwlock.write():
            if lsn <= self.last_applied_lsn:
                return False
            self._applying = True
            try:
                apply_wal_record(self, record)
            finally:
                self._applying = False
            self.last_applied_lsn = lsn
            return True

    def seal(self) -> None:
        """End bootstrap: from here on only shipped records may write."""
        self._sealed = True

    # ------------------------------------------------------------------
    # Freshness gate
    # ------------------------------------------------------------------

    def ensure_fresh(self, required_lsn: int) -> None:
        """Refuse to serve a snapshot the replica has not caught up to."""
        if required_lsn > self.last_applied_lsn:
            raise StaleReplicaError(required_lsn, self.last_applied_lsn)

    # ------------------------------------------------------------------
    # Write sealing
    # ------------------------------------------------------------------

    def _guard_write(self, operation: str) -> None:
        if self._sealed and not self._applying:
            raise ReplicationError(
                f"replica is read-only: {operation}() is only reachable "
                f"through apply_wal_record() once bootstrap is sealed")


def _sealed_writer(name: str):
    base = getattr(Database, name)

    def writer(self, *args, **kwargs):
        self._guard_write(name)
        return base(self, *args, **kwargs)

    writer.__name__ = name
    writer.__qualname__ = f"ReplicaDatabase.{name}"
    writer.__doc__ = (f"Sealed override of Database.{name}: raises "
                      f"ReplicationError unless applying a shipped "
                      f"record or still bootstrapping.")
    return writer


for _name in _WRITER_NAMES:
    setattr(ReplicaDatabase, _name, _sealed_writer(_name))
del _name


def build_replica(state: dict | None, records, *,
                  index_order: int = 64) -> ReplicaDatabase:
    """Bootstrap a replica from a checkpoint document plus a WAL tail.

    ``state`` is the primary's encoded checkpoint (or None for an
    empty-at-LSN-0 primary); ``records`` is an iterable of
    ``(lsn, record)`` pairs — typically :func:`repro.durability.wal.
    tail_wal` output or the pipe-shipped equivalent.  Records at or
    below the checkpoint LSN are skipped, mirroring recovery's stale-
    log guard, so checkpoint + tail overlap is harmless.
    """
    replica = ReplicaDatabase(index_order=index_order)
    if state is not None:
        apply_checkpoint_state(replica, state, None)
        replica.last_applied_lsn = state["last_lsn"]
    for lsn, record in records:
        replica.apply_wal_record(lsn, record)
    replica.seal()
    return replica
