"""Index eligibility: the paper's Definition 1 as an algorithm.

An index ``I`` is eligible to answer predicate ``P`` of query ``Q`` iff
``Q(D) = Q(I(P, D))`` for every document collection ``D``.  The checker
decomposes this exactly as Section 2.2 and Section 3 do:

1. the predicate's *context* must let an empty result eliminate a
   binding (Sections 3.2, 3.4) and must not sit under negation;
2. the index pattern must be **no more restrictive** than the predicate
   path — pattern containment, covering namespaces (§3.7), ``/text()``
   alignment (§3.8) and attribute axes (§3.9);
3. the comparison's data type must guarantee that every qualifying
   value is present in the index (§3.1): a DOUBLE index only serves
   numeric comparisons, a VARCHAR index serves string comparisons and
   purely structural (existence) predicates, and an unknown comparison
   type (an uncast join) serves nothing — Tip 1.

Comparison types come from static inference, not surface syntax: the
compiled-query cache (:mod:`repro.core.querycache`) runs
:func:`repro.static.infer.refine_candidates` over the extracted
candidates, so a ``let``-hoisted cast or a folded constant yields the
same Definition-1 verdict as an inline ``xs:double(.)`` — only a
genuinely untyped operand is rejected as ``TYPE_UNKNOWN``.
"""

from __future__ import annotations

from ..errors import ReproError
from ..xquery import ast
from ..xquery.parser import parse_xquery
from .patterns import erase_namespaces, pattern_contains
from .predicates import (FILTERING_CONTEXTS, PredicateCandidate,
                         PredicateContext, extract_candidates)
from .report import (EligibilityReport, IndexVerdict, PredicateReport,
                     Reason)

#: Context -> the reason explaining why it prevents filtering.
_CONTEXT_REASONS = {
    PredicateContext.LET_BINDING: Reason.LET_BINDING,
    PredicateContext.CONSTRUCTOR_CONTENT: Reason.CONSTRUCTOR_CONTENT,
    PredicateContext.SQL_SELECT_LIST: Reason.SQL_SELECT_LIST,
    PredicateContext.SQL_BOOLEAN_XMLEXISTS: Reason.BOOLEAN_XMLEXISTS,
    PredicateContext.SQL_XMLTABLE_COLUMN: Reason.XMLTABLE_COLUMN,
    PredicateContext.SQL_SCALAR: Reason.SQL_SELECT_LIST,
    PredicateContext.QUANTIFIED_EVERY: Reason.NEGATION,
}


def check_index(index, candidate: PredicateCandidate) -> IndexVerdict:
    """Decide whether one XML index can answer one predicate."""
    reasons: list[Reason] = []
    detail_parts: list[str] = []

    if candidate.negated:
        reasons.append(Reason.NEGATION)
    if candidate.uses_sql_comparison:
        reasons.append(Reason.SQL_COMPARISON)
    if candidate.context not in FILTERING_CONTEXTS:
        reasons.append(_CONTEXT_REASONS.get(candidate.context,
                                            Reason.LET_BINDING))
        detail_parts.append(f"context: {candidate.context.value}")

    if not pattern_contains(index.pattern, candidate.path):
        reasons.append(_classify_pattern_failure(index, candidate))
        detail_parts.append(
            f"index pattern '{index.pattern}' does not contain "
            f"predicate path '{candidate.path}'")
    else:
        type_reason = _check_type(index, candidate)
        if type_reason is not None:
            reasons.append(type_reason)
            detail_parts.append(
                f"comparison type {candidate.operand_type or 'unknown'} "
                f"vs index type {index.index_type}")

    if not reasons:
        return IndexVerdict(index.name, True, [Reason.ELIGIBLE],
                            detail=f"probe {index.index_type} index with "
                                   f"{candidate.description}")
    return IndexVerdict(index.name, False, reasons,
                        detail="; ".join(detail_parts))


def _classify_pattern_failure(index, candidate) -> Reason:
    query_final_kinds = {test.kind for test in candidate.path.final_tests()}
    index_final_kinds = {test.kind for test in index.pattern.final_tests()}
    if pattern_contains(erase_namespaces(index.pattern),
                        erase_namespaces(candidate.path)):
        return Reason.NAMESPACE_MISMATCH
    if "text" in query_final_kinds and "text" not in index_final_kinds:
        return Reason.TEXT_MISALIGNMENT
    if "text" in index_final_kinds and "text" not in query_final_kinds:
        return Reason.TEXT_MISALIGNMENT
    if "attribute" in query_final_kinds and \
            "attribute" not in index_final_kinds:
        return Reason.ATTRIBUTE_AXIS
    if "attribute" in index_final_kinds and \
            "element" in query_final_kinds:
        # The reverse §3.9 confusion: would the index contain the
        # query if its final element step used the attribute axis?
        flipped = _flip_final_to_attribute(candidate.path)
        if flipped is not None and pattern_contains(index.pattern,
                                                    flipped):
            return Reason.ATTRIBUTE_AXIS
    return Reason.PATTERN_NOT_CONTAINED


def _flip_final_to_attribute(path):
    from .patterns import (LinearPattern, PathPattern, PatternStep,
                           StepTest)
    alternatives = []
    for alternative in path.alternatives:
        steps = alternative.steps
        final = steps[-1] if steps else None
        if final is None or final.test.kind != "element":
            return None
        flipped = StepTest("attribute", final.test.uri,
                           final.test.local)
        alternatives.append(LinearPattern(
            steps[:-1] + (PatternStep(flipped, final.gap),)))
    return PathPattern(tuple(alternatives))


def _check_type(index, candidate: PredicateCandidate) -> Reason | None:
    if candidate.op == "exists":
        # Structural predicate: only an index guaranteed to contain
        # every matching node can prove existence — that is VARCHAR
        # ("all nodes appear in a string index", §2.1).
        if index.index_type == "VARCHAR":
            return None
        return Reason.TYPE_MISMATCH
    if candidate.operand_type is None:
        return Reason.TYPE_UNKNOWN
    if candidate.operand_type == index.index_type:
        return None
    return Reason.TYPE_MISMATCH


def analyze_candidates(database, candidates: list[PredicateCandidate],
                       query_text: str = "",
                       language: str = "xquery") -> EligibilityReport:
    """Evaluate every candidate against every index on its column."""
    report = EligibilityReport(query=query_text, language=language)
    for candidate in candidates:
        table, _sep, column = candidate.column.partition(".")
        predicate_report = PredicateReport(
            description=candidate.description,
            column=candidate.column,
            context=candidate.context.value)
        try:
            indexes = database.xml_indexes_on(table, column)
        except ReproError:
            indexes = []
        for index in indexes:
            predicate_report.verdicts.append(check_index(index, candidate))
        report.predicates.append(predicate_report)
    return report


def analyze_eligibility(database, query: str,
                        language: str = "auto") -> EligibilityReport:
    """Public entry point: analyze a query's index eligibility.

    ``language`` may be 'xquery', 'sql', or 'auto' (SQL when the text
    starts with SELECT/VALUES).
    """
    if language == "auto":
        head = query.lstrip().upper()
        language = ("sql" if head.startswith(("SELECT", "VALUES"))
                    else "xquery")
    if language == "sql":
        from ..sql.analyzer import extract_sql_candidates
        candidates = extract_sql_candidates(database, query)
        return analyze_candidates(database, candidates, query, "sql")
    from .querycache import compile_query
    candidates = list(compile_query(query).candidates)
    return analyze_candidates(database, candidates, query, "xquery")
