"""Core contribution: index eligibility analysis, between detection,
pattern containment, and the pitfall advisor."""

from .advisor import Advice, advise, advise_index_pattern
from .between import BetweenGroup, detect_between
from .eligibility import (analyze_candidates, analyze_eligibility,
                          check_index)
from .patterns import (LinearPattern, PathComponent, PathPattern,
                       PatternStep, StepTest, erase_namespaces,
                       parse_xmlpattern, pattern_contains)
from .predicates import (FILTERING_CONTEXTS, Origin, PredicateCandidate,
                         PredicateContext, SQLTypedValue,
                         extract_candidates)
from .querycache import CompiledQuery, compile_query
from .report import EligibilityReport, IndexVerdict, PredicateReport, Reason
from .rewriter import RewriteResult, rewrite_view_flattening

__all__ = [
    "Advice", "advise", "advise_index_pattern",
    "BetweenGroup", "CompiledQuery", "compile_query",
    "EligibilityReport", "FILTERING_CONTEXTS",
    "IndexVerdict", "LinearPattern", "Origin", "PathComponent",
    "PathPattern", "PatternStep", "PredicateCandidate", "PredicateContext",
    "PredicateReport", "Reason", "SQLTypedValue", "StepTest",
    "analyze_candidates", "analyze_eligibility", "check_index",
    "detect_between", "erase_namespaces", "extract_candidates",
    "parse_xmlpattern", "pattern_contains",
]
