"""Predicate extraction: find candidate indexable predicates in a query.

The extractor walks an XQuery AST tracking two things the paper shows
are decisive:

1. **provenance** — whether an expression's value is reachable from an
   XML column through a linear path (``db2-fn:xmlcolumn('T.C')/a//b``,
   possibly through ``for``/``let`` variables and SQL PASSING
   arguments), and
2. **context** — whether an empty result at that position eliminates a
   binding (for-clauses, where-clauses, bind-out in return clauses,
   XMLEXISTS in a WHERE, the XMLTABLE row-producer) or must be
   preserved (let bindings, constructor content, select lists, XMLTABLE
   column paths) — the Section 3.2/3.4 analysis.

Every comparison (or bare existence path) found against column data
becomes a :class:`PredicateCandidate` with the *full* root-to-node path
pattern, the inferred comparison type (Section 3.1), singleton
guarantees for between-detection (Section 3.10), and its context.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from ..errors import ReproError
from ..xdm import atomic
from ..xdm.atomic import AtomicValue
from ..xquery import ast
from .patterns import LinearPattern, PathPattern, PatternStep, StepTest


class PredicateContext(enum.Enum):
    PATH_FILTER = "path filter"
    FOR_BINDING = "for binding"
    WHERE_CLAUSE = "where clause"
    LET_BINDING = "let binding"
    LET_WITH_WHERE = "let binding consumed by where"
    RETURN_BINDOUT = "return bind-out"
    CONSTRUCTOR_CONTENT = "constructor content"
    QUANTIFIED_SOME = "some-quantified"
    QUANTIFIED_EVERY = "every-quantified"
    SQL_SELECT_LIST = "SQL select list (XMLQUERY)"
    SQL_WHERE_XMLEXISTS = "SQL WHERE (XMLEXISTS)"
    SQL_BOOLEAN_XMLEXISTS = "SQL WHERE (XMLEXISTS with boolean body)"
    SQL_XMLTABLE_ROW = "XMLTABLE row-producer"
    SQL_XMLTABLE_COLUMN = "XMLTABLE column path"
    SQL_SCALAR = "SQL scalar expression (XMLCAST/XMLQUERY)"
    SQL_WHERE_COMPARISON = "SQL WHERE comparison over XMLCAST"


#: Contexts in which an empty result eliminates a binding, so an index
#: pre-filter preserves query semantics (Definition 1).
FILTERING_CONTEXTS = frozenset({
    PredicateContext.PATH_FILTER,
    PredicateContext.FOR_BINDING,
    PredicateContext.WHERE_CLAUSE,
    PredicateContext.LET_WITH_WHERE,
    PredicateContext.RETURN_BINDOUT,
    PredicateContext.QUANTIFIED_SOME,
    PredicateContext.SQL_WHERE_XMLEXISTS,
    PredicateContext.SQL_XMLTABLE_ROW,
    # A WHERE comparison does filter rows — when it is ineligible it is
    # because of SQL comparison semantics (§3.3), not its position.
    PredicateContext.SQL_WHERE_COMPARISON,
})


@dataclass(frozen=True)
class Origin:
    """Provenance of a value: an XML column plus a linear path."""

    column: str                      # 'table.column', lower-case
    steps: tuple[PatternStep, ...] = ()
    #: Comparison type forced by a trailing cast step (e.g. xs:double(.)).
    cast_type: str | None = None

    def extend(self, steps: tuple[PatternStep, ...]) -> "Origin":
        return Origin(self.column, self.steps + steps, None)


@dataclass(frozen=True)
class SQLTypedValue:
    """Provenance of a relational PASSING argument: its SQL type name."""

    sql_type: str      # 'VARCHAR' | 'DOUBLE' | 'INTEGER' | ...


_CONJUNCT_GROUPS = itertools.count(1)
_COMPARISON_IDS = itertools.count(1)


@dataclass
class PredicateCandidate:
    column: str
    path: PathPattern
    op: str                              # '=', '<', 'eq', ..., 'exists'
    operand_type: str | None             # index type name or None
    operand_value: AtomicValue | None
    context: PredicateContext
    negated: bool = False
    in_disjunction: bool = False
    disjunction_group: int | None = None
    conjunct_group: int = 0
    singleton_guaranteed: bool = False
    uses_sql_comparison: bool = False
    description: str = ""
    #: XQuery AST of the non-indexed operand (for join probes) and the
    #: variables it references — lets the SQL planner run an index
    #: nested-loop join (Queries 13/16) by evaluating the operand per
    #: outer row and probing the index with the result.
    operand_expr: object | None = None
    operand_vars: frozenset[str] = frozenset()
    #: Shared by the two candidates a single comparison emits — lets
    #: the planner pair up the sides of a join predicate.
    comparison_id: int = 0

    @property
    def is_range(self) -> bool:
        return self.op in ("<", "<=", ">", ">=", "lt", "le", "gt", "ge")

    @property
    def is_equality(self) -> bool:
        return self.op in ("=", "eq")


@dataclass
class _WalkState:
    context: PredicateContext
    negated: bool = False
    disjunction_group: int | None = None
    conjunct_group: int = 0
    #: let-variables whose candidates get upgraded if a where consumes them
    let_candidates: dict[str, list[PredicateCandidate]] = field(
        default_factory=dict)

    def with_context(self, context: PredicateContext) -> "_WalkState":
        return replace(self, context=context)


def extract_candidates(module: ast.Module,
                       base_scope: dict[str, object] | None = None,
                       base_context: PredicateContext =
                       PredicateContext.PATH_FILTER,
                       suppress_xmlcolumn: bool = False
                       ) -> list[PredicateCandidate]:
    """Extract all candidate predicates from an XQuery module body.

    ``suppress_xmlcolumn=True`` ignores ``db2-fn:xmlcolumn`` origins —
    the SQL layer uses it to separate per-row (PASSING-variable)
    candidates, which take their context from the SQL statement, from
    collection-level candidates, which take it from the XQuery body.
    """
    extractor = _Extractor(suppress_xmlcolumn=suppress_xmlcolumn)
    state = _WalkState(context=base_context)
    extractor.walk(module.body, dict(base_scope or {}), state)
    return extractor.candidates


class _Extractor:
    def __init__(self, suppress_xmlcolumn: bool = False):
        self.candidates: list[PredicateCandidate] = []
        self.suppress_xmlcolumn = suppress_xmlcolumn

    def emit(self, candidate: PredicateCandidate) -> None:
        self.candidates.append(candidate)

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------

    def origin_of(self, expr: ast.Expr,
                  scope: dict[str, object]) -> Origin | None:
        """Resolve an expression to (column, linear path), if possible.

        Side effect free: predicates encountered along the way are NOT
        analyzed here (callers do that explicitly so that context is
        attributed correctly).
        """
        if isinstance(expr, ast.VarRef):
            bound = scope.get(expr.name)
            return bound if isinstance(bound, Origin) else None
        if isinstance(expr, ast.ContextItem):
            bound = scope.get(".")
            return bound if isinstance(bound, Origin) else None
        if isinstance(expr, ast.FunctionCall):
            if expr.name.local == "xmlcolumn" and len(expr.args) == 1:
                if self.suppress_xmlcolumn:
                    return None
                argument = expr.args[0]
                if isinstance(argument, ast.Literal):
                    return Origin(argument.value.string_value().lower())
                return None
            if expr.name.local in ("data", "string", "zero-or-one",
                                   "exactly-one", "one-or-more") and \
                    len(expr.args) == 1:
                inner = self.origin_of(expr.args[0], scope)
                if inner is not None and expr.name.local == "string":
                    return replace(inner, cast_type="VARCHAR")
                return inner
            cast_type = _cast_function_type(expr)
            if cast_type is not None and len(expr.args) == 1:
                inner = self.origin_of(expr.args[0], scope)
                if inner is not None:
                    return replace(inner, cast_type=cast_type)
                return None
            return None
        if isinstance(expr, ast.CastExpr):
            inner = self.origin_of(expr.operand, scope)
            if inner is not None:
                return replace(inner,
                               cast_type=_xdm_to_index_type(expr.type_name))
            return None
        if isinstance(expr, ast.TreatExpr):
            return self.origin_of(expr.operand, scope)
        if isinstance(expr, ast.FilterExpr):
            # Predicates qualify nodes but do not change the path.
            return self.origin_of(expr.primary, scope)
        if isinstance(expr, ast.PathExpr):
            return self._path_origin(expr, scope)
        return None

    def _path_origin(self, expr: ast.PathExpr,
                     scope: dict[str, object]) -> Origin | None:
        steps = expr.steps
        if expr.absolute:
            base = scope.get(".")
            if not isinstance(base, Origin) or base.steps:
                return None  # leading '/' only analyzable at document root
            origin = base
            if expr.absolute == "//":
                pending_gap = True
            else:
                pending_gap = False
        else:
            first = steps[0]
            if isinstance(first, ast.ExprStep):
                origin = self.origin_of(first.expr, scope)
                steps = steps[1:]
            else:
                base = scope.get(".")
                origin = base if isinstance(base, Origin) else None
            if origin is None:
                return None
            pending_gap = False

        pattern_steps = list(origin.steps)
        cast_type: str | None = None
        for step in steps:
            cast_type = None
            if isinstance(step, ast.ExprStep):
                step_cast = _cast_step_type(step.expr)
                if step_cast is not None:
                    cast_type = step_cast
                    continue  # xs:double(.) step: path unchanged
                return None
            converted = _axis_step_to_pattern(step, pending_gap)
            if converted is None:
                return None
            pattern_steps_delta, pending_gap = converted
            pattern_steps.extend(pattern_steps_delta)
        return Origin(origin.column, tuple(pattern_steps),
                      cast_type or origin.cast_type)

    # ------------------------------------------------------------------
    # Walk
    # ------------------------------------------------------------------

    def walk(self, expr: ast.Expr, scope: dict[str, object],
             state: _WalkState) -> None:
        method = getattr(self, f"_walk_{type(expr).__name__}", None)
        if method is not None:
            method(expr, scope, state)
            return
        # Default: recurse into children with the same state.
        for child in _child_expressions(expr):
            self.walk(child, scope, state)

    # -- FLWOR -----------------------------------------------------------

    def _walk_FLWORExpr(self, expr: ast.FLWORExpr, scope, state) -> None:
        scope = dict(scope)
        let_vars: dict[str, list[PredicateCandidate]] = {}
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                self._analyze_binding(clause.expr, scope, state,
                                      PredicateContext.FOR_BINDING)
                scope[clause.var] = self.origin_of(clause.expr, scope)
            elif isinstance(clause, ast.LetClause):
                before = len(self.candidates)
                self._analyze_binding(clause.expr, scope, state,
                                      PredicateContext.LET_BINDING)
                let_vars[clause.var] = self.candidates[before:]
                scope[clause.var] = self.origin_of(clause.expr, scope)
            elif isinstance(clause, ast.WhereClause):
                self._analyze_boolean(
                    clause.expr, scope,
                    state.with_context(PredicateContext.WHERE_CLAUSE))
                # A where clause that consumes a let variable discards
                # its empty sequences — upgrade (Section 3.4, Query 21).
                for var in _variables_in(clause.expr):
                    for candidate in let_vars.get(var, []):
                        if candidate.context is PredicateContext.LET_BINDING:
                            candidate.context = \
                                PredicateContext.LET_WITH_WHERE
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    self.walk(spec.expr, scope, state)
        self._walk_return(expr.return_expr, scope, state)

    def _analyze_binding(self, expr, scope, state,
                         context: PredicateContext) -> None:
        self.walk(expr, scope, state.with_context(context))

    def _walk_return(self, expr, scope, state) -> None:
        self.walk(expr, scope,
                  state.with_context(PredicateContext.RETURN_BINDOUT))

    def _walk_QuantifiedExpr(self, expr: ast.QuantifiedExpr, scope,
                             state) -> None:
        scope = dict(scope)
        context = (PredicateContext.QUANTIFIED_SOME
                   if expr.quantifier == "some"
                   else PredicateContext.QUANTIFIED_EVERY)
        for var, binding in expr.bindings:
            self.walk(binding, scope, state.with_context(context))
            scope[var] = self.origin_of(binding, scope)
        self._analyze_boolean(expr.satisfies, scope,
                              state.with_context(context))

    # -- constructors: content preserves empty sequences -----------------

    def _walk_DirectElementConstructor(self, expr, scope, state) -> None:
        inner = state.with_context(PredicateContext.CONSTRUCTOR_CONTENT)
        for _name, template in expr.attributes:
            for part in template.parts:
                if not isinstance(part, str):
                    self.walk(part, scope, inner)
        for piece in expr.content:
            if isinstance(piece, str):
                continue
            self.walk(piece, scope, inner)

    def _walk_ComputedElementConstructor(self, expr, scope, state) -> None:
        inner = state.with_context(PredicateContext.CONSTRUCTOR_CONTENT)
        if not isinstance(expr.name, str):
            self.walk(expr.name, scope, inner)
        if expr.content is not None:
            self.walk(expr.content, scope, inner)

    _walk_ComputedAttributeConstructor = _walk_ComputedElementConstructor

    # -- boolean structure ------------------------------------------------

    def _walk_AndExpr(self, expr: ast.AndExpr, scope, state) -> None:
        self._analyze_boolean(expr, scope, state)

    def _walk_OrExpr(self, expr: ast.OrExpr, scope, state) -> None:
        self._analyze_boolean(expr, scope, state)

    def _analyze_boolean(self, expr, scope, state: _WalkState) -> None:
        """Decompose where-style boolean expressions into conjuncts and
        disjuncts, preserving negation information."""
        if isinstance(expr, ast.AndExpr):
            group = next(_CONJUNCT_GROUPS)
            left_state = replace(state, conjunct_group=group)
            self._analyze_boolean(expr.left, scope, left_state)
            self._analyze_boolean(expr.right, scope, left_state)
            return
        if isinstance(expr, ast.OrExpr):
            group = next(_CONJUNCT_GROUPS)
            branch = replace(state, disjunction_group=group)
            self._analyze_boolean(expr.left, scope, branch)
            self._analyze_boolean(expr.right, scope, branch)
            return
        if isinstance(expr, ast.FunctionCall) and \
                expr.name.local in ("not",) and len(expr.args) == 1:
            self._analyze_boolean(expr.args[0], scope,
                                  replace(state, negated=not state.negated))
            return
        if isinstance(expr, (ast.GeneralComparison, ast.ValueComparison)):
            self._analyze_comparison(expr, scope, state)
            return
        if isinstance(expr, ast.FunctionCall) and \
                expr.name.local in ("exists",) and len(expr.args) == 1:
            self._emit_exists(expr.args[0], scope, state)
            return
        if isinstance(expr, ast.FunctionCall) and \
                expr.name.local == "between" and len(expr.args) == 3:
            self._analyze_between_call(expr, scope, state)
            return
        if isinstance(expr, (ast.PathExpr, ast.FilterExpr, ast.VarRef)):
            self._emit_exists(expr, scope, state)
            return
        self.walk(expr, scope, state)

    # -- comparisons -------------------------------------------------------

    def _walk_GeneralComparison(self, expr, scope, state) -> None:
        self._analyze_comparison(expr, scope, state)

    _walk_ValueComparison = _walk_GeneralComparison

    def _analyze_comparison(self, expr, scope, state: _WalkState) -> None:
        is_value_comparison = isinstance(expr, ast.ValueComparison)
        op = expr.op
        left_info = self._side_info(expr.left, scope, state)
        right_info = self._side_info(expr.right, scope, state)

        comparison_id = next(_COMPARISON_IDS)
        self._emit_side(left_info, right_info, op, state,
                        is_value_comparison, comparison_id)
        self._emit_side(right_info, left_info, _flip(op), state,
                        is_value_comparison, comparison_id)

    def _side_info(self, expr, scope, state) -> dict:
        origin = self.origin_of(expr, scope)
        literal = _literal_value(expr)
        sql_typed = None
        if isinstance(expr, ast.VarRef):
            bound = scope.get(expr.name)
            if isinstance(bound, SQLTypedValue):
                sql_typed = bound.sql_type
        # Nested predicates along comparison operands still need a walk
        # (e.g. $d//a[b > 1]/c > 2) — but only when it isn't a plain
        # path, to avoid double-emitting.
        if origin is None and literal is None and sql_typed is None:
            self.walk(expr, scope, state)
        else:
            self._walk_step_predicates(expr, scope, state)
        return {"origin": origin, "literal": literal,
                "sql_type": sql_typed, "expr": expr,
                "is_context": isinstance(expr, ast.ContextItem)}

    def _walk_step_predicates(self, expr, scope, state) -> None:
        """Analyze predicates nested inside a path's steps."""
        if isinstance(expr, ast.FilterExpr):
            base = self.origin_of(expr.primary, scope)
            inner_scope = dict(scope)
            inner_scope["."] = base
            for predicate in expr.predicates:
                self._analyze_boolean(predicate, inner_scope, state)
            self._walk_step_predicates(expr.primary, scope, state)
            return
        if not isinstance(expr, ast.PathExpr):
            return
        base = None
        if expr.absolute or not isinstance(expr.steps[0], ast.ExprStep):
            # Paths rooted at '/'-root or at the context item.
            maybe = scope.get(".")
            base = maybe if isinstance(maybe, Origin) else None
        steps = list(expr.steps)
        if steps and isinstance(steps[0], ast.ExprStep):
            base = self.origin_of(steps[0].expr, scope)
            first = steps[0]
            if first.predicates and base is not None:
                inner_scope = dict(scope)
                inner_scope["."] = base
                for predicate in first.predicates:
                    self._analyze_boolean(predicate, inner_scope, state)
            steps = steps[1:]
        if base is None:
            return
        prefix = base
        pending_gap = expr.absolute == "//"
        for step in steps:
            if isinstance(step, ast.ExprStep):
                if _cast_step_type(step.expr) is None:
                    return
                # A cast/atomization step (xs:double(.), data()) keeps
                # the path; its predicates see the same nodes — the
                # §3.10 self-axis form `price/data()[. > 100 ...]`.
            else:
                converted = _axis_step_to_pattern(step, pending_gap)
                if converted is None:
                    return
                delta, pending_gap = converted
                prefix = prefix.extend(tuple(delta))
            if step.predicates:
                inner_scope = dict(scope)
                inner_scope["."] = prefix
                for predicate in step.predicates:
                    self._analyze_boolean(predicate, inner_scope, state)

    def _emit_side(self, side: dict, other: dict, op: str,
                   state: _WalkState, is_value_comparison: bool,
                   comparison_id: int = 0) -> None:
        origin: Origin | None = side["origin"]
        if origin is None or not origin.column or not origin.steps:
            return
        operand_type = (origin.cast_type or
                        _implied_type(other, is_value_comparison))
        operand_value = other["literal"]
        pattern = PathPattern((LinearPattern(origin.steps),))
        final_kind = origin.steps[-1].test.kind
        # Singleton guarantees for between detection (§3.10): value
        # comparisons require singletons; the self axis ('.' inside a
        # step predicate) always binds one node; attributes occur at
        # most once per element (and list types are prohibited in
        # indexed documents, footnote 5).
        singleton = bool(
            is_value_comparison or final_kind == "attribute" or
            side.get("is_context", False))
        operand_expr = None if operand_value is not None else other["expr"]
        self.emit(PredicateCandidate(
            column=origin.column,
            path=pattern,
            op=op,
            operand_type=operand_type,
            operand_value=operand_value,
            context=state.context,
            negated=state.negated,
            in_disjunction=state.disjunction_group is not None,
            disjunction_group=state.disjunction_group,
            conjunct_group=state.conjunct_group,
            singleton_guaranteed=singleton,
            description=f"{pattern} {op} "
                        f"{_describe_operand(other)}",
            operand_expr=operand_expr,
            operand_vars=frozenset(_variables_in(operand_expr))
            if operand_expr is not None else frozenset(),
            comparison_id=comparison_id))

    def _analyze_between_call(self, expr, scope,
                              state: _WalkState) -> None:
        """fn:between($path, $low, $high) — the §4 extension.

        Its semantics put both bounds on the *same* value, so the two
        emitted candidates are singleton-guaranteed by construction and
        collapse to one range scan regardless of the path's node kind.
        """
        self._walk_step_predicates(expr.args[0], scope, state)
        origin = self.origin_of(expr.args[0], scope)
        if origin is None or not origin.column or not origin.steps:
            return
        group_state = replace(state, conjunct_group=next(_CONJUNCT_GROUPS))
        low = self._side_info(expr.args[1], scope, group_state)
        high = self._side_info(expr.args[2], scope, group_state)
        side = {"origin": origin, "literal": None, "sql_type": None,
                "expr": expr.args[0], "is_context": True}
        comparison_id = next(_COMPARISON_IDS)
        self._emit_side(side, low, "ge", group_state,
                        is_value_comparison=True,
                        comparison_id=comparison_id)
        self._emit_side(side, high, "le", group_state,
                        is_value_comparison=True,
                        comparison_id=comparison_id)

    def _emit_exists(self, expr, scope, state: _WalkState) -> None:
        origin = self.origin_of(expr, scope)
        self._walk_step_predicates(expr, scope, state)
        if origin is None or not origin.column or not origin.steps:
            return
        pattern = PathPattern((LinearPattern(origin.steps),))
        self.emit(PredicateCandidate(
            column=origin.column,
            path=pattern,
            op="exists",
            operand_type="VARCHAR",
            operand_value=None,
            context=state.context,
            negated=state.negated,
            in_disjunction=state.disjunction_group is not None,
            disjunction_group=state.disjunction_group,
            conjunct_group=state.conjunct_group,
            description=f"exists({pattern})"))

    # -- paths at statement level -----------------------------------------

    def _walk_PathExpr(self, expr: ast.PathExpr, scope, state) -> None:
        self._walk_step_predicates(expr, scope, state)

    def _walk_FilterExpr(self, expr: ast.FilterExpr, scope, state) -> None:
        self._walk_step_predicates(expr, scope, state)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _child_expressions(expr) -> list[ast.Expr]:
    children: list[ast.Expr] = []
    for name in getattr(expr, "__dataclass_fields__", {}):
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            children.append(value)
        elif isinstance(value, list):
            for element in value:
                if isinstance(element, ast.Expr):
                    children.append(element)
    return children


def _variables_in(expr) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.VarRef):
            names.add(node.name)
    return names


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=",
         "lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq",
         "ne": "ne"}


def _flip(op: str) -> str:
    return _FLIP.get(op, op)


def _axis_step_to_pattern(step: ast.AxisStep, pending_gap: bool
                          ) -> tuple[list[PatternStep], bool] | None:
    """Convert one AST axis step into pattern steps.

    Returns (steps, pending_gap_for_next) or None when the axis cannot
    be linearized (parent/ancestor/sibling axes).
    """
    test = _node_test_to_step_test(step.test, step.axis)
    if test is None:
        return None
    if step.axis == "descendant-or-self":
        if isinstance(step.test, ast.KindTest) and step.test.kind == "node":
            return [], True  # the '//' expansion marker
        return None
    if step.axis == "descendant":
        return [PatternStep(test, gap=True)], False
    if step.axis in ("child", "attribute"):
        return [PatternStep(test, gap=pending_gap)], False
    if step.axis == "self":
        return None  # rare in predicates; treat as unanalyzable
    return None


def _node_test_to_step_test(test: ast.NodeTest, axis: str
                            ) -> StepTest | None:
    if isinstance(test, ast.KindTest):
        if test.kind == "node":
            return StepTest("attribute" if axis == "attribute" else "node")
        if test.kind == "document":
            return None
        return StepTest(test.kind, pi_target=test.target)
    kind = "attribute" if axis == "attribute" else "element"
    return StepTest(kind, uri=test.uri, local=test.local)


def _literal_value(expr) -> AtomicValue | None:
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.CastExpr) and isinstance(expr.operand,
                                                     ast.Literal):
        try:
            return atomic.cast(expr.operand.value, expr.type_name)
        except ReproError:
            return None
    if isinstance(expr, ast.FunctionCall) and len(expr.args) == 1 and \
            isinstance(expr.args[0], ast.Literal):
        cast_type = _cast_function_type(expr)
        if cast_type is not None:
            try:
                return atomic.cast(expr.args[0].value,
                                   _index_to_xdm_type(cast_type))
            except ReproError:
                return None
    return None


_XDM_TO_INDEX = {
    atomic.T_DOUBLE: "DOUBLE",
    atomic.T_DECIMAL: "DOUBLE",
    atomic.T_INTEGER: "DOUBLE",
    atomic.T_LONG: "DOUBLE",
    atomic.T_STRING: "VARCHAR",
    atomic.T_DATE: "DATE",
    atomic.T_DATETIME: "TIMESTAMP",
}

_INDEX_TO_XDM = {
    "DOUBLE": atomic.T_DOUBLE,
    "VARCHAR": atomic.T_STRING,
    "DATE": atomic.T_DATE,
    "TIMESTAMP": atomic.T_DATETIME,
}


def _xdm_to_index_type(type_name: str) -> str | None:
    return _XDM_TO_INDEX.get(type_name)


def _index_to_xdm_type(index_type: str) -> str:
    return _INDEX_TO_XDM[index_type]


def _cast_function_type(expr: ast.FunctionCall) -> str | None:
    """xs:double(...) style constructor calls imply a comparison type."""
    from ..xdm.qname import XDT_NS, XS_NS
    if expr.name.uri not in (XS_NS, XDT_NS):
        return None
    mapping = {
        "double": "DOUBLE", "float": "DOUBLE", "decimal": "DOUBLE",
        "integer": "DOUBLE", "int": "DOUBLE", "long": "DOUBLE",
        "string": "VARCHAR", "date": "DATE", "dateTime": "TIMESTAMP",
    }
    return mapping.get(expr.name.local)


def _cast_step_type(expr: ast.Expr) -> str | None:
    """Is this ExprStep a per-item cast like ``xs:double(.)``?

    Returns the implied comparison type, "ANY" for type-preserving
    atomization steps (``data()`` / ``data(.)``), or None when the step
    is not a recognized cast (the path then becomes unanalyzable).
    """
    if not isinstance(expr, ast.FunctionCall):
        return None
    args_ok = (len(expr.args) == 0 or
               (len(expr.args) == 1 and
                isinstance(expr.args[0], ast.ContextItem)))
    if not args_ok:
        return None
    if expr.name.local == "data":
        return "ANY"  # atomization: path unchanged, type unknown
    if len(expr.args) == 1:
        return _cast_function_type(expr)
    return None


_SQL_TO_INDEX = {
    "VARCHAR": "VARCHAR", "CHAR": "VARCHAR",
    "INTEGER": "DOUBLE", "BIGINT": "DOUBLE", "DOUBLE": "DOUBLE",
    "DECIMAL": "DOUBLE", "NUMERIC": "DOUBLE",
    "DATE": "DATE", "TIMESTAMP": "TIMESTAMP",
}


def _implied_type(other: dict, is_value_comparison: bool) -> str | None:
    """Infer the comparison type from the *other* operand (§3.1)."""
    origin: Origin | None = other["origin"]
    if origin is not None and origin.cast_type:
        return None if origin.cast_type == "ANY" else origin.cast_type
    literal: AtomicValue | None = other["literal"]
    if literal is not None:
        return _xdm_to_index_type(literal.type_name)
    if other["sql_type"] is not None:
        return _SQL_TO_INDEX.get(other["sql_type"])
    return None


def _describe_operand(side: dict) -> str:
    if side["literal"] is not None:
        return repr(side["literal"].string_value())
    origin = side["origin"]
    if origin is not None:
        suffix = f" (cast {origin.cast_type})" if origin.cast_type else ""
        if origin.steps:
            return (f"{origin.column}:"
                    f"{PathPattern((LinearPattern(origin.steps),))}{suffix}")
        return f"{origin.column}{suffix}"
    if side["sql_type"] is not None:
        return f"<SQL {side['sql_type']}>"
    return "<expr>"
