"""A reader-writer lock for the concurrent serving layer.

The :class:`Database` serializes DDL/ingest *writers* against any
number of concurrent query *readers*:

* readers share the lock — ``execute_many`` fans statements across a
  thread pool and all of them hold the read side simultaneously;
* writers are exclusive — an ``INSERT`` or ``CREATE INDEX`` runs only
  when no query is in flight, so a query never observes a half-updated
  index or a row list mid-append;
* writers are *preferred* — once a writer is waiting, new reader
  threads queue behind it, so a steady query stream cannot starve
  ingest.

Re-entrancy rules (tracked per thread):

* a thread holding the read side may re-acquire it (``db2-fn:sqlquery``
  inside an XQuery re-enters the SQL entry point), bypassing writer
  preference — blocking would deadlock against its own outer hold;
* a thread holding the write side may re-acquire either side (the SQL
  ``INSERT`` path re-enters :meth:`Database.insert`);
* upgrading read → write is a programming error and raises — the
  entry points classify statements *before* acquiring, so the engine
  never attempts it.

Lock-wait observability: when :data:`repro.obs.metrics.METRICS` is
enabled, every acquisition increments ``rwlock.read_acquires`` /
``rwlock.write_acquires`` and contended waits are recorded in the
``rwlock.read_wait_seconds`` / ``rwlock.write_wait_seconds``
histograms.  Metrics are recorded *after* the internal condition is
released; the ordering rwlock → metrics is acyclic (metrics code never
touches this lock).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..analysis import sanitizer as _sanitizer
from ..obs.metrics import METRICS

__all__ = ["RWLock"]


class RWLock:
    """Shared-read / exclusive-write lock, writer-preferring, reentrant."""

    def __init__(self):
        self._cond = threading.Condition()
        #: Total read holds (including reentrant re-acquisitions).
        self._readers = 0
        self._writer: threading.Thread | None = None
        self._write_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    # -- per-thread hold bookkeeping ------------------------------------

    def _held_reads(self) -> int:
        return getattr(self._local, "reads", 0)

    # -- read side ------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.current_thread()
        waited = 0.0
        if _sanitizer.ACTIVE is not None:
            # Before the blocking wait: an inverted acquisition order
            # must be reported while both threads are still running.
            _sanitizer.ACTIVE.on_acquire(self, "read")
        with self._cond:
            if self._writer is me or self._held_reads():
                # Reentrant (or write-implies-read): never block on
                # writer preference while this thread already excludes
                # or shares the lock.
                self._readers += 1
                self._local.reads = self._held_reads() + 1
            else:
                if self._writer is not None or self._writers_waiting:
                    started = time.perf_counter()
                    while self._writer is not None or \
                            self._writers_waiting:
                        self._cond.wait()
                    waited = time.perf_counter() - started
                self._readers += 1
                self._local.reads = 1
        if METRICS.enabled:
            METRICS.inc("rwlock.read_acquires")
            if waited:
                METRICS.observe("rwlock.read_wait_seconds", waited)

    def release_read(self) -> None:
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.on_release(self, "read")
        with self._cond:
            held = self._held_reads()
            if held <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._local.reads = held - 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    # -- write side -----------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.current_thread()
        waited = 0.0
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.on_acquire(self, "write")
        with self._cond:
            if self._writer is me:
                self._write_depth += 1
            else:
                if self._held_reads():
                    raise RuntimeError(
                        "read->write upgrade is not supported; classify "
                        "the statement before acquiring the lock")
                if self._writer is not None or self._readers:
                    self._writers_waiting += 1
                    started = time.perf_counter()
                    try:
                        while self._writer is not None or self._readers:
                            self._cond.wait()
                    finally:
                        self._writers_waiting -= 1
                    waited = time.perf_counter() - started
                self._writer = me
                self._write_depth = 1
        if METRICS.enabled:
            METRICS.inc("rwlock.write_acquires")
            if waited:
                METRICS.observe("rwlock.write_wait_seconds", waited)

    def release_write(self) -> None:
        if _sanitizer.ACTIVE is not None:
            _sanitizer.ACTIVE.on_release(self, "write")
        with self._cond:
            if self._writer is not threading.current_thread():
                raise RuntimeError("release_write by non-owner thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection (tests, describe) --------------------------------

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def write_held(self) -> bool:
        return self._writer is not None
