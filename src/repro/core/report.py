"""Reason-coded eligibility reports.

Every verdict the analyzer produces names the paper section (and tip,
where one exists) that explains it, so both tests and end users can see
*why* an index was accepted or rejected — the paper's complaint that
"the user does not understand why an index is not used and their query
runs so slowly" (Section 3.6) is answered by making the explanation a
first-class value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Reason(enum.Enum):
    """Why an index is or is not eligible for a predicate."""

    # value = (code, paper section, tip number or None, description)
    ELIGIBLE = ("OK", "2.2", None, "index satisfies Definition 1 for this "
                "predicate")
    PATTERN_NOT_CONTAINED = (
        "PATTERN", "2.2", None,
        "the index pattern is more restrictive than the predicate path")
    NAMESPACE_MISMATCH = (
        "NAMESPACE", "3.7", 10,
        "the index and query paths disagree on namespaces; remember that "
        "an index without namespace declarations only stores nodes in the "
        "empty namespace, and default namespaces never apply to attributes")
    TEXT_MISALIGNMENT = (
        "TEXT", "3.8", 11,
        "/text() steps are not aligned between the query and the index "
        "definition; an element's string value differs from its text "
        "child when content is mixed")
    ATTRIBUTE_AXIS = (
        "ATTRIBUTE", "3.9", 12,
        "attribute nodes are only reached through the attribute axis; "
        "//* and //node() patterns contain no attributes")
    TYPE_MISMATCH = (
        "TYPE", "3.1", 1,
        "the comparison's data type is incompatible with the index type "
        "(e.g. a string predicate against a DOUBLE index)")
    TYPE_UNKNOWN = (
        "TYPE?", "3.1", 1,
        "the comparison type cannot be proven at compile time; add "
        "xs:double(.) / xs:string(.) casts (Tip 1)")
    LET_BINDING = (
        "LET", "3.4", None,
        "the predicate sits in a let binding whose empty sequence must "
        "be preserved; no documents may be eliminated")
    CONSTRUCTOR_CONTENT = (
        "CONSTRUCT", "3.4", 7,
        "the predicate is embedded in an element constructor in a "
        "return clause; an (empty) element is built for every binding, "
        "so nothing is filtered")
    SQL_SELECT_LIST = (
        "SELECT-LIST", "3.2", 2,
        "XMLQUERY in the select list cannot eliminate rows; empty "
        "sequences are returned to the user")
    BOOLEAN_XMLEXISTS = (
        "BOOL-EXISTS", "3.2", 3,
        "the XQuery inside XMLEXISTS returns a boolean, which is always "
        "a non-empty sequence, so XMLEXISTS never filters anything")
    XMLTABLE_COLUMN = (
        "XMLTABLE-COL", "3.2", 4,
        "predicates in XMLTABLE COLUMNS path expressions produce NULLs "
        "instead of filtering rows; put them in the row-producer")
    SQL_COMPARISON = (
        "SQL-CMP", "3.3", 6,
        "the join/predicate uses SQL comparison semantics; XML indexes "
        "implement XQuery comparisons and cannot be used")
    NEGATION = (
        "NEGATION", "2.2", None,
        "the predicate is negated; documents lacking the path would "
        "qualify, so an index pre-filter would be incorrect")
    DISJUNCTION_PARTNER_INELIGIBLE = (
        "OR", "2.2", None,
        "the predicate sits under 'or' and a sibling disjunct is not "
        "indexable, so the disjunction cannot be answered by indexes")
    UNANALYZABLE_PATH = (
        "PATH?", "2.2", None,
        "the predicate path could not be normalized to a linear pattern "
        "rooted at an XML column")
    LIST_TYPE_RISK = (
        "LIST", "3.10", None,
        "a list-typed node could make the operand non-singleton")

    def __init__(self, code, section, tip, description):
        self.code = code
        self.section = section
        self.tip = tip
        self.description = description

    def __str__(self) -> str:
        tip = f", Tip {self.tip}" if self.tip else ""
        return f"{self.code} (§{self.section}{tip})"


@dataclass
class IndexVerdict:
    """One (predicate, index) eligibility decision."""

    index_name: str
    eligible: bool
    reasons: list[Reason]
    detail: str = ""

    def __str__(self) -> str:
        verdict = "ELIGIBLE" if self.eligible else "ineligible"
        reasons = "; ".join(str(reason) for reason in self.reasons)
        return f"{self.index_name}: {verdict} [{reasons}] {self.detail}"


@dataclass
class PredicateReport:
    """All verdicts for one extracted predicate."""

    description: str
    column: str
    context: str
    verdicts: list[IndexVerdict] = field(default_factory=list)

    @property
    def eligible_indexes(self) -> list[str]:
        return [verdict.index_name for verdict in self.verdicts
                if verdict.eligible]


@dataclass
class EligibilityReport:
    """The analyzer's answer for a whole query."""

    query: str
    language: str
    predicates: list[PredicateReport] = field(default_factory=list)

    @property
    def eligible_indexes(self) -> list[str]:
        names: list[str] = []
        for predicate in self.predicates:
            for name in predicate.eligible_indexes:
                if name not in names:
                    names.append(name)
        return names

    def is_index_eligible(self, index_name: str) -> bool:
        return index_name.lower() in [name.lower()
                                      for name in self.eligible_indexes]

    def explain(self) -> str:
        lines = [f"eligibility report ({self.language}):"]
        if not self.predicates:
            lines.append("  no indexable predicates found")
        for predicate in self.predicates:
            lines.append(f"  predicate {predicate.description} "
                         f"[{predicate.context}] on {predicate.column}")
            if not predicate.verdicts:
                lines.append("    no candidate indexes on this column")
            for verdict in predicate.verdicts:
                lines.append(f"    {verdict}")
        return "\n".join(lines)
