"""View flattening: the §3.6 transformation, with its guard conditions.

Section 3.6 describes users defining XML views by construction
(Query 26) and expecting the system to push selections and projections
down to the base collection (Query 27) "to simplify the query and
improve the performance by enabling indexes" — then lists five hazards
that make the naive rewrite wrong.  This module implements the
transformation the way the paper prescribes:

* comparisons against constructed element content are compensated with
  ``xdt:untypedAtomic(string-join(base-path/data(.), ' '))`` — which
  preserves hazards 1 (untyped comparison), 2 (double conversion of
  large integers) and 3 (multi-value concatenation) exactly;
* attribute copies are only flattened when the source attribute hangs
  directly off the view's binding item, so the original's
  duplicate-attribute error behaviour (hazard 4) cannot diverge;
* the rewrite is refused outright when the module contains node
  identity-sensitive operations (``is``, ``<<``, ``>>``, ``union``,
  ``intersect``, ``except``) anywhere, because flattening replaces
  fresh copies with base nodes (hazard 5).

The entry point returns a :class:`RewriteResult`: either a flattened
module (on which base-collection indexes become eligible) or the
original module plus the hazards that blocked the transformation.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field

from ..xdm import atomic
from ..xdm.qname import FN_NS, QName, XDT_NS
from ..xquery import ast


@dataclass
class RewriteResult:
    module: ast.Module
    applied: bool
    hazards: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


@dataclass
class _ViewItem:
    """What one piece of the view constructor exposes."""

    kind: str                   # 'attribute' | 'atomized-element'
    name: str                   # view-relative name (local)
    base_expr: ast.Expr         # expression over the base variable


def rewrite_view_flattening(module: ast.Module) -> RewriteResult:
    """Attempt the §3.6 view-flattening rewrite on a module."""
    body = module.body
    if not isinstance(body, ast.FLWORExpr) or not body.clauses:
        return RewriteResult(module, False)
    first = body.clauses[0]
    if not isinstance(first, ast.LetClause):
        return RewriteResult(module, False)
    view_var = first.var
    view_definition = first.expr

    hazards: list[str] = []

    # Hazard 5: node identity — bail out if the module compares or
    # set-operates on nodes anywhere.
    for node in ast.walk(module.body):
        if isinstance(node, ast.SetExpr):
            hazards.append(
                "hazard 5 (§3.6): module uses "
                f"'{node.op}', which is sensitive to node identity; "
                "flattening would replace constructed copies with base "
                "nodes and change the result")
        if isinstance(node, ast.NodeComparison):
            hazards.append(
                "hazard 5 (§3.6): module uses node comparison "
                f"'{node.op}'")
    if hazards:
        return RewriteResult(module, False, hazards)

    parsed = _parse_view_definition(view_definition, hazards)
    if parsed is None:
        return RewriteResult(module, False, hazards)
    base_var, base_path, items = parsed

    consumer = _parse_consumer(body, view_var)
    if consumer is None:
        return RewriteResult(module, False,
                             hazards + ["consumer shape not supported: "
                                        "expected for $x in $view "
                                        "[where ...] return ..."])
    consumer_var, where_expr, return_expr, trailing_clauses = consumer

    item_map = {item.name: item for item in items}
    notes: list[str] = []

    try:
        new_where = (_rewrite_predicate(where_expr, consumer_var,
                                        item_map, base_var, notes)
                     if where_expr is not None else None)
        new_return = _rewrite_projection(return_expr, consumer_var,
                                         item_map, base_var,
                                         view_definition, notes)
    except _CannotRewrite as blocked:
        return RewriteResult(module, False, hazards + [str(blocked)])

    clauses: list[ast.Clause] = [ast.ForClause(base_var, base_path)]
    if new_where is not None:
        clauses.append(ast.WhereClause(new_where))
    clauses.extend(trailing_clauses)
    flattened = ast.FLWORExpr(clauses, new_return)
    new_module = ast.Module(module.prolog, flattened)
    notes.insert(0, "view flattened onto the base collection (§3.6); "
                    "base-column indexes are now eligible")
    return RewriteResult(new_module, True, [], notes)


class _CannotRewrite(Exception):
    pass


# ---------------------------------------------------------------------------
# View definition analysis
# ---------------------------------------------------------------------------

def _parse_view_definition(expr: ast.Expr, hazards: list[str]):
    """Match ``for $i in <path> return <name>{items}</name>``."""
    if not isinstance(expr, ast.FLWORExpr):
        return None
    if len(expr.clauses) != 1 or not isinstance(expr.clauses[0],
                                                ast.ForClause):
        return None
    base_var = expr.clauses[0].var
    base_path = expr.clauses[0].expr
    constructor = expr.return_expr
    if not isinstance(constructor, ast.DirectElementConstructor):
        return None
    if constructor.attributes:
        hazards.append("view constructors with literal attributes are "
                       "not flattened")
        return None

    items: list[_ViewItem] = []
    content = list(constructor.content)
    # Unwrap a single enclosed sequence expression.
    if len(content) == 1 and isinstance(content[0], ast.SequenceExpr):
        content = list(content[0].items)
    for piece in content:
        item = _parse_view_item(piece, base_var, hazards)
        if item is None:
            return None
        items.append(item)
    return base_var, base_path, items


def _parse_view_item(piece, base_var: str,
                     hazards: list[str]) -> _ViewItem | None:
    # Case 1: $i/@attr — an attribute copied from the binding item.
    if isinstance(piece, ast.PathExpr) and not piece.absolute:
        steps = piece.steps
        if (len(steps) == 2 and isinstance(steps[0], ast.ExprStep)
                and isinstance(steps[0].expr, ast.VarRef)
                and steps[0].expr.name == base_var
                and isinstance(steps[1], ast.AxisStep)
                and steps[1].axis == "attribute"
                and isinstance(steps[1].test, ast.NameTest)
                and steps[1].test.local is not None):
            return _ViewItem("attribute", steps[1].test.local, piece)
        hazards.append(
            "hazard 4 (§3.6): attribute content not directly on the "
            "binding item cannot be proven duplicate-free; refusing")
        return None
    # Case 2: <name>{ path/data(.) }</name> — an atomized element.
    if isinstance(piece, ast.DirectElementConstructor):
        if piece.attributes or len(piece.content) != 1:
            hazards.append("nested view constructor too complex to "
                           "flatten")
            return None
        inner = piece.content[0]
        if isinstance(inner, str):
            hazards.append("literal text content is not flattened")
            return None
        return _ViewItem("atomized-element", piece.name, inner)
    hazards.append(f"unsupported view content {type(piece).__name__}")
    return None


# ---------------------------------------------------------------------------
# Consumer analysis
# ---------------------------------------------------------------------------

def _parse_consumer(body: ast.FLWORExpr, view_var: str):
    """Match ``for $j in $view [where P] return R`` after the let."""
    clauses = body.clauses[1:]
    if not clauses or not isinstance(clauses[0], ast.ForClause):
        return None
    for_clause = clauses[0]
    if not (isinstance(for_clause.expr, ast.VarRef)
            and for_clause.expr.name == view_var):
        return None
    where_expr = None
    trailing: list[ast.Clause] = []
    for clause in clauses[1:]:
        if isinstance(clause, ast.WhereClause) and where_expr is None:
            where_expr = clause.expr
        elif isinstance(clause, ast.OrderByClause):
            trailing.append(clause)
        else:
            return None
    return for_clause.var, where_expr, body.return_expr, trailing


# ---------------------------------------------------------------------------
# Expression rewriting
# ---------------------------------------------------------------------------

def _compensated_value(item: _ViewItem, notes: list[str]) -> ast.Expr:
    """The paper's safe compensation for constructed-element content:
    ``xdt:untypedAtomic(string-join(<base>/data(.), ' '))``."""
    if item.kind == "attribute":
        return _copy.deepcopy(item.base_expr)
    data_expr = _ensure_atomized(_copy.deepcopy(item.base_expr))
    joined = ast.FunctionCall(
        QName(FN_NS, "string-join", "fn"),
        [data_expr, ast.Literal(atomic.string(" "))])
    notes.append(
        f"comparison on view element '{item.name}' compensated with "
        "xdt:untypedAtomic(string-join(..., ' ')) per §3.6")
    return ast.FunctionCall(QName(XDT_NS, "untypedAtomic", "xdt"),
                            [joined])


def _ensure_atomized(expr: ast.Expr) -> ast.Expr:
    """Append /data(.) when the content expression isn't atomized."""
    if isinstance(expr, ast.PathExpr) and expr.steps:
        last = expr.steps[-1]
        if isinstance(last, ast.ExprStep) and \
                isinstance(last.expr, ast.FunctionCall) and \
                last.expr.name.local == "data":
            return expr
        expr.steps.append(ast.ExprStep(ast.FunctionCall(
            QName(FN_NS, "data", "fn"), [ast.ContextItem()])))
        return expr
    return ast.FunctionCall(QName(FN_NS, "data", "fn"), [expr])


def _view_step(expr: ast.Expr, consumer_var: str):
    """Match ``$j/<one step>`` and return (axis, local) or None."""
    if not (isinstance(expr, ast.PathExpr) and not expr.absolute):
        return None
    steps = expr.steps
    if not (len(steps) == 2 and isinstance(steps[0], ast.ExprStep)
            and isinstance(steps[0].expr, ast.VarRef)
            and steps[0].expr.name == consumer_var
            and isinstance(steps[1], ast.AxisStep)
            and isinstance(steps[1].test, ast.NameTest)
            and not steps[1].predicates):
        return None
    return steps[1].axis, steps[1].test.local


def _rewrite_predicate(expr: ast.Expr, consumer_var: str,
                       item_map: dict[str, _ViewItem], base_var: str,
                       notes: list[str]) -> ast.Expr:
    if isinstance(expr, ast.AndExpr):
        return ast.AndExpr(
            _rewrite_predicate(expr.left, consumer_var, item_map,
                               base_var, notes),
            _rewrite_predicate(expr.right, consumer_var, item_map,
                               base_var, notes))
    if isinstance(expr, (ast.GeneralComparison, ast.ValueComparison)):
        left = _rewrite_operand(expr.left, consumer_var, item_map, notes)
        right = _rewrite_operand(expr.right, consumer_var, item_map,
                                 notes)
        return type(expr)(expr.op, left, right)
    raise _CannotRewrite(
        f"predicate {type(expr).__name__} over the view is not "
        "flattenable")


def _rewrite_operand(expr: ast.Expr, consumer_var: str,
                     item_map: dict[str, _ViewItem],
                     notes: list[str]) -> ast.Expr:
    matched = _view_step(expr, consumer_var)
    if matched is None:
        if any(isinstance(node, ast.VarRef) and node.name == consumer_var
               for node in ast.walk(expr)):
            raise _CannotRewrite(
                "view variable used in an unflattenable operand shape")
        return _copy.deepcopy(expr)
    axis, local = matched
    item = item_map.get(local)
    if item is None:
        raise _CannotRewrite(
            f"view exposes no item named '{local}'")
    if axis == "attribute" and item.kind != "attribute":
        raise _CannotRewrite(
            f"'@{local}' does not name an attribute in the view")
    return _compensated_value(item, notes)


def _rewrite_projection(expr: ast.Expr, consumer_var: str,
                        item_map: dict[str, _ViewItem], base_var: str,
                        view_definition: ast.Expr,
                        notes: list[str]) -> ast.Expr:
    # Whole-item projection: re-inline the constructor.
    if isinstance(expr, ast.VarRef) and expr.name == consumer_var:
        assert isinstance(view_definition, ast.FLWORExpr)
        return _copy.deepcopy(view_definition.return_expr)
    matched = _view_step(expr, consumer_var)
    if matched is not None:
        axis, local = matched
        item = item_map.get(local)
        if item is None:
            raise _CannotRewrite(
                f"view exposes no item named '{local}'")
        if item.kind == "attribute":
            return _copy.deepcopy(item.base_expr)
        # Rebuild the single-element constructor for this item.
        return ast.DirectElementConstructor(
            item.name, {}, [], [_copy.deepcopy(item.base_expr)])
    if any(isinstance(node, ast.VarRef) and node.name == consumer_var
           for node in ast.walk(expr)):
        raise _CannotRewrite(
            "return clause uses the view variable in an unflattenable "
            "shape")
    return _copy.deepcopy(expr)
