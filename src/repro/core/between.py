"""Between-predicate detection (Section 3.10).

XQuery has no ``between`` operator, and the existential semantics of
general comparisons mean ``lineitem[price > 100 and price < 200]`` is
*not* a between: one price of 250 and another of 50 satisfy it even
though no price is in the range.  Such a conjunction needs **two**
index scans whose node sets are intersected (ANDed).

A pair of range predicates collapses into a **single** range scan only
when the compared item is provably a singleton:

* value comparisons (``price gt 100 and price lt 200``) — they fail at
  runtime if price is not a singleton;
* the self axis (``price[. > 100 and . < 200]`` or the
  ``data()[. > ...]`` form) — '.' binds exactly one node per step;
* an attribute (``lineitem[@price > 100 and @price < 200]``) — an
  attribute occurs at most once per element (and list types are
  prohibited in indexed documents, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .predicates import PredicateCandidate


@dataclass
class BetweenGroup:
    """Two range predicates over the same item."""

    lower: PredicateCandidate       # the '>'-ish bound
    upper: PredicateCandidate       # the '<'-ish bound
    single_scan: bool               # one range scan vs two ANDed scans

    @property
    def description(self) -> str:
        mode = ("single range scan" if self.single_scan
                else "two index scans + intersection")
        return (f"between: {self.lower.description} AND "
                f"{self.upper.description} -> {mode}")


_LOWER_OPS = {">", ">=", "gt", "ge"}
_UPPER_OPS = {"<", "<=", "lt", "le"}


def detect_between(candidates: list[PredicateCandidate]
                   ) -> list[BetweenGroup]:
    """Pair up range predicates within each conjunction.

    Predicates pair when they constrain the same path on the same
    column within the same ``and``-conjunction.  The pair collapses to
    a single range scan only when *both* sides carry a singleton
    guarantee (see module docstring).
    """
    groups: list[BetweenGroup] = []
    used: set[int] = set()
    buckets: dict[tuple, list[PredicateCandidate]] = {}
    for candidate in candidates:
        if not candidate.is_range or candidate.conjunct_group == 0:
            continue
        key = (candidate.column, candidate.conjunct_group,
               str(candidate.path), candidate.context)
        buckets.setdefault(key, []).append(candidate)

    for bucket in buckets.values():
        lowers = [candidate for candidate in bucket
                  if candidate.op in _LOWER_OPS]
        uppers = [candidate for candidate in bucket
                  if candidate.op in _UPPER_OPS]
        for lower, upper in zip(lowers, uppers):
            if id(lower) in used or id(upper) in used:
                continue
            used.add(id(lower))
            used.add(id(upper))
            single = (lower.singleton_guaranteed and
                      upper.singleton_guaranteed)
            groups.append(BetweenGroup(lower, upper, single))
    return groups
