"""LRU compiled-query cache: parsed module + extracted predicates.

Query texts repeat — benchmarks re-run the same workload, the CLI
replays history, SQL/XML statements embed the same XMLQUERY bodies row
after row.  Parsing and candidate extraction are pure functions of the
text (modules are never mutated after parse; rewrites construct new
Modules), so both are computed once per text and shared by
``xquery.evaluate``, the planner (:mod:`repro.planner.plan`), the SQL
executor's embedded-body cache, and the CLI.

The cache is shared process state, so all OrderedDict mutation and the
hit/miss counters sit behind one :data:`_lock`.  Parsing happens
*outside* the lock: it is pure and comparatively slow, so two threads
racing on the same new text may both parse it, but only one entry wins
a slot — correctness over de-duplication.  Lock ordering: this lock is
taken first and :data:`repro.obs.metrics.METRICS`'s lock second, never
the reverse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..obs.metrics import METRICS

from ..xquery import ast
from ..xquery.parser import parse_xquery

__all__ = ["CompiledQuery", "compile_query", "pin_query", "unpin_query",
           "cache_info", "clear_cache", "reinit_after_fork"]


@dataclass(frozen=True)
class CompiledQuery:
    """One cache entry: the parse result and its predicate candidates."""

    source: str
    module: ast.Module
    #: Extracted PredicateCandidates (tuple: shared read-only).
    candidates: tuple


@dataclass
class CacheInfo:
    hits: int
    misses: int
    size: int
    maxsize: int
    #: Entries held by prepared-statement handles — exempt from LRU
    #: eviction until every holder releases them.
    pinned: int = 0


_MAXSIZE = 256
_lock = threading.Lock()
_cache: "OrderedDict[str, CompiledQuery]" = OrderedDict()
#: source -> pin refcount.  Pinned entries are skipped by eviction, so
#: a prepared-statement handle's plan survives arbitrary cache churn;
#: the cache may temporarily exceed _MAXSIZE when everything is pinned
#: (honest: the handles hold the memory either way).
_pins: dict[str, int] = {}
_hits = 0
_misses = 0


def compile_query(source: str) -> CompiledQuery:
    """Parse ``source`` and extract its predicate candidates, memoized
    with LRU eviction."""
    global _hits, _misses
    with _lock:
        entry = _cache.get(source)
        if entry is not None:
            _cache.move_to_end(source)
            _hits += 1
            if METRICS.enabled:
                METRICS.inc("querycache.hits")
            return entry
    module = parse_xquery(source)
    from ..static.infer import refine_candidates
    from .predicates import extract_candidates
    candidates = extract_candidates(module)
    # Static refinement is pure (DB-independent): inference fills in
    # comparison types and probe constants that syntax-directed
    # extraction could not see (let-hoisted casts, folded constants),
    # so every compile_query consumer — eligibility, planner, advisor —
    # gets the sharpened candidates.
    refine_candidates(module, candidates)
    entry = CompiledQuery(source, module, tuple(candidates))
    with _lock:
        _misses += 1
        if METRICS.enabled:
            METRICS.inc("querycache.misses")
        racing = _cache.get(source)
        if racing is not None:
            _cache.move_to_end(source)
            return racing
        _cache[source] = entry
        if len(_cache) > _MAXSIZE:
            for key in _cache:
                if key not in _pins:
                    del _cache[key]
                    if METRICS.enabled:
                        METRICS.inc("querycache.evictions")
                    break
    return entry


def pin_query(source: str) -> CompiledQuery:
    """Compile ``source`` and pin its cache entry against eviction.

    Prepared-statement handles call this once per ``PREPARE``; pins are
    reference-counted, so concurrent sessions preparing the same text
    share one entry.  Pair every call with :func:`unpin_query`.
    """
    with _lock:
        _pins[source] = _pins.get(source, 0) + 1
    try:
        return compile_query(source)
    except BaseException:
        unpin_query(source)
        raise


def unpin_query(source: str) -> None:
    """Release one pin on ``source`` (no-op when never pinned)."""
    with _lock:
        count = _pins.get(source)
        if count is None:
            return
        if count <= 1:
            del _pins[source]
        else:
            _pins[source] = count - 1


def cache_info() -> CacheInfo:
    with _lock:
        return CacheInfo(_hits, _misses, len(_cache), _MAXSIZE,
                         len(_pins))


def clear_cache() -> None:
    global _hits, _misses
    with _lock:
        _cache.clear()
        _pins.clear()
        _hits = 0
        _misses = 0


def reinit_after_fork() -> None:
    """Replace the module lock and start an empty cache.

    A forked child (``repro.parallel.worker``) inherits this module's
    lock in whatever state another parent thread held it at fork time —
    taking it would deadlock forever.  The child calls this before its
    first ``compile_query`` to install a fresh lock; no other thread
    can exist in the child yet, so the unguarded swap is safe.
    """
    global _lock, _hits, _misses
    _lock = threading.Lock()
    _cache.clear()
    _pins.clear()
    _hits = 0
    _misses = 0
