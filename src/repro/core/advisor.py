"""The pitfall advisor: Tips 1–12 as automated diagnostics.

The paper distils its experience into twelve usage tips.  This module
codifies them: given a query (and the database's index catalog), it
emits structured advice explaining which pitfall the query is about to
hit and how the paper says to rewrite it.

Most advice falls out of the eligibility analyzer — every ineligible
verdict carries the paper section and tip that explain it — plus a few
standalone lints (boolean-bodied XMLEXISTS, ``//*`` index patterns,
non-singleton between pairs) that warn even when they do not involve
an index.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xquery import ast as xast
from .between import detect_between
from .eligibility import analyze_candidates
from .predicates import PredicateContext
from .report import Reason

#: Tip number -> the paper's wording, abbreviated.
TIPS = {
    1: "Use type-cast expressions in XQuery join predicates "
       "($x/xs:double(.) is more general than xs:double($x)).",
    2: "If only XML fragments are to be retrieved, use the stand-alone "
       "XQuery interface to extract values.",
    3: "Use XMLEXISTS to retrieve full documents by a condition, and "
       "make sure its XQuery returns nodes, not a boolean value.",
    4: "Use XMLTABLE to retrieve relational and XML values together; "
       "express predicates in the row-producer expression.",
    5: "When joining an XML value with a relational value, express the "
       "join on the side that has the index.",
    6: "Always express XML-to-XML joins on the XQuery side.",
    7: "Unless you want empty elements for non-qualifying nodes, do not "
       "put predicates inside element constructors in return clauses.",
    8: "Mind the extra navigation level at document nodes, and avoid "
       "absolute paths when the context is a constructed element.",
    9: "Write predicates on base data before any construction or "
       "implicit casts.",
    10: "Keep namespace declarations consistent between data, queries "
        "and indexes, or use namespace wildcards in index patterns.",
    11: "Align /text() steps between queries and index definitions.",
    12: "To index all attributes use //@* — //* and //node() contain "
        "no attribute nodes.",
}

#: Advice for the §3.10 between pitfall (no numbered tip in the paper).
BETWEEN_ADVICE = (
    "General comparisons are existential: a[x > 1 and x < 2] is not a "
    "between unless x is provably a singleton. Use value comparisons, "
    "the self axis (x[. > 1 and . < 2]), or attributes.")


@dataclass
class Advice:
    tip: int | None          # tip number, None for §3.10-style advice
    section: str
    severity: str            # 'warning' | 'info'
    message: str
    suggestion: str

    def __str__(self) -> str:
        tip = f"Tip {self.tip}" if self.tip else f"§{self.section}"
        return f"[{self.severity}] {tip}: {self.message} -> " \
               f"{self.suggestion}"


def advise(database, query: str, language: str = "auto") -> list[Advice]:
    """Analyze a query and return pitfall advice, worst first."""
    if language == "auto":
        head = query.lstrip().upper()
        language = ("sql" if head.startswith(("SELECT", "VALUES"))
                    else "xquery")
    if language == "sql":
        from ..sql.analyzer import extract_sql_candidates
        candidates = extract_sql_candidates(database, query)
        module = None
    else:
        # The compiled-query cache applies static refinement: the
        # advisor sees inference-backed comparison types (a let-hoisted
        # cast no longer reads as an uncast join — Tip 1 verdicts come
        # from the type system, not surface syntax).
        from .querycache import compile_query
        compiled = compile_query(query)
        module = compiled.module
        candidates = list(compiled.candidates)

    advice: list[Advice] = []
    seen: set[tuple] = set()

    def add(item: Advice) -> None:
        key = (item.tip, item.section, item.message)
        if key not in seen:
            seen.add(key)
            advice.append(item)

    # 1. Reason-driven advice from eligibility verdicts.  A predicate
    # only deserves a warning when *no* index on its column can answer
    # it — a rejected sibling index is normal, not a pitfall.
    report = analyze_candidates(database, candidates, query, language)
    for predicate in report.predicates:
        if predicate.eligible_indexes or not predicate.verdicts:
            continue
        for verdict in predicate.verdicts:
            for reason in verdict.reasons:
                if reason in (Reason.ELIGIBLE,
                              Reason.PATTERN_NOT_CONTAINED,
                              Reason.UNANALYZABLE_PATH):
                    continue
                add(Advice(
                    tip=reason.tip,
                    section=reason.section,
                    severity="warning",
                    message=f"index {verdict.index_name} cannot answer "
                            f"{predicate.description}: "
                            f"{reason.description}",
                    suggestion=TIPS.get(reason.tip,
                                        reason.description)))

    # 2. Context-driven advice that needs no index to be present.
    for candidate in candidates:
        if candidate.context is PredicateContext.SQL_BOOLEAN_XMLEXISTS:
            add(Advice(3, "3.2", "warning",
                       "XMLEXISTS over a boolean-valued XQuery never "
                       "filters: a boolean is a one-item sequence, so "
                       "every row qualifies (Query 9)",
                       TIPS[3]))
        elif candidate.context is PredicateContext.SQL_SELECT_LIST:
            add(Advice(2, "3.2", "warning",
                       f"predicate {candidate.description} in a select-"
                       "list XMLQUERY cannot eliminate rows; empty "
                       "sequences are returned (Query 5)",
                       TIPS[2]))
        elif candidate.context is PredicateContext.SQL_XMLTABLE_COLUMN:
            add(Advice(4, "3.2", "warning",
                       f"predicate {candidate.description} in an "
                       "XMLTABLE column path produces NULLs instead of "
                       "filtering (Query 12)",
                       TIPS[4]))
        elif candidate.context is PredicateContext.CONSTRUCTOR_CONTENT:
            add(Advice(7, "3.4", "warning",
                       f"predicate {candidate.description} sits inside "
                       "an element constructor: an empty element is "
                       "returned for every non-qualifying binding "
                       "(Query 19)",
                       TIPS[7]))
        elif candidate.context is PredicateContext.LET_BINDING:
            add(Advice(None, "3.4", "warning",
                       f"predicate {candidate.description} in a let "
                       "binding preserves empty sequences; no index can "
                       "filter (Query 18)",
                       "Bind with a for clause, or add a where clause "
                       "that discards the empty sequence (Query 21)."))
        if candidate.uses_sql_comparison:
            add(Advice(6, "3.3", "warning",
                       "join over XML values expressed with SQL "
                       "comparison semantics (XMLCAST = XMLCAST): no "
                       "XML index is eligible (Query 15)",
                       TIPS[6]))
        if candidate.operand_type is None and \
                candidate.operand_expr is not None and \
                candidate.op in ("=", "eq"):
            add(Advice(1, "3.1", "warning",
                       f"join predicate {candidate.description} has no "
                       "provable comparison type",
                       TIPS[1]))

    # 3. Between pairs that do not collapse (§3.10).
    for group in detect_between(candidates):
        if not group.single_scan:
            add(Advice(None, "3.10", "info",
                       f"{group.lower.description} / "
                       f"{group.upper.description} is an existential "
                       "pair, not a between: it needs two index scans "
                       "ANDed together",
                       BETWEEN_ADVICE))

    # 4. XQuery-structural lints (document vs element navigation, §3.5).
    if module is not None:
        advice.extend(_structural_lints(module, seen))

    return advice


def advise_index_pattern(pattern_text: str) -> list[Advice]:
    """Lint an XMLPATTERN before creating the index (Tips 10 and 12)."""
    from .patterns import parse_xmlpattern

    pattern = parse_xmlpattern(pattern_text)
    advice: list[Advice] = []
    final_kinds = {test.kind for test in pattern.final_tests()}
    if final_kinds and "attribute" not in final_kinds:
        wildcard_finals = [test for test in pattern.final_tests()
                           if test.kind in ("element", "node")
                           and test.local is None]
        if wildcard_finals:
            advice.append(Advice(
                12, "3.9", "warning",
                f"pattern '{pattern_text}' does not index attribute "
                "nodes — //* and //node() never match attributes",
                TIPS[12]))
    has_namespace = any(
        test.uri not in ("", None)
        for alternative in pattern.alternatives
        for step in alternative.steps
        for test in (step.test,) + step.extra_tests)
    has_concrete_empty_ns = any(
        test.uri == "" and test.kind in ("element",)
        for alternative in pattern.alternatives
        for step in alternative.steps
        for test in (step.test,) + step.extra_tests)
    if not has_namespace and has_concrete_empty_ns:
        advice.append(Advice(
            10, "3.7", "info",
            f"pattern '{pattern_text}' restricts element steps to the "
            "empty namespace; queries that declare a default element "
            "namespace will not match it",
            TIPS[10]))
    return advice


def _structural_lints(module, seen: set) -> list[Advice]:
    """Detect §3.5 hazards: absolute paths over constructed elements."""
    advice: list[Advice] = []
    constructed_vars: set[str] = set()
    for node in xast.walk(module.body):
        if isinstance(node, xast.LetClause) and _is_constructor(node.expr):
            constructed_vars.add(node.var)
        if isinstance(node, xast.ForClause) and _is_constructor(node.expr):
            constructed_vars.add(node.var)
    def flag() -> None:
        item = Advice(
            8, "3.5", "warning",
            "absolute path ('/' or '//') applied inside a tree rooted "
            "at a constructed element raises err:XPDY0050 (Query 25)",
            TIPS[8])
        key = (item.tip, item.section, item.message)
        if key not in seen:
            seen.add(key)
            advice.append(item)

    def rooted_at_constructor(expr) -> bool:
        if _is_constructor(expr):
            return True
        return (isinstance(expr, xast.VarRef) and
                expr.name in constructed_vars)

    for node in xast.walk(module.body):
        predicates: list = []
        if isinstance(node, xast.FilterExpr) and \
                rooted_at_constructor(node.primary):
            predicates = node.predicates
        elif isinstance(node, xast.PathExpr) and node.steps:
            base = node.steps[0]
            if isinstance(base, xast.ExprStep) and \
                    rooted_at_constructor(base.expr):
                for step in node.steps:
                    predicates.extend(getattr(step, "predicates", []))
        for predicate in predicates:
            if isinstance(predicate, xast.PathExpr) and predicate.absolute:
                flag()
    return advice


def _is_constructor(expr) -> bool:
    return isinstance(expr, (xast.DirectElementConstructor,
                             xast.ComputedElementConstructor,
                             xast.ComputedDocumentConstructor))
