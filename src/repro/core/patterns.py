"""Linear path patterns: XMLPATTERN parsing, matching, and containment.

This module owns the path language shared by index definitions and by
query-side predicate paths:

* :func:`parse_xmlpattern` implements the paper's §2.1 CREATE INDEX
  grammar (namespace declarations, ``/`` and ``//`` separators, the
  ``@``/``child::``/``attribute::``/``self::``/``descendant::``/
  ``descendant-or-self::`` axes, name tests with namespace wildcards,
  and kind tests; predicates are not allowed).
* :meth:`LinearPattern.matches_path` decides whether a concrete
  root-to-node path matches a pattern (used at indexing time and to
  apply path restrictions during index scans).
* :func:`pattern_contains` decides *containment*: every path matched by
  the query pattern is matched by the index pattern.  That is the
  structural half of Definition 1 — "an index cannot be used ... if the
  index expression is more restrictive than the query expression".

Containment is decided by canonical models (in the style of Miklau &
Suciu): instantiate each wildcard with a fresh name and each ``//``-gap
with fresh-element chains of every length up to ``len(index) + 1``,
then check that the index pattern matches every such concrete path.
For linear patterns (no branching predicates) this bound is complete;
if the number of canonical paths explodes past a safety cap we return
False, which is *sound* for eligibility (we only ever refuse to use an
index, never use one incorrectly).
"""

from __future__ import annotations

import functools
import itertools
import re
from dataclasses import dataclass

from ..errors import PatternSyntaxError
from ..xdm.qname import QName

#: Node kinds a ``node()`` kind test can produce via the child axis.
#: Attributes are deliberately absent: ``//node()`` expands to
#: ``/descendant-or-self::node()/child::node()`` and the child axis
#: never yields attributes (Section 3.9, Tip 12).
_CHILD_NODE_KINDS = ("element", "text", "comment", "processing-instruction")


@dataclass(frozen=True)
class PathComponent:
    """One concrete step of a root-to-node path: (kind, uri, local)."""

    kind: str
    uri: str = ""
    local: str = ""

    @classmethod
    def from_node_step(cls, step: tuple[str, QName | None]
                       ) -> "PathComponent":
        kind, name = step
        if name is None:
            return cls(kind)
        return cls(kind, name.uri, name.local)


@dataclass(frozen=True)
class StepTest:
    """A test against one path component.

    ``uri``/``local`` semantics: None = wildcard, "" = empty namespace.
    ``kind == 'node'`` matches any child-axis node kind.
    """

    kind: str
    uri: str | None = None
    local: str | None = None
    pi_target: str | None = None

    def matches(self, component: PathComponent) -> bool:
        if self.kind == "node":
            if component.kind not in _CHILD_NODE_KINDS:
                return False
        elif self.kind != component.kind:
            return False
        if self.kind in ("element", "attribute"):
            if self.uri is not None and component.uri != self.uri:
                return False
            if self.local is not None and component.local != self.local:
                return False
        if (self.kind == "processing-instruction"
                and self.pi_target is not None
                and component.local != self.pi_target):
            return False
        return True

    def __str__(self) -> str:
        if self.kind in ("element", "attribute"):
            uri = "*:" if self.uri is None else (
                f"{{{self.uri}}}" if self.uri else "")
            local = "*" if self.local is None else self.local
            prefix = "@" if self.kind == "attribute" else ""
            return f"{prefix}{uri}{local}"
        target = self.pi_target or ""
        return f"{self.kind}({target})"


@dataclass(frozen=True)
class PatternStep:
    """One pattern step; ``gap`` means any depth may precede it (//)."""

    test: StepTest
    gap: bool = False
    extra_tests: tuple[StepTest, ...] = ()

    def matches(self, component: PathComponent) -> bool:
        return (self.test.matches(component) and
                all(test.matches(component) for test in self.extra_tests))

    def __str__(self) -> str:
        separator = "//" if self.gap else "/"
        extra = "".join(f"[self::{test}]" for test in self.extra_tests)
        return f"{separator}{self.test}{extra}"


@dataclass(frozen=True)
class LinearPattern:
    """A sequence of pattern steps matched against root-to-node paths."""

    steps: tuple[PatternStep, ...]

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)

    @property
    def final_test(self) -> StepTest:
        return self.steps[-1].test

    def matches_path(self, components: list[PathComponent]) -> bool:
        """NFA simulation: does the full path match this pattern?"""
        steps = self.steps
        step_count = len(steps)
        states = {0}
        for component in components:
            next_states = set()
            for state in states:
                if state < step_count:
                    step = steps[state]
                    if step.matches(component):
                        next_states.add(state + 1)
                    if step.gap:
                        next_states.add(state)  # consume inside the gap
            states = next_states
            if not states:
                return False
        return step_count in states

    # -- canonical models ------------------------------------------------

    def canonical_paths(self, max_gap: int,
                        cap: int = 50_000) -> list[list[PathComponent]] | None:
        """Representative concrete paths of this pattern.

        Gap steps expand to fresh-element chains of length ``0..max_gap``;
        wildcards become fresh names; ``node()`` tests expand across all
        child node kinds.  Returns None if the enumeration would exceed
        ``cap`` paths (callers must then be conservative).
        """
        per_step_options: list[list[list[PathComponent]]] = []
        fresh_counter = itertools.count()

        for position, step in enumerate(self.steps):
            components = _canonical_components(step, fresh_counter)
            if position < len(self.steps) - 1:
                # Feasibility applied early: every non-final component
                # of a real root-to-node path is an element, so other
                # kind expansions would be filtered later anyway.
                components = [component for component in components
                              if component.kind == "element"]
            if not components:
                # Unsatisfiable step (conflicting self tests): the
                # pattern matches nothing, so any index contains it.
                return []
            options: list[list[PathComponent]] = []
            gap_lengths = range(max_gap + 1) if step.gap else (0,)
            for gap_length in gap_lengths:
                chain = [PathComponent(
                    "element",
                    f"\x00gap-uri-{next(fresh_counter)}",
                    f"\x00gap-{next(fresh_counter)}")
                    for _ in range(gap_length)]
                for component in components:
                    options.append(chain + [component])
            per_step_options.append(options)

        total = 1
        for options in per_step_options:
            total *= len(options)
            if total > cap:
                return None
        paths: list[list[PathComponent]] = []
        for combination in itertools.product(*per_step_options):
            path: list[PathComponent] = []
            for piece in combination:
                path.extend(piece)
            # Only feasible document paths count as counterexamples: in a
            # real tree every non-final component of a root-to-node path
            # is an element (attributes/text/PIs have no children).
            if any(component.kind != "element" for component in path[:-1]):
                continue
            # Attributes and text nodes always hang off an element, so a
            # length-1 path of those kinds cannot occur either.
            if (path and path[-1].kind in ("attribute", "text")
                    and len(path) == 1):
                continue
            paths.append(path)
        return paths


def _canonical_components(step: PatternStep,
                          fresh_counter) -> list[PathComponent]:
    """Concrete components representing one pattern step."""
    tests = (step.test,) + step.extra_tests
    kinds: set[str] | None = None
    for test in tests:
        own = (set(_CHILD_NODE_KINDS) if test.kind == "node"
               else {test.kind})
        kinds = own if kinds is None else (kinds & own)
    assert kinds is not None

    components: list[PathComponent] = []
    for kind in sorted(kinds):
        if kind in ("element", "attribute"):
            uri: str | None = None
            local: str | None = None
            consistent = True
            for test in tests:
                if test.kind == "node":
                    continue
                if test.uri is not None:
                    if uri is not None and uri != test.uri:
                        consistent = False
                        break
                    uri = test.uri
                if test.local is not None:
                    if local is not None and local != test.local:
                        consistent = False
                        break
                    local = test.local
            if not consistent:
                continue
            if uri is None:
                uri = f"\x00fresh-uri-{next(fresh_counter)}"
            if local is None:
                local = f"\x00fresh-{next(fresh_counter)}"
            components.append(PathComponent(kind, uri, local))
        elif kind == "processing-instruction":
            target = None
            for test in tests:
                if test.pi_target is not None:
                    target = test.pi_target
            components.append(PathComponent(
                kind, "", target or f"\x00fresh-pi-{next(fresh_counter)}"))
        else:
            components.append(PathComponent(kind))
    return components


@dataclass(frozen=True)
class PathPattern:
    """A union of linear patterns (descendant-or-self expansion)."""

    alternatives: tuple[LinearPattern, ...]
    source: str = ""

    def __str__(self) -> str:
        return self.source or " | ".join(str(alternative)
                                         for alternative in self.alternatives)

    def matches_path(self, components: list[PathComponent]) -> bool:
        return any(alternative.matches_path(components)
                   for alternative in self.alternatives)

    def matches_node(self, node) -> bool:
        components = [PathComponent.from_node_step(step)
                      for step in node.path_steps()]
        return self.matches_path(components)

    @property
    def max_steps(self) -> int:
        return max(len(alternative.steps)
                   for alternative in self.alternatives)

    def final_tests(self) -> list[StepTest]:
        return [alternative.final_test for alternative in self.alternatives]


def erase_namespaces(pattern: PathPattern) -> PathPattern:
    """A copy of ``pattern`` with every namespace test wildcarded.

    Used for diagnosis only: if containment succeeds on the erased
    patterns but failed on the originals, the mismatch is a namespace
    problem (Section 3.7) rather than a structural one.
    """
    def erase_test(test: StepTest) -> StepTest:
        if test.kind in ("element", "attribute"):
            return StepTest(test.kind, uri=None, local=test.local,
                            pi_target=test.pi_target)
        return test

    alternatives = []
    for alternative in pattern.alternatives:
        steps = tuple(
            PatternStep(erase_test(step.test), step.gap,
                        tuple(erase_test(extra)
                              for extra in step.extra_tests))
            for step in alternative.steps)
        alternatives.append(LinearPattern(steps))
    return PathPattern(tuple(alternatives))


def pattern_contains(index_pattern: PathPattern,
                     query_pattern: PathPattern) -> bool:
    """True when every path matched by ``query_pattern`` is matched by
    ``index_pattern`` — i.e. the index is no more restrictive than the
    query (§2.2).  Sound; complete for linear patterns within the cap.
    """
    max_gap = index_pattern.max_steps + 1
    for alternative in query_pattern.alternatives:
        canonical = alternative.canonical_paths(max_gap)
        if canonical is None:
            return False  # too many models: refuse (sound)
        for path in canonical:
            if not index_pattern.matches_path(path):
                return False
    return True


# ---------------------------------------------------------------------------
# XMLPATTERN parsing (§2.1 grammar)
# ---------------------------------------------------------------------------

_DECLARE_DEFAULT_RE = re.compile(
    r"declare\s+default\s+element\s+namespace\s+"
    r"(?:\"([^\"]*)\"|'([^']*)')\s*;")
_DECLARE_PREFIX_RE = re.compile(
    r"declare\s+namespace\s+([A-Za-z_][\w.\-]*)\s*=\s*"
    r"(?:\"([^\"]*)\"|'([^']*)')\s*;")

_NCNAME = r"[A-Za-z_][\w.\-]*"
_STEP_RE = re.compile(
    rf"""
    (?P<sep>//|/)
    (?P<axis>@|child::|attribute::|self::|descendant::|
             descendant-or-self::)?
    (?P<test>
        (?:{_NCNAME}:)?{_NCNAME}\(\s*(?:{_NCNAME})?\s*\)   # kind test
        | \*:{_NCNAME}                                      # *:local
        | (?:{_NCNAME}|\*):\*                               # prefix:* or *:*
        | {_NCNAME}:{_NCNAME}                               # qname
        | {_NCNAME}                                         # name
        | \*                                                # *
    )
    """,
    re.VERBOSE)

_KIND_TEST_RE = re.compile(
    rf"(?P<name>{_NCNAME})\(\s*(?P<arg>{_NCNAME})?\s*\)$")

_KIND_TEST_NAMES = {"node", "text", "comment", "processing-instruction"}


@functools.lru_cache(maxsize=512)
def parse_xmlpattern(text: str) -> PathPattern:
    """Parse an XMLPATTERN string into a :class:`PathPattern`.

    Memoized: PathPattern and everything inside it is frozen, so
    repeated DDL/queries with the same pattern text share one parse.
    """
    source = text.strip()
    remaining = source
    default_ns = ""
    namespaces: dict[str, str] = {}

    while True:
        match = _DECLARE_DEFAULT_RE.match(remaining)
        if match:
            default_ns = match.group(1) or match.group(2) or ""
            remaining = remaining[match.end():].lstrip()
            continue
        match = _DECLARE_PREFIX_RE.match(remaining)
        if match:
            namespaces[match.group(1)] = (match.group(2) or
                                          match.group(3) or "")
            remaining = remaining[match.end():].lstrip()
            continue
        break

    if not remaining.startswith("/"):
        raise PatternSyntaxError(
            f"XMLPATTERN must start with '/' or '//': {text!r}")

    # Expand descendant-or-self into a union of linear alternatives.
    alternatives: list[list[PatternStep]] = [[]]
    position = 0
    while position < len(remaining):
        match = _STEP_RE.match(remaining, position)
        if not match:
            raise PatternSyntaxError(
                f"malformed XMLPATTERN step at {remaining[position:]!r}")
        position = match.end()
        gap = match.group("sep") == "//"
        axis = (match.group("axis") or "child::").rstrip(":")
        if axis == "@":
            axis = "attribute"
        test_text = match.group("test")
        test = _parse_step_test(test_text, axis, namespaces, default_ns)

        if axis == "self":
            extended: list[list[PatternStep]] = []
            for alternative in alternatives:
                if gap:
                    # '//self::T' ≡ descendant-or-self with extra test.
                    extended.append(alternative +
                                    [PatternStep(test, gap=True)])
                elif alternative:
                    last = alternative[-1]
                    extended.append(
                        alternative[:-1] +
                        [PatternStep(last.test, last.gap,
                                     last.extra_tests + (test,))])
                else:
                    raise PatternSyntaxError(
                        "self:: axis requires a preceding step")
            alternatives = extended
        elif axis == "descendant":
            alternatives = [alternative + [PatternStep(test, gap=True)]
                            for alternative in alternatives]
        elif axis == "descendant-or-self":
            # Union: (extra test on the previous step) OR (gap step).
            extended = []
            for alternative in alternatives:
                extended.append(alternative + [PatternStep(test, gap=True)])
                if alternative:
                    last = alternative[-1]
                    extended.append(
                        alternative[:-1] +
                        [PatternStep(last.test, last.gap,
                                     last.extra_tests + (test,))])
            alternatives = extended
        else:  # child / attribute
            alternatives = [alternative + [PatternStep(test, gap=gap)]
                            for alternative in alternatives]

    if position != len(remaining.rstrip()):
        raise PatternSyntaxError(
            f"trailing input in XMLPATTERN: {remaining[position:]!r}")

    linear = tuple(LinearPattern(tuple(steps))
                   for steps in alternatives if steps)
    if not linear:
        raise PatternSyntaxError(f"empty XMLPATTERN {text!r}")
    return PathPattern(linear, source=source)


def _parse_step_test(text: str, axis: str, namespaces: dict[str, str],
                     default_ns: str) -> StepTest:
    kind_match = _KIND_TEST_RE.match(text)
    if kind_match and (kind_match.group("name") in _KIND_TEST_NAMES):
        name = kind_match.group("name")
        if name == "processing-instruction":
            return StepTest("processing-instruction",
                            pi_target=kind_match.group("arg"))
        if kind_match.group("arg"):
            raise PatternSyntaxError(f"{name}() takes no argument")
        if name == "node":
            if axis == "attribute":
                return StepTest("attribute")
            return StepTest("node")
        return StepTest(name)

    kind = "attribute" if axis == "attribute" else "element"
    # Default element namespaces never apply to attributes (§3.7).
    applicable_default = "" if kind == "attribute" else default_ns

    if text == "*":
        return StepTest(kind)
    if text.startswith("*:"):
        return StepTest(kind, uri=None, local=text[2:])
    if text.endswith(":*"):
        prefix = text[:-2]
        if prefix not in namespaces:
            raise PatternSyntaxError(
                f"undeclared namespace prefix {prefix!r} in XMLPATTERN")
        return StepTest(kind, uri=namespaces[prefix], local=None)
    if ":" in text:
        prefix, local = text.split(":", 1)
        if prefix not in namespaces:
            raise PatternSyntaxError(
                f"undeclared namespace prefix {prefix!r} in XMLPATTERN")
        return StepTest(kind, uri=namespaces[prefix], local=local)
    return StepTest(kind, uri=applicable_default, local=text)
