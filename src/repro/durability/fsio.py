"""Fsync-discipline file primitives for the durability layer.

Every byte the durability subsystem puts on disk flows through this
module: ``lint_repo.py`` bans direct ``os.*`` / ``open()`` calls in the
rest of ``src/repro/durability/`` so the write/fsync/rename ordering
that crash recovery depends on lives in exactly one reviewable place.

The contract each helper provides:

* :func:`write_bytes` writes and flushes to the OS but does **not**
  make the data durable — callers must follow with :func:`fsync_path`
  (or accept loss on power failure);
* :func:`replace` is POSIX-atomic rename; pairing it with
  :func:`fsync_dir` on the parent makes the *name change itself*
  durable (rename without a directory fsync can be lost);
* :func:`fsync_file` / :func:`fsync_path` force file contents (and
  size) to stable storage.
"""

from __future__ import annotations

import os
import pathlib

__all__ = [
    "ensure_dir", "exists", "file_size", "read_bytes", "write_bytes",
    "open_append", "fsync_file", "fsync_path", "fsync_dir", "replace",
    "truncate", "remove",
]


def ensure_dir(path) -> None:
    os.makedirs(os.fspath(path), exist_ok=True)


def exists(path) -> bool:
    return os.path.exists(os.fspath(path))


def file_size(path) -> int:
    return os.stat(os.fspath(path)).st_size


def read_bytes(path) -> bytes:
    with open(os.fspath(path), "rb") as handle:
        return handle.read()


def write_bytes(path, data: bytes) -> None:
    """Write ``data`` to ``path`` (truncating), flushed but NOT fsynced."""
    with open(os.fspath(path), "wb") as handle:
        handle.write(data)
        handle.flush()


def open_append(path):
    """An append-mode binary handle (the WAL's long-lived handle)."""
    return open(os.fspath(path), "ab")


def fsync_file(handle) -> None:
    """Force a handle's written data to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def fsync_path(path) -> None:
    """fsync a closed file by path (used after temp-file writes)."""
    descriptor = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def fsync_dir(path) -> None:
    """fsync a directory so a rename inside it survives power loss."""
    descriptor = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def replace(source, destination) -> None:
    """Atomic rename: readers see the old file or the new, never a mix."""
    os.replace(os.fspath(source), os.fspath(destination))


def truncate(path, size: int) -> None:
    os.truncate(os.fspath(path), size)


def remove(path) -> None:
    os.unlink(os.fspath(path))


def parent_dir(path) -> pathlib.Path:
    return pathlib.Path(os.fspath(path)).resolve().parent
