"""Atomic checkpoints: the catalog and data as one JSON document.

A checkpoint is the full logical state of the database — tables with
their typed columns and rows, registered (and per-document) schemas,
index *definitions*, and per-document path-summary shapes — written to
a temp file, fsynced, and atomically renamed to ``checkpoint.json``.
Readers of the directory therefore always see either the previous
complete checkpoint or the new complete checkpoint, never a partial
one.

Two deliberate shape choices:

* **Indexes are not serialized.**  B+Trees are derived state; the
  checkpoint records each index's defining DDL (table, column,
  XMLPATTERN text, SQL type) and recovery replays the ``CREATE
  INDEX``, rebuilding the tree from the recovered documents.  That
  keeps the checkpoint small and immune to index-format drift.
* **Path summaries are persisted as shapes, not node lists.**  A
  summary's node lists are pointers into the live tree and rebuild
  during the recovery ingest walk anyway; the checkpoint stores each
  document's distinct paths with counts, which ``recover --verify``
  compares against the rebuilt summaries — an end-to-end integrity
  oracle over serialize → parse → re-summarize.

XML column values are serialized with :func:`repro.xmlio.serializer.
serialize`; the round-trip property test in
``tests/property/test_xml_roundtrip.py`` is what makes that a safe
persistence format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import DurabilityError
from ..obs.metrics import METRICS
from ..storage.columnar import ingest_document
from ..storage.pathsummary import get_summary
from ..storage.table import StoredDocument
from ..xmlio.serializer import serialize
from . import fsio
from .codec import encode_path, encode_schema, encode_value
from .faults import NO_FAULTS

__all__ = ["CHECKPOINT_NAME", "CheckpointInfo", "write_checkpoint",
           "load_checkpoint"]

CHECKPOINT_NAME = "checkpoint.json"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class CheckpointInfo:
    """What a completed checkpoint covers."""

    last_lsn: int
    tables: int
    rows: int
    bytes_written: int


def encode_database(database, last_lsn: int, *,
                    ship_columns: bool = False) -> dict:
    """The checkpoint document for the database's current state.

    Caller holds the exclusive write lock, so the traversal sees one
    consistent version.

    ``ship_columns=True`` additionally embeds each document's columnar
    payload (``$columns``) next to its canonical text.  This is the
    *replica shipping* variant (see :mod:`repro.parallel.pool`):
    followers rebuild trees directly from the columns — one
    materialization pass, no re-parse, no summary walk — with the
    primary's node ids preserved.  Disk checkpoints never set it, so
    the on-disk format-v1 bytes are unchanged."""
    tables = []
    for table in database.tables.values():
        rows = []
        for row in table.rows:
            encoded_row = {}
            for column, value in row.values.items():
                if isinstance(value, StoredDocument):
                    summary = get_summary(value.document, build=True)
                    encoded_row[column] = {
                        "$xml": serialize(value.document),
                        "$schema": value.schema_name,
                        "$paths": sorted(
                            [encode_path(path), count]
                            for path, count in summary.counts().items()),
                    }
                    if ship_columns:
                        encoded_row[column]["$columns"] = \
                            ingest_document(value.document).to_payload()
                else:
                    encoded_row[column] = encode_value(value)
            rows.append(encoded_row)
        tables.append({
            "name": table.name,
            "columns": [[column, str(sql_type)]
                        for column, sql_type in table.columns.items()],
            "rows": rows,
        })
    schemas = [dict(encode_schema(schema), registered=True)
               for schema in database.schemas.values()]
    noted = getattr(database, "_doc_schemas", {})
    schemas.extend(dict(encode_schema(schema), registered=False)
                   for name, schema in noted.items()
                   if name not in database.schemas)
    return {
        "format": FORMAT_VERSION,
        "last_lsn": last_lsn,
        "index_order": database.index_order,
        "tables": tables,
        "schemas": schemas,
        "xml_indexes": [
            {"name": index.name, "table": index.table,
             "column": index.column, "pattern": index.pattern_text,
             "type": index.index_type}
            for index in database.xml_indexes.values()],
        "rel_indexes": [
            {"name": index.name, "table": index.table,
             "column": index.column}
            for index in database.rel_indexes.values()],
    }


# sa: ok(SA403: the checkpoint serializes state under the writer lock
# so the snapshot and its LSN agree; that is the whole protocol)
def write_checkpoint(database, directory, last_lsn: int, *,
                     faults=NO_FAULTS, tracer=None) -> CheckpointInfo:
    """Serialize, write-temp, fsync, rename: the atomic protocol.

    The WAL reset that completes a checkpoint is the caller's step
    (``DurableDatabase.checkpoint``) so its crash points wrap the
    actual truncation."""
    state = encode_database(database, last_lsn)
    data = json.dumps(state, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    destination = directory / CHECKPOINT_NAME
    temp = directory / (CHECKPOINT_NAME + ".tmp")
    span = (tracer.span("checkpoint.write", lsn=last_lsn,
                        bytes=len(data))
            if tracer is not None else None)
    with span if span is not None else _NullContext():
        fsio.write_bytes(temp, data)
        faults.crash_point("checkpoint.before_tmp_fsync")
        fsio.fsync_path(temp)
        faults.crash_point("checkpoint.after_tmp_fsync")
        faults.crash_point("checkpoint.before_rename")
        fsio.replace(temp, destination)
        fsio.fsync_dir(directory)
        faults.crash_point("checkpoint.after_rename")
    rows = sum(len(table["rows"]) for table in state["tables"])
    if METRICS.enabled:
        METRICS.inc("checkpoint.writes")
        METRICS.inc("checkpoint.bytes_written", len(data))
    return CheckpointInfo(last_lsn=last_lsn, tables=len(state["tables"]),
                          rows=rows, bytes_written=len(data))


def load_checkpoint(directory) -> dict | None:
    """The checkpoint document, or None for a fresh directory.

    A leftover ``checkpoint.json.tmp`` (crash between write and
    rename) is ignorable garbage: the rename never happened, so the
    previous checkpoint — or none — is still the truth."""
    path = directory / CHECKPOINT_NAME
    if not fsio.exists(path):
        return None
    try:
        state = json.loads(fsio.read_bytes(path).decode("utf-8"))
    except ValueError as error:
        raise DurabilityError(
            f"{path}: corrupt checkpoint: {error}") from error
    if state.get("format") != FORMAT_VERSION:
        raise DurabilityError(
            f"{path}: unsupported checkpoint format "
            f"{state.get('format')!r}")
    if METRICS.enabled:
        METRICS.inc("checkpoint.loads")
    return state


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False
