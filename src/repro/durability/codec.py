"""JSON encoding of SQL values, schemas, and summary paths.

WAL records and checkpoints share one value codec.  The SQL value
domain (:mod:`repro.sql.values`) is JSON-native except for four cases,
which are tagged with single-key objects so decoding is unambiguous:

=============================  =======================================
``{"$d": "12.50"}``            ``decimal.Decimal`` (exact text form)
``{"$date": "2006-09-12"}``    ``datetime.date`` (ISO)
``{"$ts": "…T…"}``             ``datetime.datetime`` (ISO)
``{"$f": "nan" | "inf" …}``    non-finite floats (invalid JSON)
``{"$xml": "<order>…"}``       a stored document, serialized text
=============================  =======================================

Plain strings never collide with tags (tags are objects), and finite
floats/ints/bools/None pass through as JSON scalars.  Decoded scalars
re-enter the engine through ``Table.new_row``'s ``coerce_to_type``,
which is idempotent on already-coerced values.
"""

from __future__ import annotations

import datetime
import decimal
import math

from ..errors import DurabilityError
from ..schema.schema import Schema, TypeDeclaration

__all__ = ["encode_value", "decode_value", "encode_schema",
           "decode_schema", "encode_path"]


def encode_value(value):
    """A non-XML SQL value → its JSON-safe form."""
    if isinstance(value, bool) or value is None or isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {"$f": "nan"}
        return {"$f": "inf" if value > 0 else "-inf"}
    if isinstance(value, str):
        return value
    if isinstance(value, decimal.Decimal):
        return {"$d": str(value)}
    if isinstance(value, datetime.datetime):
        return {"$ts": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    raise DurabilityError(
        f"cannot encode value of type {type(value).__name__} "
        f"in a WAL record")


def decode_value(obj):
    """Inverse of :func:`encode_value` for non-XML scalars."""
    if not isinstance(obj, dict):
        return obj
    if "$d" in obj:
        return decimal.Decimal(obj["$d"])
    if "$date" in obj:
        return datetime.date.fromisoformat(obj["$date"])
    if "$ts" in obj:
        return datetime.datetime.fromisoformat(obj["$ts"])
    if "$f" in obj:
        return float(obj["$f"])
    raise DurabilityError(f"unknown tagged value {sorted(obj)!r}")


def encode_schema(schema: Schema) -> dict:
    return {
        "name": schema.name,
        "strict": schema.strict,
        "declarations": [[decl.path, decl.type_name, decl.is_list]
                         for decl in schema.declarations],
    }


def decode_schema(obj: dict) -> Schema:
    return Schema(
        obj["name"],
        [TypeDeclaration(path, type_name, is_list)
         for path, type_name, is_list in obj["declarations"]],
        strict=obj["strict"])


def encode_path(path) -> list:
    """A path-summary key (tuple of PathComponent) → nested JSON lists."""
    return [[component.kind, component.uri, component.local]
            for component in path]
