"""Crash recovery: last checkpoint + WAL tail → a live database.

The protocol::

    load checkpoint.json (if any)        → state as of checkpoint_lsn
      tables → schemas → rows → indexes  (indexes rebuilt from DDL)
    scan wal.log, repair torn tail       → records, longest valid prefix
    replay records with lsn > checkpoint_lsn, in LSN order

Idempotence comes from three layers: every recovery starts from a
*fresh* in-memory database (never a partially recovered one), the
checkpoint-LSN guard skips records the checkpoint already covers
(stale logs left by a crash between checkpoint rename and WAL reset),
and each DDL apply tolerates already-present/already-absent targets.
Recovering the same directory twice is therefore a no-op: same state,
same LSNs, nothing rewritten.

Emits ``recovery`` trace spans (via :mod:`repro.obs.trace`) and
``recovery.*`` metrics; ``verify=True`` additionally checks every
checkpointed document's rebuilt path summary against the shape the
checkpoint recorded.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..errors import DurabilityError
from ..obs.metrics import METRICS
from ..schema.schema import Schema
from ..storage.columnar import ColumnStore
from ..storage.pathsummary import get_summary
from ..storage.table import StoredDocument
from . import fsio
from .checkpoint import load_checkpoint
from .codec import decode_schema, decode_value, encode_path
from .wal import WAL_NAME, scan_wal

__all__ = ["RecoveryResult", "VerifyReport", "recover",
           "apply_checkpoint_state", "apply_wal_record"]


@dataclass
class VerifyReport:
    """`recover --verify` findings; empty mismatch list == healthy."""

    documents_checked: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return (f"verify: {self.documents_checked} document "
                    f"summaries match the checkpoint")
        lines = [f"verify: {len(self.mismatches)} mismatch(es) over "
                 f"{self.documents_checked} documents"]
        lines.extend(f"  {mismatch}" for mismatch in self.mismatches)
        return "\n".join(lines)


@dataclass
class RecoveryResult:
    """What one recovery pass did."""

    checkpoint_lsn: int
    last_lsn: int
    replayed: int
    skipped: int
    truncated_bytes: int
    tables: int
    rows: int
    seconds: float
    verify: VerifyReport | None = None

    def render(self) -> str:
        lines = [
            f"recovered: checkpoint_lsn={self.checkpoint_lsn} "
            f"last_lsn={self.last_lsn} replayed={self.replayed} "
            f"skipped={self.skipped} "
            f"truncated_bytes={self.truncated_bytes}",
            f"state: {self.tables} table(s), {self.rows} row(s), "
            f"{self.seconds * 1000:.1f} ms",
        ]
        if self.verify is not None:
            lines.append(self.verify.render())
        return "\n".join(lines)


def recover(database, directory, *, verify: bool = False,
            tracer=None) -> RecoveryResult:
    """Rebuild ``database`` (a fresh instance) from ``directory``.

    The caller (``DurableDatabase.__init__``) sets ``_replaying`` so
    the writer overrides it routes through do not re-log; this function
    only drives the database's own public write path, which rebuilds
    summaries, validates against schemas, and maintains indexes exactly
    as live ingest does."""
    start = time.perf_counter()
    report = VerifyReport() if verify else None
    wal_path = directory / WAL_NAME
    with _span(tracer, "recovery", directory=str(directory)):
        with _span(tracer, "recovery.checkpoint"):
            state = load_checkpoint(directory)
            checkpoint_lsn = state["last_lsn"] if state else 0
            if state is not None:
                _apply_checkpoint(database, state, report)
        scan = scan_wal(wal_path)
        if scan.torn_bytes:
            # Torn-tail repair: drop the partial final frame so later
            # appends extend a valid log.
            fsio.truncate(wal_path, scan.valid_size)
            fsio.fsync_path(wal_path)
            if METRICS.enabled:
                METRICS.inc("wal.torn_bytes_truncated", scan.torn_bytes)
        replayed = skipped = 0
        with _span(tracer, "recovery.wal", records=len(scan.records),
                   torn_bytes=scan.torn_bytes):
            for lsn, record in scan.records:
                if lsn <= checkpoint_lsn:
                    skipped += 1
                    continue
                _apply_record(database, record)
                replayed += 1
    seconds = time.perf_counter() - start
    if METRICS.enabled:
        METRICS.inc("recovery.runs")
        METRICS.inc("recovery.records_replayed", replayed)
        METRICS.inc("recovery.records_skipped", skipped)
        METRICS.observe("recovery.seconds", seconds)
    return RecoveryResult(
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=max(checkpoint_lsn, scan.last_lsn),
        replayed=replayed, skipped=skipped,
        truncated_bytes=scan.torn_bytes,
        tables=len(database.tables),
        rows=sum(len(table.rows)
                 for table in database.tables.values()),
        seconds=seconds, verify=report)


# ---------------------------------------------------------------------------
# Checkpoint apply
# ---------------------------------------------------------------------------


def _apply_checkpoint(database, state: dict,
                      report: VerifyReport | None) -> None:
    database.index_order = state["index_order"]
    for table in state["tables"]:
        database.create_table(
            table["name"],
            [(column, type_text)
             for column, type_text in table["columns"]])
    for entry in state["schemas"]:
        schema = decode_schema(entry)
        if entry["registered"]:
            database.register_schema(schema)
        else:
            database._doc_schemas[schema.name] = schema
    for table in state["tables"]:
        for position, row in enumerate(table["rows"]):
            _apply_checkpoint_row(database, table["name"], position,
                                  row, report)
    # Indexes last: one bulk build over the recovered documents beats
    # per-row incremental maintenance during the load above.
    for index in state["xml_indexes"]:
        if index["name"] not in database.xml_indexes:
            database.create_xml_index(
                index["name"], index["table"], index["column"],
                index["pattern"], index["type"])
    for index in state["rel_indexes"]:
        if index["name"] not in database.rel_indexes:
            database.create_relational_index(
                index["name"], index["table"], index["column"])


def _apply_checkpoint_row(database, table_name: str, position: int,
                          row: dict, report: VerifyReport | None) -> None:
    values: dict[str, object] = {}
    schema_map: dict[str, Schema] = {}
    stored_paths: dict[str, list] = {}
    for column, encoded in row.items():
        if isinstance(encoded, dict) and "$xml" in encoded:
            columns_payload = encoded.get("$columns")
            if columns_payload is not None:
                # Replica-shipped columnar payload: materialize the
                # tree straight from the columns (primary node ids
                # preserved) instead of re-parsing the canonical text;
                # the ingest path reuses the attached store as-is.
                values[column] = ColumnStore.from_payload(
                    columns_payload).materialize()
            else:
                values[column] = encoded["$xml"]
            schema_name = encoded.get("$schema")
            if schema_name:
                schema_map[column] = _resolve_schema(database,
                                                     schema_name)
            stored_paths[column] = encoded.get("$paths")
        else:
            values[column] = decode_value(encoded)
    inserted = database.insert(table_name, values,
                               schema_map or None)
    if report is None:
        return
    for column, expected in stored_paths.items():
        stored = inserted.values.get(column)
        if not isinstance(stored, StoredDocument) or expected is None:
            continue
        report.documents_checked += 1
        summary = get_summary(stored.document, build=True)
        rebuilt = sorted([encode_path(path), count]
                         for path, count in summary.counts().items())
        if rebuilt != expected:
            report.mismatches.append(
                f"{table_name} row {position} column {column}: "
                f"rebuilt path summary has {len(rebuilt)} path(s), "
                f"checkpoint recorded {len(expected)}"
                + ("" if len(rebuilt) != len(expected)
                   else " with differing shapes"))


def _resolve_schema(database, name: str) -> Schema:
    schema = database.schemas.get(name)
    if schema is None:
        schema = database._doc_schemas.get(name)
    if schema is None:
        raise DurabilityError(
            f"recovery references unknown schema {name!r}")
    return schema


# ---------------------------------------------------------------------------
# WAL record apply (idempotent per record)
# ---------------------------------------------------------------------------


def _apply_record(database, record: dict) -> None:
    op = record.get("op")
    if op == "create_table":
        if record["name"] not in database.tables:
            database.create_table(
                record["name"],
                [(column, type_text)
                 for column, type_text in record["columns"]])
    elif op == "drop_table":
        if record["name"] in database.tables:
            database.drop_table(record["name"])
    elif op == "register_schema":
        database.register_schema(decode_schema(record["schema"]))
    elif op == "create_xml_index":
        if record["name"] not in database.xml_indexes:
            database.create_xml_index(
                record["name"], record["table"], record["column"],
                record["pattern"], record["type"])
    elif op == "create_relational_index":
        if record["name"] not in database.rel_indexes:
            database.create_relational_index(
                record["name"], record["table"], record["column"])
    elif op == "drop_index":
        if (record["name"] in database.xml_indexes
                or record["name"] in database.rel_indexes):
            database.drop_index(record["name"])
    elif op == "insert":
        values: dict[str, object] = {}
        schema_map: dict[str, Schema] = {}
        for column, encoded in record["values"].items():
            if isinstance(encoded, dict) and "$xml" in encoded:
                values[column] = encoded["$xml"]
            else:
                values[column] = decode_value(encoded)
        for column, entry in record.get("schemas", {}).items():
            if "$ref" in entry:
                schema_map[column] = _resolve_schema(database,
                                                     entry["$ref"])
            else:
                schema_map[column] = decode_schema(entry)
        database.insert(record["table"], values, schema_map or None)
    elif op == "delete_rows":
        database._delete_positions(record["table"], record["positions"])
    else:
        raise DurabilityError(f"unknown WAL record op {op!r}")


def _span(tracer, name: str, **attributes):
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attributes)


# ---------------------------------------------------------------------------
# Replica-facing entry points (log shipping)
# ---------------------------------------------------------------------------

#: Load an encoded checkpoint document into a fresh database — the
#: replica-bootstrap half of recovery, reused by
#: :mod:`repro.parallel.replica` on state shipped over a pipe instead
#: of read from disk.
apply_checkpoint_state = _apply_checkpoint

#: Apply one logical WAL record — the replay step a follower runs for
#: every record the primary ships.
apply_wal_record = _apply_record
