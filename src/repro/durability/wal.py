"""The write-ahead log: logical records, CRC framing, group commit.

File layout::

    REPROWAL1\\n                      10-byte magic
    <lsn:u32><length:u32><crc:u32>   per-record frame header (LE)
    <payload: length bytes>          UTF-8 JSON of one logical record

The log is *logical* (operation-level), mirroring how the engine's
writers are already atomic critical sections: one committed writer call
(``create_table``, ``insert``, ``delete_rows``, …) is exactly one
record, appended *after* the in-memory apply succeeds but inside the
same exclusive-lock section, so log order always equals apply order
and failed operations never reach the log.

LSNs increase by exactly 1 per record and restart from
``checkpoint_lsn + 1`` after a checkpoint truncates the log.  The CRC
covers the LSN and the payload, so frame corruption anywhere is
detected; scanning stops at the first invalid frame and
:meth:`WriteAheadLog.__init__` (via :func:`scan_wal`) truncates the
file there — torn-tail repair.

Group commit (``fsync_policy``):

``always``
    write + fsync per record: every committed operation is durable.
``batch``
    records accumulate in memory and one write+fsync covers each group
    of ``group_size`` — an order-of-magnitude cheaper per commit, at
    the cost of losing up to a group on a crash (recovery then yields
    the longest durable prefix, which the crash-matrix test verifies
    is a consistent database).
``off``
    write + flush, never fsync: bounded only by the OS page cache.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field

from ..errors import DurabilityError
from ..obs.metrics import METRICS
from . import fsio
from .faults import NO_FAULTS

__all__ = ["WAL_NAME", "WriteAheadLog", "WalScan", "scan_wal",
           "encode_record", "tail_wal"]

WAL_NAME = "wal.log"
MAGIC = b"REPROWAL1\n"
_FRAME = struct.Struct("<III")  # lsn, payload length, crc32
_MAX_RECORD = 64 * 1024 * 1024


def _crc(lsn: int, payload: bytes) -> int:
    return zlib.crc32(struct.pack("<I", lsn) + payload)


def encode_record(lsn: int, record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"),
                         ensure_ascii=False).encode("utf-8")
    return _FRAME.pack(lsn, len(payload), _crc(lsn, payload)) + payload


@dataclass
class WalScan:
    """The readable prefix of a WAL file."""

    records: list[tuple[int, dict]] = field(default_factory=list)
    #: Byte size of the valid prefix (magic + whole records).
    valid_size: int = 0
    #: Actual file size; > valid_size means a torn/corrupt tail.
    file_size: int = 0
    #: Offset where the last *valid* record's frame begins (-1: none).
    last_record_start: int = -1

    @property
    def torn_bytes(self) -> int:
        return self.file_size - self.valid_size

    @property
    def last_lsn(self) -> int:
        return self.records[-1][0] if self.records else 0


def scan_wal(path) -> WalScan:
    """Read every whole, CRC-valid record; stop at the first bad frame.

    Missing file → empty scan.  A corrupt magic header is a hard error
    (the file is not ours to repair); everything after it follows the
    torn-tail rule: the valid prefix is the log.
    """
    scan = WalScan()
    if not fsio.exists(path):
        return scan
    data = fsio.read_bytes(path)
    scan.file_size = len(data)
    if len(data) < len(MAGIC) or not data.startswith(MAGIC):
        raise DurabilityError(f"{path}: not a repro WAL (bad magic)")
    offset = len(MAGIC)
    scan.valid_size = offset
    previous_lsn = 0
    while offset + _FRAME.size <= len(data):
        lsn, length, crc = _FRAME.unpack_from(data, offset)
        if length > _MAX_RECORD:
            break
        end = offset + _FRAME.size + length
        if end > len(data):
            break
        payload = data[offset + _FRAME.size:end]
        if _crc(lsn, payload) != crc:
            break
        if previous_lsn and lsn <= previous_lsn:
            raise DurabilityError(
                f"{path}: LSN order violated at byte {offset}: "
                f"{lsn} after {previous_lsn}")
        try:
            record = json.loads(payload.decode("utf-8"))
        except ValueError:
            break
        scan.records.append((lsn, record))
        scan.last_record_start = offset
        previous_lsn = lsn
        offset = end
        scan.valid_size = offset
    return scan


def tail_wal(path, after_lsn: int = 0) -> list[tuple[int, dict]]:
    """The WAL tail: every valid record with ``lsn > after_lsn``.

    This is the log-shipping bootstrap read — a new replica receives a
    checkpoint at LSN *c* plus ``tail_wal(path, c)`` and is then caught
    up to the durable prefix; live records arrive via
    :meth:`WriteAheadLog.subscribe` from there on."""
    return [(lsn, record) for lsn, record in scan_wal(path).records
            if lsn > after_lsn]


class WriteAheadLog:
    """Append side of the log; one instance per open database.

    ``start_lsn`` is the LSN already consumed (recovery's
    ``max(checkpoint_lsn, last WAL lsn)``); appends continue at
    ``start_lsn + 1``.

    Subscribers (:meth:`subscribe`) observe every appended record in
    LSN order, synchronously inside the writer's critical section —
    the log-shipping hook: because the engine appends under its
    exclusive write lock, a subscriber that forwards records down a
    FIFO pipe gives each follower the exact apply order of the
    primary.  Subscribers see records at *append* time (when the
    primary's in-memory state already reflects them), not at fsync
    time: replicas track the primary's served state, so they may lag
    durability by at most one group-commit batch.
    """

    def __init__(self, path, *, fsync_policy: str = "always",
                 group_size: int = 256, faults=NO_FAULTS,
                 start_lsn: int = 0):
        if fsync_policy not in ("always", "batch", "off"):
            raise DurabilityError(
                f"unknown fsync policy {fsync_policy!r}; "
                f"expected always/batch/off")
        if group_size < 1:
            raise DurabilityError("group_size must be >= 1")
        self.path = path
        self.fsync_policy = fsync_policy
        self.group_size = group_size
        self._faults = faults
        self._directory = fsio.parent_dir(path)
        if not fsio.exists(path):
            fsio.write_bytes(path, MAGIC)
            fsio.fsync_path(path)
            fsio.fsync_dir(self._directory)
        self._handle = fsio.open_append(path)
        self._written_size = fsio.file_size(path)
        self._synced_size = self._written_size
        self._next_lsn = start_lsn + 1
        self._pending: list[bytes] = []
        self._subscribers: list = []

    # -- subscriptions (log shipping) -----------------------------------

    def subscribe(self, listener) -> None:
        """Register ``listener(lsn, record)`` for every future append.

        Called synchronously from :meth:`append`, i.e. inside the
        engine's exclusive writer section; listeners must be fast and
        must not re-enter the database."""
        self._subscribers.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a listener registered with :meth:`subscribe`."""
        if listener in self._subscribers:
            self._subscribers.remove(listener)

    # -- properties -----------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record (0 when empty)."""
        return self._next_lsn - 1

    @property
    def pending_records(self) -> int:
        return len(self._pending)

    # -- appending ------------------------------------------------------

    def append(self, record: dict) -> int:
        """Append one logical record; returns its LSN.

        Durability on return depends on the fsync policy; callers that
        need a hard guarantee regardless of policy follow with
        :meth:`sync`.
        """
        lsn = self._next_lsn
        self._next_lsn += 1
        data = encode_record(lsn, record)
        if METRICS.enabled:
            METRICS.inc("wal.appends")
        if self.fsync_policy == "always":
            self._write_group(data, sync=True)
        elif self.fsync_policy == "off":
            self._write_group(data, sync=False)
        else:
            self._pending.append(data)
            if len(self._pending) >= self.group_size:
                self.flush()
        for listener in self._subscribers:
            listener(lsn, record)
        return lsn

    def flush(self) -> None:
        """Write buffered records; fsync unless the policy is ``off``."""
        if not self._pending:
            return
        data = b"".join(self._pending)
        self._pending.clear()
        self._write_group(data, sync=self.fsync_policy != "off")

    # sa: ok(SA403: callers fsync under the writer lock on purpose —
    # durability must be ordered with the mutation it covers)
    def sync(self) -> None:
        """Force full durability: drain the buffer and fsync."""
        if self._pending:
            data = b"".join(self._pending)
            self._pending.clear()
            self._write_group(data, sync=True)
        elif self._synced_size < self._written_size:
            self._fsync()

    def _write_group(self, data: bytes, sync: bool) -> None:
        self._faults.crash_point("wal.append.before_write",
                                 path=self.path,
                                 durable_bytes=self._synced_size)
        self._handle.write(data)
        self._handle.flush()
        self._written_size += len(data)
        if METRICS.enabled:
            METRICS.inc("wal.bytes_written", len(data))
        if sync:
            self._faults.crash_point("wal.append.before_fsync",
                                     path=self.path,
                                     durable_bytes=self._synced_size)
            self._fsync()
            self._faults.crash_point("wal.append.after_fsync",
                                     path=self.path,
                                     durable_bytes=self._synced_size)

    def _fsync(self) -> None:
        fsio.fsync_file(self._handle)
        self._synced_size = self._written_size
        if METRICS.enabled:
            METRICS.inc("wal.fsyncs")

    # -- truncation (after a checkpoint) --------------------------------

    # sa: ok(SA403: truncation runs inside the checkpoint's exclusive
    # section so no writer can append to the log being replaced)
    def reset(self, last_lsn: int) -> None:
        """Truncate the log after a checkpoint at ``last_lsn``.

        A fresh header-only file is written, fsynced, and atomically
        renamed over the old log; a crash on either side of the rename
        leaves a log recovery handles (the stale records are skipped by
        the checkpoint-LSN guard)."""
        self._pending.clear()
        self._handle.close()
        fresh = str(self.path) + ".new"
        fsio.write_bytes(fresh, MAGIC)
        fsio.fsync_path(fresh)
        try:
            self._faults.crash_point("wal.reset.before_rename")
            fsio.replace(fresh, self.path)
            fsio.fsync_dir(self._directory)
            self._faults.crash_point("wal.reset.after_rename")
        finally:
            # Keep the in-memory object usable even across an injected
            # crash: tests recover the directory with a new instance,
            # but this one must close cleanly.
            self._handle = fsio.open_append(self.path)
            self._written_size = fsio.file_size(self.path)
            self._synced_size = self._written_size
        self._next_lsn = last_lsn + 1

    # sa: ok(SA403: the final flush+fsync happens under the writer
    # lock so close cannot race a concurrent append)
    def close(self) -> None:
        if self._handle.closed:
            return
        self.flush()
        self._handle.close()

    def abandon(self) -> None:
        """Drop the handle *without* draining buffered records.

        The fault harness calls this after an injected crash: a dead
        process never flushes its group-commit buffer, and a tidy
        :meth:`close` here would quietly undo the simulated data loss.
        """
        self._pending.clear()
        if not self._handle.closed:
            self._handle.close()
