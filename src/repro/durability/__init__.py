"""Durability subsystem: WAL, checkpoints, crash recovery, faults.

The paper's substrate (DB2 Viper) is a *persistent* native XML store;
this package gives the reproduction the same property.  See the README
"Durability & recovery" section for the protocol overview and the CLI
surface (``--data DIR``, ``repro checkpoint``, ``repro recover``).

Module map:

``fsio``        the only module allowed raw ``os``/file primitives
``wal``         append-only logical log with CRC framing + group commit
``checkpoint``  atomic write-temp/fsync/rename state snapshots
``recovery``    checkpoint load + WAL replay, idempotent
``faults``      named crash points and torn-write enumeration
``engine``      :class:`DurableDatabase` — the public entry point
"""

from .checkpoint import CHECKPOINT_NAME, CheckpointInfo
from .engine import DurableDatabase
from .faults import FAULT_POINTS, CrashError, FaultInjector, NO_FAULTS
from .recovery import RecoveryResult, VerifyReport
from .wal import WAL_NAME, WriteAheadLog

__all__ = [
    "DurableDatabase", "WriteAheadLog", "RecoveryResult",
    "VerifyReport", "CheckpointInfo", "CrashError", "FaultInjector",
    "NO_FAULTS", "FAULT_POINTS", "WAL_NAME", "CHECKPOINT_NAME",
]
