"""Deterministic fault injection for the durability layer.

Crash recovery that is merely *hoped for* is indistinguishable from
crash recovery that works, so every dangerous instant in the WAL and
checkpoint protocols is a **named crash point** (:data:`FAULT_POINTS`):
immediately before and after each fsync and each atomic rename.  A test
arms a :class:`FaultInjector` at one point; when the engine reaches it
the injector raises :class:`CrashError`, optionally first truncating
the WAL back to its last-fsynced size — the on-disk picture a real
power cut leaves when the OS page cache dies with the process.

``CrashError`` subclasses :class:`Exception` directly, **not**
``ReproError``: engine code legitimately catches ``ReproError`` for
rollback, and a simulated crash must never be swallowed by those
handlers.

The *torn-write* mode is the second half of the harness: given a WAL
whose final record occupies ``[start, size)``, :func:`torn_tail_sizes`
enumerates every truncation length that leaves that record partially
written, and the crash-matrix test replays recovery at each one.
"""

from __future__ import annotations

from . import fsio

__all__ = ["CrashError", "FaultInjector", "NO_FAULTS", "FAULT_POINTS",
           "torn_tail_sizes"]

#: Every crash point the engine is instrumented with, in protocol order.
FAULT_POINTS = (
    # WAL append: record encode → write → fsync.
    "wal.append.before_write",
    "wal.append.before_fsync",
    "wal.append.after_fsync",
    # WAL reset (log truncation after a checkpoint): fresh header file
    # written+fsynced, then renamed over the old log.
    "wal.reset.before_rename",
    "wal.reset.after_rename",
    # Checkpoint: temp write → fsync → rename → dir fsync → WAL reset.
    "checkpoint.before_tmp_fsync",
    "checkpoint.after_tmp_fsync",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
    "checkpoint.before_wal_reset",
    "checkpoint.after_wal_reset",
    # Online index build (repro.storage.catalog.create_xml_index_online):
    # snapshot scan → write-locked WAL-delta catch-up → publish + log.
    "index.build.after_scan",
    "index.build.before_catchup",
    "index.build.before_publish",
    "index.build.after_publish",
)


class CrashError(Exception):
    """A simulated process crash raised at a named fault point.

    Deliberately NOT a :class:`repro.errors.ReproError`: rollback
    handlers that catch engine errors must not absorb it.
    """

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point}")
        self.point = point


class FaultInjector:
    """Arms one named crash point; deterministic and re-usable.

    ``crash_at=None`` (the :data:`NO_FAULTS` singleton) never fires.
    ``skip`` crashes on the (skip+1)-th hit of the point, so a test can
    let early appends through and kill a later one.  With
    ``lose_unsynced=True`` (default) a crash at a WAL point truncates
    the log file back to its last-fsynced size plus ``keep_bytes`` —
    simulating the loss of everything the OS had not yet made durable
    (``keep_bytes`` > 0 models a torn partial write that did reach the
    platter).
    """

    def __init__(self, crash_at: str | None = None, *, skip: int = 0,
                 lose_unsynced: bool = True, keep_bytes: int = 0):
        if crash_at is not None and crash_at not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {crash_at!r}; "
                             f"registered: {', '.join(FAULT_POINTS)}")
        self.crash_at = crash_at
        self.skip = skip
        self.lose_unsynced = lose_unsynced
        self.keep_bytes = keep_bytes
        self.fired = False

    def crash_point(self, point: str, *, path=None,
                    durable_bytes: int | None = None) -> None:
        """Called by the engine at each named instant; raises to crash.

        ``path``/``durable_bytes`` describe the WAL file and its
        last-fsynced size so the injector can simulate page-cache loss.
        """
        if point not in FAULT_POINTS:
            raise ValueError(f"unregistered fault point {point!r}")
        if point != self.crash_at or self.fired:
            return
        if self.skip > 0:
            self.skip -= 1
            return
        self.fired = True
        if (self.lose_unsynced and path is not None
                and durable_bytes is not None):
            size = fsio.file_size(path)
            kept = min(size, durable_bytes + self.keep_bytes)
            if kept < size:
                fsio.truncate(path, kept)
        raise CrashError(point)


#: Shared inert injector: the default for production instances.
NO_FAULTS = FaultInjector(None)


def torn_tail_sizes(last_record_start: int, file_size: int) -> list[int]:
    """Every truncation size that tears the final WAL record.

    Includes ``last_record_start`` itself (the record cleanly absent)
    through ``file_size - 1`` (one byte short); recovery must treat all
    of them as "final record never committed".
    """
    return list(range(last_record_start, file_size))
