"""``DurableDatabase``: the in-memory engine plus WAL + checkpoints.

Same public API as :class:`repro.storage.catalog.Database` — queries,
snapshots and ``xquery_parallel`` are inherited untouched and keep
their shared-read-lock / copy-on-write semantics.  Only the eight
writer entry points are overridden, each with the same shape::

    with self._rwlock.write():          # reentrant: nests the base op
        result = super().op(...)        # apply in memory (may raise)
        self._log({...})                # append the logical record
        return result

Holding the one exclusive lock across apply **and** log is what makes
WAL order equal apply order (concurrent writers cannot interleave the
two halves), and logging *after* a successful apply means failed
operations — validation errors, duplicate DDL — never pollute the log:
this is redo logging of committed operations only.

``delete_rows`` has the one non-obvious record shape: an arbitrary
Python predicate cannot be replayed, so the record stores the victim
**row positions** within the table's row list.  Replay reconstructs
rows in their original order (inserts are replayed in LSN order), so
positions are deterministic.
"""

from __future__ import annotations

import pathlib

from ..analysis import sanitizer as _sanitizer
from ..schema.schema import Schema
from ..storage.catalog import Database
from ..storage.table import Row, StoredDocument, Table
from ..xmlio.serializer import serialize
from . import fsio
from .checkpoint import CheckpointInfo, write_checkpoint
from .codec import encode_schema, encode_value
from .faults import NO_FAULTS
from .recovery import RecoveryResult, recover
from .wal import WAL_NAME, WriteAheadLog

__all__ = ["DurableDatabase"]


class DurableDatabase(Database):
    """A Database whose committed state survives restarts.

    Opening a directory recovers whatever state it holds (checkpoint +
    WAL tail); an empty directory starts an empty database.  See the
    README "Durability & recovery" section for the on-disk format and
    the fsync policy trade-offs.
    """

    def __init__(self, directory, *, fsync_policy: str = "always",
                 group_size: int = 256, index_order: int = 64,
                 buffer_pool_bytes: int | None = None,
                 faults=NO_FAULTS, verify: bool = False, tracer=None):
        # With a byte budget the pool spills evicted documents' columns
        # under the data directory ("spool/"); the files are pure cache
        # (checkpoint + WAL stay authoritative), so recovery ignores
        # them.  The pool deletes a file when its document is discarded
        # and close() clears the rest; open purges whatever a crash
        # left behind.
        super().__init__(index_order=index_order,
                         buffer_pool_bytes=buffer_pool_bytes,
                         buffer_pool_spill_dir=pathlib.Path(directory)
                         / "spool")
        self.directory = pathlib.Path(directory)
        fsio.ensure_dir(self.directory)
        # Purge spill files left by a previous process life (crash, or
        # a close that never got to run): doc_ids restart at 1 in every
        # process, so a stale doc-<id>.cols could alias a document this
        # incarnation is about to spill.  They are pure cache; deleting
        # them costs only a re-materialization.
        self._purge_spool()
        self._faults = faults
        #: Schemas used for per-document validation without being
        #: registered in the catalog — checkpoints must persist them so
        #: recovery can re-validate (re-annotate) those documents.
        self._doc_schemas: dict[str, Schema] = {}
        self._replaying = True
        try:
            self.last_recovery: RecoveryResult = recover(
                self, self.directory, verify=verify, tracer=tracer)
        finally:
            self._replaying = False
        self._wal = WriteAheadLog(
            self.directory / WAL_NAME, fsync_policy=fsync_policy,
            group_size=group_size, faults=faults,
            start_lsn=self.last_recovery.last_lsn)
        # Cost-model calibration survives restarts: EXPLAIN ANALYZE
        # q-error samples (and the damped correction factor they drive)
        # are loaded from the data directory on open and persisted on
        # close — see repro.autopilot.calibrate.
        from ..autopilot.calibrate import CostCalibration
        self.cost_calibration = CostCalibration.load(
            self.directory / CostCalibration.FILENAME)

    # ------------------------------------------------------------------
    # Logged writers (apply under the write lock, then log)
    # ------------------------------------------------------------------

    def create_table(self, name: str,
                     columns: list[tuple[str, str]]) -> Table:
        with self._rwlock.write():
            table = super().create_table(name, columns)
            self._log({
                "op": "create_table", "name": table.name,
                "columns": [[column, str(sql_type)] for column, sql_type
                            in table.columns.items()]})
            return table

    def drop_table(self, name: str) -> None:
        with self._rwlock.write():
            key = self.table(name).name
            super().drop_table(name)
            self._log({"op": "drop_table", "name": key})

    def register_schema(self, schema: Schema) -> None:
        with self._rwlock.write():
            super().register_schema(schema)
            self._log({"op": "register_schema",
                       "schema": encode_schema(schema)})

    def create_xml_index(self, name: str, table: str, column: str,
                         pattern: str, index_type: str):
        with self._rwlock.write():
            index = super().create_xml_index(name, table, column,
                                             pattern, index_type)
            self._log({
                "op": "create_xml_index", "name": index.name,
                "table": index.table, "column": index.column,
                "pattern": index.pattern_text,
                "type": index.index_type})
            return index

    def _publish_xml_index(self, index) -> None:
        """Online-build commit point: install + WAL-log atomically.

        The record shape is identical to :meth:`create_xml_index`'s, so
        recovery replays an online build as an ordinary offline one —
        a crash before this point leaves no WAL trace (no index after
        recovery), a crash after it replays a complete build."""
        with self._rwlock.write():
            super()._publish_xml_index(index)
            self._log({
                "op": "create_xml_index", "name": index.name,
                "table": index.table, "column": index.column,
                "pattern": index.pattern_text,
                "type": index.index_type})

    def create_relational_index(self, name: str, table: str,
                                column: str):
        with self._rwlock.write():
            index = super().create_relational_index(name, table, column)
            self._log({
                "op": "create_relational_index", "name": index.name,
                "table": index.table, "column": index.column})
            return index

    def drop_index(self, name: str) -> None:
        with self._rwlock.write():
            super().drop_index(name)
            self._log({"op": "drop_index", "name": name.lower()})

    def insert(self, table: str, values: dict[str, object],
               schema=None) -> Row:
        with self._rwlock.write():
            row = super().insert(table, values, schema)
            if self._replaying:
                self._note_row_schemas(row, schema)
                return row
            record_values: dict[str, object] = {}
            record_schemas: dict[str, dict] = {}
            for key, value in row.values.items():
                if isinstance(value, StoredDocument):
                    record_values[key] = {
                        "$xml": serialize(value.document)}
                    if value.schema_name is not None:
                        record_schemas[key] = self._note_schema(
                            self._schema_for(schema, key))
                else:
                    record_values[key] = encode_value(value)
            record = {"op": "insert", "table": self.table(table).name,
                      "values": record_values}
            if record_schemas:
                record["schemas"] = record_schemas
            self._log(record)
            return row

    def delete_rows(self, table: str, predicate=None) -> int:
        with self._rwlock.write():
            table_obj = self.table(table)
            positions = [position for position, row
                         in enumerate(table_obj.rows)
                         if predicate is None or predicate(row.values)]
            victims = [table_obj.rows[position]
                       for position in positions]
            count = self._remove_rows(table_obj, victims)
            if count:
                self._log({"op": "delete_rows",
                           "table": table_obj.name,
                           "positions": positions})
            return count

    # ``_delete_positions`` (the replay arm of ``delete_rows``) lives on
    # the base Database so read replicas can replay shipped records too.

    # ------------------------------------------------------------------
    # Durability operations
    # ------------------------------------------------------------------

    @property
    def wal(self) -> WriteAheadLog:
        """The live write-ahead log — the log-shipping subscription
        point (:meth:`WriteAheadLog.subscribe`) and LSN watermark
        source (:attr:`WriteAheadLog.last_lsn`) for replication."""
        return self._wal

    def checkpoint(self, tracer=None) -> CheckpointInfo:
        """Write an atomic checkpoint and truncate the WAL.

        Runs as one exclusive-writer section: the serialized state, the
        recorded LSN, and the log truncation all describe the same
        version."""
        with self._rwlock.write():
            self._wal.sync()
            info = write_checkpoint(self, self.directory,
                                    self._wal.last_lsn,
                                    faults=self._faults, tracer=tracer)
            self._faults.crash_point("checkpoint.before_wal_reset")
            self._wal.reset(info.last_lsn)
            self._faults.crash_point("checkpoint.after_wal_reset")
            return info

    def sync(self) -> None:
        """Make every logged record durable regardless of policy."""
        with self._rwlock.write():
            self._wal.sync()

    def close(self) -> None:
        with self._rwlock.write():
            self._wal.close()
        self.buffer_pool.close()
        if self.cost_calibration is not None:
            self.cost_calibration.save()

    def _purge_spool(self) -> None:
        spool = self.directory / "spool"
        if not spool.is_dir():
            return
        for path in spool.glob("doc-*.cols"):
            try:
                fsio.remove(path)
            except FileNotFoundError:
                pass

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    # sa: ok(SA403: WAL append fsyncs inside the writer section BY
    # DESIGN — the write lock is what serializes the log with the
    # in-memory mutation it describes; see the class docstring)
    def _log(self, record: dict) -> None:
        if self._replaying:
            return
        lsn = self._wal.append(record)
        if _sanitizer.ACTIVE is not None:
            # Append order == apply order only while the exclusive
            # lock spans both; the sanitizer checks exactly that.
            _sanitizer.ACTIVE.note_wal_append(self, lsn)

    def _note_schema(self, schema: Schema) -> dict:
        """The WAL reference for a validation schema.

        Registered schemas are referenced by name; a schema passed
        inline is embedded in the record and tracked so checkpoints
        persist its definition."""
        if self.schemas.get(schema.name) is schema:
            return {"$ref": schema.name}
        self._doc_schemas[schema.name] = schema
        return encode_schema(schema)

    def _note_row_schemas(self, row: Row, schema) -> None:
        """During replay, still track inline validation schemas."""
        for key, value in row.values.items():
            if (isinstance(value, StoredDocument)
                    and value.schema_name is not None):
                resolved = self._schema_for(schema, key)
                if (resolved is not None
                        and self.schemas.get(resolved.name)
                        is not resolved):
                    self._doc_schemas[resolved.name] = resolved
