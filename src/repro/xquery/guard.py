"""Per-query execution guards: deadlines and result budgets.

The network front door (:mod:`repro.server`) promises that a query can
never hold a session hostage: every statement may carry a deadline and
row/byte result limits, and those must abort the statement *while it
runs*, not after the evaluator has materialized an unbounded result.

A :class:`QueryGuard` is installed in a :mod:`contextvars` context
variable around statement execution and consulted from every loop that
scales with data volume: the evaluator's FLWOR tuple production,
axis-step application, expression steps and predicate filters, and the
SQL executor's join enumeration, grouping and aggregation loops.  A
runaway query therefore trips inside the loop that is burning the
time — pure-SQL statements included, not only XQuery bodies.  The
static pass ``SA406`` (``repro check``) keeps the set of ticked loops
honest.  The un-guarded path pays one ``ContextVar.get`` returning
``None`` per loop, nothing else.

Semantics:

* **Deadline** (:meth:`QueryGuard.tick`): wall-clock checks are
  throttled to one ``time.monotonic()`` call per
  :data:`~QueryGuard.CHECK_EVERY` units of work; overrunning raises
  :class:`~repro.errors.QueryTimeoutError` (SQLSTATE 57014).
  :meth:`QueryGuard.cancel` trips the same error at the next tick —
  the server uses it when a client disconnects mid-query.
* **Row limit** (:meth:`QueryGuard.check_items`): a stateless cap on
  the length of any sequence materialized by a FLWOR return clause
  (and on the final result, which the server checks again).  This is
  deliberately a *work* cap: an intermediate sequence larger than the
  limit aborts early with :class:`~repro.errors.QueryLimitError`
  (SQLSTATE 54000) rather than being filtered down later.
* **Byte limit** (:meth:`QueryGuard.charge_bytes`): charged during
  result serialization by the server loop; same 54000 error.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar

from ..errors import QueryLimitError, QueryTimeoutError

__all__ = ["QueryGuard", "active_guard", "guarded"]

_ACTIVE: ContextVar["QueryGuard | None"] = ContextVar(
    "repro_query_guard", default=None)


def active_guard() -> "QueryGuard | None":
    """The guard governing the current execution context, if any."""
    return _ACTIVE.get()


@contextmanager
def guarded(guard: "QueryGuard | None"):
    """Install ``guard`` for the duration of a block (None is a no-op,
    so call sites need no conditional)."""
    if guard is None:
        yield None
        return
    token = _ACTIVE.set(guard)
    try:
        yield guard
    finally:
        _ACTIVE.reset(token)


class QueryGuard:
    """Deadline + result budgets for one statement execution."""

    #: Work units between wall-clock reads — cheap enough that a hung
    #: axis scan still notices its deadline within microseconds, rare
    #: enough that the clock never shows up in profiles.
    CHECK_EVERY = 256

    __slots__ = ("deadline", "max_rows", "max_bytes", "bytes_charged",
                 "_ops", "cancelled")

    def __init__(self, timeout_seconds: float | None = None,
                 max_rows: int | None = None,
                 max_bytes: int | None = None):
        self.deadline = (time.monotonic() + timeout_seconds
                         if timeout_seconds is not None else None)
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.bytes_charged = 0
        self._ops = 0
        self.cancelled = False

    def cancel(self) -> None:
        """Trip the guard from another thread: the running statement
        aborts with a 57014 at its next tick.  Setting one boolean is
        atomic under the GIL, so no lock is needed."""
        self.cancelled = True

    # -- deadline ------------------------------------------------------

    def tick(self, work: int = 1) -> None:
        """Account ``work`` units; check the clock every CHECK_EVERY."""
        self._ops += work
        if self._ops >= self.CHECK_EVERY:
            self._ops = 0
            self.check_deadline()

    def check_deadline(self) -> None:
        if self.cancelled:
            raise QueryTimeoutError("statement cancelled")
        if self.deadline is not None and \
                time.monotonic() > self.deadline:
            raise QueryTimeoutError("statement deadline exceeded")

    # -- result budgets ------------------------------------------------

    def check_items(self, count: int) -> None:
        """Fail if a materialized sequence exceeds the row budget."""
        if self.max_rows is not None and count > self.max_rows:
            raise QueryLimitError(
                f"result exceeds the row limit of {self.max_rows}")

    def charge_bytes(self, count: int) -> None:
        """Accumulate serialized output size against the byte budget."""
        if self.max_bytes is None:
            return
        self.bytes_charged += count
        if self.bytes_charged > self.max_bytes:
            raise QueryLimitError(
                f"result exceeds the byte limit of {self.max_bytes}")
