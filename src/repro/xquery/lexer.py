"""XQuery tokenizer.

Tokenization is *incremental*: the parser asks for the next token at a
given source offset.  This makes direct element constructors easy to
handle — when the parser sees ``<`` where a primary expression is
expected, it abandons token mode and scans the constructor from the raw
source, recursing into the main parser for each ``{...}`` enclosure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import XQueryStaticError

#: Multi-character symbols, longest first so maximal munch wins.
_SYMBOLS = [
    "(:", "//", "::", ":=", "<<", ">>", "<=", ">=", "!=",
    "..", "/", "(", ")", "[", "]", "{", "}", ",", ";", "$", "@",
    ".", "|", "+", "-", "*", "?", "=", "<", ">", ":",
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


@dataclass(frozen=True)
class Token:
    type: str      # 'name' | 'integer' | 'decimal' | 'double' | 'string'
                   # | 'symbol' | 'eof'
    value: str
    start: int
    end: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.type == "symbol" and self.value in symbols

    def is_name(self, *names: str) -> bool:
        return self.type == "name" and (not names or self.value in names)


class Lexer:
    """Scans one token at a time from a fixed source string."""

    def __init__(self, source: str):
        self.source = source
        self.length = len(source)

    def skip_ignorable(self, pos: int) -> int:
        """Advance past whitespace and (possibly nested) comments."""
        source, length = self.source, self.length
        while pos < length:
            char = source[pos]
            if char in " \t\r\n":
                pos += 1
                continue
            if source.startswith("(:", pos):
                depth, pos = 1, pos + 2
                while pos < length and depth:
                    if source.startswith("(:", pos):
                        depth += 1
                        pos += 2
                    elif source.startswith(":)", pos):
                        depth -= 1
                        pos += 2
                    else:
                        pos += 1
                if depth:
                    raise XQueryStaticError("unterminated comment '(:'")
                continue
            break
        return pos

    def next_token(self, pos: int) -> Token:
        pos = self.skip_ignorable(pos)
        source, length = self.source, self.length
        if pos >= length:
            return Token("eof", "", pos, pos)
        char = source[pos]

        if char in ("'", '"'):
            return self._scan_string(pos)
        if char.isdigit() or (char == "." and pos + 1 < length
                              and source[pos + 1].isdigit()):
            return self._scan_number(pos)
        if char in _NAME_START or ord(char) > 127:
            return self._scan_name(pos)
        for symbol in _SYMBOLS:
            if source.startswith(symbol, pos):
                if symbol == "(:":  # comment — handled by skip_ignorable
                    break
                return Token("symbol", symbol, pos, pos + len(symbol))
        raise XQueryStaticError(
            f"unexpected character {char!r} at offset {pos}")

    def _scan_string(self, pos: int) -> Token:
        source, length = self.source, self.length
        quote = source[pos]
        start = pos
        pos += 1
        parts: list[str] = []
        while pos < length:
            char = source[pos]
            if char == quote:
                if pos + 1 < length and source[pos + 1] == quote:
                    parts.append(quote)  # doubled quote escape
                    pos += 2
                    continue
                return Token("string", "".join(parts), start, pos + 1)
            if char == "&":
                end = source.find(";", pos)
                if end < 0 or end - pos > 12:
                    raise XQueryStaticError("malformed entity reference "
                                            "in string literal")
                parts.append(_resolve_entity(source[pos + 1:end]))
                pos = end + 1
                continue
            parts.append(char)
            pos += 1
        raise XQueryStaticError("unterminated string literal")

    def _scan_number(self, pos: int) -> Token:
        source, length = self.source, self.length
        start = pos
        seen_dot = False
        seen_exponent = False
        while pos < length:
            char = source[pos]
            if char.isdigit():
                pos += 1
            elif char == "." and not seen_dot and not seen_exponent:
                # '..' is the parent-axis abbreviation, not a decimal point.
                if source.startswith("..", pos):
                    break
                seen_dot = True
                pos += 1
            elif char in "eE" and not seen_exponent:
                lookahead = pos + 1
                if lookahead < length and source[lookahead] in "+-":
                    lookahead += 1
                if lookahead < length and source[lookahead].isdigit():
                    seen_exponent = True
                    pos = lookahead
                else:
                    break
            else:
                break
        text = source[start:pos]
        if seen_exponent:
            token_type = "double"
        elif seen_dot:
            token_type = "decimal"
        else:
            token_type = "integer"
        return Token(token_type, text, start, pos)

    def _scan_name(self, pos: int) -> Token:
        source, length = self.source, self.length
        start = pos
        while pos < length:
            char = source[pos]
            if char in _NAME_CHARS or ord(char) > 127:
                # A trailing '.' or '-' not followed by a name char ends
                # the name ('.': path context; '-': minus operator).
                if char in ".-":
                    next_char = source[pos + 1] if pos + 1 < length else ""
                    if not (next_char in _NAME_CHARS or
                            (next_char and ord(next_char) > 127)):
                        break
                    if char == "." and source.startswith("..", pos):
                        break
                pos += 1
            else:
                break
        return Token("name", source[start:pos], start, pos)


def _resolve_entity(reference: str) -> str:
    if reference.startswith("#x") or reference.startswith("#X"):
        return chr(int(reference[2:], 16))
    if reference.startswith("#"):
        return chr(int(reference[1:]))
    if reference in _ENTITIES:
        return _ENTITIES[reference]
    raise XQueryStaticError(f"unknown entity &{reference};")
