"""XQuery engine: lexer, parser, and evaluator."""

from .evaluator import Evaluator, evaluate, evaluate_module
from .parser import parse_expression, parse_xquery

__all__ = ["Evaluator", "evaluate", "evaluate_module", "parse_expression",
           "parse_xquery"]
