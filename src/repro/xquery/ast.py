"""XQuery abstract syntax tree.

The AST is deliberately explicit: every construct the paper's 30
queries use has its own node class, because the eligibility analyzer
(:mod:`repro.core`) pattern-matches on these classes to classify
predicate contexts (for-binding vs let-binding vs constructor content,
and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..xdm.atomic import AtomicValue
from ..xdm.qname import QName

# ---------------------------------------------------------------------------
# Node tests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NameTest:
    """A (possibly wildcarded) QName test.

    ``uri`` / ``local`` may each be None meaning "any" — covering the
    four §2.1 grammar forms ``qname | * | ncname:* | *:ncname``.
    ``uri=""`` means *empty namespace*, the default that Section 3.7
    shows surprising people.
    """

    uri: Optional[str]
    local: Optional[str]
    prefix: str = ""

    def matches(self, name: QName | None) -> bool:
        if name is None:
            return False
        if self.uri is not None and name.uri != self.uri:
            return False
        if self.local is not None and name.local != self.local:
            return False
        return True

    def __str__(self) -> str:
        uri_part = "*" if self.uri is None else (
            f"{{{self.uri}}}" if self.uri else "")
        local_part = "*" if self.local is None else self.local
        return f"{uri_part}{local_part}"


@dataclass(frozen=True)
class KindTest:
    """``node() | text() | comment() | processing-instruction(n?) |
    document-node() | element() | attribute()``."""

    kind: str
    target: Optional[str] = None  # PI target

    def matches_node(self, node) -> bool:
        if self.kind == "node":
            return True
        if self.kind != node.kind:
            return False
        if self.kind == "processing-instruction" and self.target is not None:
            return node.target == self.target
        return True

    def __str__(self) -> str:
        inner = self.target or ""
        return f"{self.kind}({inner})"


NodeTest = Union[NameTest, KindTest]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression AST nodes."""

    __slots__ = ()


@dataclass
class Literal(Expr):
    value: AtomicValue


@dataclass
class VarRef(Expr):
    name: str  # without the '$'


@dataclass
class ContextItem(Expr):
    pass


@dataclass
class SequenceExpr(Expr):
    """Comma operator: flat concatenation (discards nothing but nests
    nothing either — the Section 3.4 'no nested sequences' property)."""

    items: list[Expr]


@dataclass
class RangeExpr(Expr):
    start: Expr
    end: Expr


@dataclass
class IfExpr(Expr):
    condition: Expr
    then_branch: Expr
    else_branch: Expr


@dataclass
class OrExpr(Expr):
    left: Expr
    right: Expr


@dataclass
class AndExpr(Expr):
    left: Expr
    right: Expr


@dataclass
class GeneralComparison(Expr):
    """``= != < <= > >=`` — existential semantics (§3.10)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class ValueComparison(Expr):
    """``eq ne lt le gt ge`` — singleton semantics (§3.10)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class NodeComparison(Expr):
    op: str  # 'is' | '<<' | '>>'
    left: Expr
    right: Expr


@dataclass
class Arithmetic(Expr):
    op: str  # '+' '-' '*' 'div' 'idiv' 'mod'
    left: Expr
    right: Expr


@dataclass
class UnaryMinus(Expr):
    operand: Expr
    negate: bool = True


@dataclass
class SetExpr(Expr):
    op: str  # 'union' | 'intersect' | 'except'
    left: Expr
    right: Expr


@dataclass
class CastExpr(Expr):
    operand: Expr
    type_name: str  # canonical, e.g. 'xs:double'
    allow_empty: bool = False  # the '?' occurrence indicator


@dataclass
class CastableExpr(Expr):
    operand: Expr
    type_name: str
    allow_empty: bool = False


@dataclass
class InstanceOfExpr(Expr):
    operand: Expr
    sequence_type: "SequenceType"


@dataclass
class TreatExpr(Expr):
    operand: Expr
    sequence_type: "SequenceType"


@dataclass(frozen=True)
class SequenceType:
    """A minimal sequence type: item kind test + occurrence indicator."""

    item_type: str            # 'document-node' | 'element' | 'node' | type name
    occurrence: str = ""       # '' | '?' | '*' | '+'


@dataclass
class FunctionCall(Expr):
    name: QName
    args: list[Expr]


# -- paths ------------------------------------------------------------------


@dataclass
class AxisStep:
    axis: str                      # child/descendant/self/.../parent
    test: NodeTest
    predicates: list[Expr] = field(default_factory=list)

    def __str__(self) -> str:
        predicate_marks = "[...]" * len(self.predicates)
        axis = "@" if self.axis == "attribute" else f"{self.axis}::"
        return f"{axis}{self.test}{predicate_marks}"


@dataclass
class ExprStep:
    """A primary expression used as a path step, evaluated once per
    context item — covers DB2's ``$i/custid/xs:double(.)`` idiom."""

    expr: Expr
    predicates: list[Expr] = field(default_factory=list)


Step = Union[AxisStep, ExprStep]


@dataclass
class PathExpr(Expr):
    """A path expression.

    ``absolute`` is '' (relative), '/' or '//'.  A leading '/' expands
    to ``fn:root(.) treat as document-node()`` — the Query 25 pitfall.
    ``steps[0]`` of a relative path may be an :class:`ExprStep` holding
    the initial primary expression (``$ord``, a function call, ...).
    """

    absolute: str
    steps: list[Step]


@dataclass
class FilterExpr(Expr):
    """Primary expression with predicates: ``$view[pid = '17']``."""

    primary: Expr
    predicates: list[Expr]


# -- FLWOR -------------------------------------------------------------------


@dataclass
class ForClause:
    var: str
    expr: Expr
    position_var: Optional[str] = None


@dataclass
class LetClause:
    var: str
    expr: Expr


@dataclass
class WhereClause:
    expr: Expr


@dataclass
class OrderSpec:
    expr: Expr
    descending: bool = False
    empty_greatest: bool = False


@dataclass
class OrderByClause:
    specs: list[OrderSpec]


Clause = Union[ForClause, LetClause, WhereClause, OrderByClause]


@dataclass
class FLWORExpr(Expr):
    clauses: list[Clause]
    return_expr: Expr


@dataclass
class QuantifiedExpr(Expr):
    quantifier: str  # 'some' | 'every'
    bindings: list[tuple[str, Expr]]
    satisfies: Expr


@dataclass
class TypeswitchCase:
    variable: Optional[str]
    sequence_type: "SequenceType"
    body: Expr


@dataclass
class TypeswitchExpr(Expr):
    """``typeswitch(e) case ... default ... return`` — dispatch on the
    dynamic type, the standard tool for schema-flexible data."""

    operand: Expr
    cases: list[TypeswitchCase]
    default_variable: Optional[str]
    default_body: Expr


# -- constructors -------------------------------------------------------------


@dataclass
class AttributeValueTemplate:
    """Attribute value made of literal text and ``{expr}`` parts."""

    parts: list[Union[str, Expr]]


@dataclass
class DirectElementConstructor(Expr):
    name: str                      # lexical QName, resolved at eval time
    namespace_declarations: dict[str, str]
    attributes: list[tuple[str, AttributeValueTemplate]]
    content: list[Union[str, Expr, "DirectElementConstructor"]]


@dataclass
class ComputedElementConstructor(Expr):
    name: Union[str, Expr]         # lexical QName or name expression
    content: Optional[Expr]


@dataclass
class ComputedAttributeConstructor(Expr):
    name: Union[str, Expr]
    content: Optional[Expr]


@dataclass
class ComputedTextConstructor(Expr):
    content: Expr


@dataclass
class ComputedDocumentConstructor(Expr):
    content: Expr


# -- module -------------------------------------------------------------------


@dataclass
class UserFunction:
    """A ``declare function`` definition from the prolog."""

    name: QName
    params: list[tuple[str, Optional[SequenceType]]]
    return_type: Optional[SequenceType]
    body: Expr

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class Prolog:
    namespaces: dict[str, str] = field(default_factory=dict)
    default_element_namespace: str = ""
    construction_mode: str = "strip"  # 'strip' | 'preserve'
    #: (uri, local, arity) -> UserFunction
    functions: dict[tuple[str, str, int], "UserFunction"] = field(
        default_factory=dict)


@dataclass
class Module:
    prolog: Prolog
    body: Expr


def walk(expr) -> "list[object]":
    """All AST objects reachable from ``expr`` (pre-order), including
    clauses and steps — the traversal the analyzers build on."""
    found: list[object] = []
    _walk_into(expr, found)
    return found


def _walk_into(obj, found: list[object]) -> None:
    if obj is None or isinstance(obj, (str, bytes, int, float, bool,
                                       AtomicValue, QName, NameTest,
                                       KindTest, SequenceType)):
        return
    if isinstance(obj, (list, tuple)):
        for element in obj:
            _walk_into(element, found)
        return
    if isinstance(obj, dict):
        return
    found.append(obj)
    for attribute in getattr(obj, "__dataclass_fields__", {}):
        _walk_into(getattr(obj, attribute), found)
