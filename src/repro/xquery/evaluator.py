"""Tree-walking XQuery evaluator.

Implements the dynamic semantics the paper's pitfalls hinge on:

* path steps over the XDM axes with document-order dedup;
* the leading-``/`` ``fn:root(.) treat as document-node()`` expansion
  (raises err:XPDY0050 under constructed elements — Query 25);
* existential general comparisons vs singleton value comparisons;
* FLWOR with for/let tuple streams — let preserves empty sequences,
  where discards them (Section 3.4);
* element construction with fresh node identities, untyped annotations,
  space-joined atomics and duplicate-attribute errors (Section 3.6).
"""

from __future__ import annotations

import functools

from ..errors import XQueryDynamicError, XQueryStaticError, XQueryTypeError
from ..obs.metrics import METRICS
from ..xdm import atomic
from ..xdm.atomic import AtomicValue
from ..xdm.compare import general_compare, node_compare, value_compare
from ..xdm.nodes import (AttributeNode, DocumentNode, ElementNode, Node,
                         TextNode, copy_node)
from ..xdm.qname import QName
from ..xdm.sequence import (Item, atomize, document_order,
                            effective_boolean_value, singleton)
from . import ast
from .context import DynamicContext
from .functions import lookup_function
from .guard import active_guard

__all__ = ["evaluate", "evaluate_module", "Evaluator"]

#: Axes whose output from a *single* context node is already in
#: document order with no duplicates — the final dedup/re-sort pass is
#: skipped for them (the streaming fast path of the path pipeline).
_SORTED_SINGLE_AXES = frozenset({
    "self", "child", "attribute", "descendant", "descendant-or-self",
    "following-sibling", "following",
})


def evaluate(source: str, database=None,
             variables: dict[str, list[Item]] | None = None,
             stats=None) -> list[Item]:
    """Parse and evaluate an XQuery string; returns the result sequence.

    Compilation goes through the shared LRU compiled-query cache, so
    repeated evaluations of the same text skip the parser entirely.
    """
    from ..core.querycache import compile_query
    module = compile_query(source).module
    return evaluate_module(module, database=database, variables=variables,
                           stats=stats)


def evaluate_module(module: ast.Module, database=None,
                    variables: dict[str, list[Item]] | None = None,
                    context_item: Item | None = None,
                    stats=None) -> list[Item]:
    ctx = DynamicContext(module.prolog, variables=dict(variables or {}),
                         database=database, stats=stats)
    if context_item is not None:
        ctx = ctx.with_focus(context_item, 1, 1)
    return Evaluator(module.prolog).evaluate(module.body, ctx)


class Evaluator:
    """Evaluates AST expressions against a dynamic context."""

    def __init__(self, prolog: ast.Prolog):
        self.prolog = prolog

    # ------------------------------------------------------------------

    def evaluate(self, expr: ast.Expr, ctx: DynamicContext) -> list[Item]:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise XQueryDynamicError(
                f"no evaluator for {type(expr).__name__}")
        return method(expr, ctx)

    def boolean_value(self, expr: ast.Expr, ctx: DynamicContext) -> bool:
        return effective_boolean_value(self.evaluate(expr, ctx))

    # -- primaries -----------------------------------------------------

    def _eval_Literal(self, expr: ast.Literal, ctx) -> list[Item]:
        return [expr.value]

    def _eval_VarRef(self, expr: ast.VarRef, ctx: DynamicContext):
        return list(ctx.lookup(expr.name))

    def _eval_ContextItem(self, expr, ctx: DynamicContext) -> list[Item]:
        return [ctx.require_context_item()]

    def _eval_SequenceExpr(self, expr: ast.SequenceExpr, ctx) -> list[Item]:
        result: list[Item] = []
        for item_expr in expr.items:
            result.extend(self.evaluate(item_expr, ctx))
        return result

    def _eval_RangeExpr(self, expr: ast.RangeExpr, ctx) -> list[Item]:
        start = self._integer_operand(expr.start, ctx, "range start")
        end = self._integer_operand(expr.end, ctx, "range end")
        if start is None or end is None:
            return []
        return [atomic.integer(value) for value in range(start, end + 1)]

    def _integer_operand(self, expr, ctx, what: str) -> int | None:
        values = atomize(self.evaluate(expr, ctx))
        if not values:
            return None
        value = singleton(values, what)
        if value.is_untyped:
            value = atomic.cast(value, atomic.T_DOUBLE)
        if not value.is_numeric:
            raise XQueryTypeError(f"{what} must be numeric")
        return int(value.value)

    # -- logic -----------------------------------------------------------

    def _eval_OrExpr(self, expr: ast.OrExpr, ctx) -> list[Item]:
        result = (self.boolean_value(expr.left, ctx) or
                  self.boolean_value(expr.right, ctx))
        return [atomic.boolean(result)]

    def _eval_AndExpr(self, expr: ast.AndExpr, ctx) -> list[Item]:
        result = (self.boolean_value(expr.left, ctx) and
                  self.boolean_value(expr.right, ctx))
        return [atomic.boolean(result)]

    def _eval_IfExpr(self, expr: ast.IfExpr, ctx) -> list[Item]:
        if self.boolean_value(expr.condition, ctx):
            return self.evaluate(expr.then_branch, ctx)
        return self.evaluate(expr.else_branch, ctx)

    def _eval_TypeswitchExpr(self, expr: ast.TypeswitchExpr, ctx):
        operand = self.evaluate(expr.operand, ctx)
        for case in expr.cases:
            if _matches_sequence_type(operand, case.sequence_type):
                case_ctx = (ctx.bind(case.variable, operand)
                            if case.variable else ctx)
                return self.evaluate(case.body, case_ctx)
        default_ctx = (ctx.bind(expr.default_variable, operand)
                       if expr.default_variable else ctx)
        return self.evaluate(expr.default_body, default_ctx)

    def _eval_QuantifiedExpr(self, expr: ast.QuantifiedExpr, ctx):
        result = self._quantify(expr, 0, ctx)
        return [atomic.boolean(result)]

    def _quantify(self, expr: ast.QuantifiedExpr, index: int,
                  ctx: DynamicContext) -> bool:
        if index == len(expr.bindings):
            return self.boolean_value(expr.satisfies, ctx)
        var, binding_expr = expr.bindings[index]
        items = self.evaluate(binding_expr, ctx)
        if expr.quantifier == "some":
            return any(self._quantify(expr, index + 1, ctx.bind(var, [item]))
                       for item in items)
        return all(self._quantify(expr, index + 1, ctx.bind(var, [item]))
                   for item in items)

    # -- comparisons -------------------------------------------------------

    def _eval_GeneralComparison(self, expr: ast.GeneralComparison, ctx):
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        return [atomic.boolean(general_compare(expr.op, left, right))]

    def _eval_ValueComparison(self, expr: ast.ValueComparison, ctx):
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        return value_compare(expr.op, left, right)

    def _eval_NodeComparison(self, expr: ast.NodeComparison, ctx):
        left = self.evaluate(expr.left, ctx)
        right = self.evaluate(expr.right, ctx)
        return node_compare(expr.op, left, right)

    # -- arithmetic ---------------------------------------------------------

    def _eval_Arithmetic(self, expr: ast.Arithmetic, ctx) -> list[Item]:
        left = self._numeric_operand(expr.left, ctx)
        right = self._numeric_operand(expr.right, ctx)
        if left is None or right is None:
            return []
        return [_arithmetic(expr.op, left, right)]

    def _numeric_operand(self, expr, ctx) -> AtomicValue | None:
        values = atomize(self.evaluate(expr, ctx))
        if not values:
            return None
        value = singleton(values, "arithmetic operand")
        if value.is_untyped:
            value = atomic.cast(value, atomic.T_DOUBLE)
        if not value.is_numeric:
            raise XQueryTypeError(
                f"arithmetic on {value.type_name}", code="XPTY0004")
        return value

    def _eval_UnaryMinus(self, expr: ast.UnaryMinus, ctx) -> list[Item]:
        value = self._numeric_operand(expr.operand, ctx)
        if value is None:
            return []
        if expr.negate:
            return [AtomicValue(value.type_name, -value.value)]
        return [value]

    # -- set operations -------------------------------------------------

    def _eval_SetExpr(self, expr: ast.SetExpr, ctx) -> list[Item]:
        left = self._node_sequence(expr.left, ctx, expr.op)
        right = self._node_sequence(expr.right, ctx, expr.op)
        right_ids = {node.node_id for node in right}
        if expr.op == "union":
            return document_order(left + right)
        if expr.op == "intersect":
            return document_order(
                [node for node in left if node.node_id in right_ids])
        if expr.op == "except":
            return document_order(
                [node for node in left if node.node_id not in right_ids])
        raise XQueryDynamicError(f"unknown set operation {expr.op}")

    def _node_sequence(self, expr, ctx, operation: str) -> list[Node]:
        items = self.evaluate(expr, ctx)
        # sa: ok(SA406: isinstance check only; self.evaluate ticked)
        for item in items:
            if not isinstance(item, Node):
                raise XQueryTypeError(
                    f"{operation} operand must be nodes", code="XPTY0004")
        return items  # type: ignore[return-value]

    # -- casts & types -----------------------------------------------------

    def _eval_CastExpr(self, expr: ast.CastExpr, ctx) -> list[Item]:
        values = atomize(self.evaluate(expr.operand, ctx))
        if not values:
            if expr.allow_empty:
                return []
            raise XQueryTypeError("cast of empty sequence", code="XPTY0004")
        value = singleton(values, "cast")
        return [atomic.cast(value, expr.type_name)]

    def _eval_CastableExpr(self, expr: ast.CastableExpr, ctx) -> list[Item]:
        values = atomize(self.evaluate(expr.operand, ctx))
        if not values:
            return [atomic.boolean(expr.allow_empty)]
        if len(values) > 1:
            return [atomic.boolean(False)]
        return [atomic.boolean(atomic.castable(values[0], expr.type_name))]

    def _eval_InstanceOfExpr(self, expr: ast.InstanceOfExpr, ctx):
        items = self.evaluate(expr.operand, ctx)
        return [atomic.boolean(
            _matches_sequence_type(items, expr.sequence_type))]

    def _eval_TreatExpr(self, expr: ast.TreatExpr, ctx) -> list[Item]:
        items = self.evaluate(expr.operand, ctx)
        if not _matches_sequence_type(items, expr.sequence_type):
            raise XQueryDynamicError(
                f"treat as {expr.sequence_type.item_type}"
                f"{expr.sequence_type.occurrence} failed", code="XPDY0050")
        return items

    # -- function calls ------------------------------------------------------

    def _eval_FunctionCall(self, expr: ast.FunctionCall, ctx) -> list[Item]:
        user_function = self.prolog.functions.get(
            (expr.name.uri, expr.name.local, len(expr.args)))
        if user_function is not None:
            return self._call_user_function(user_function, expr, ctx)
        definition = lookup_function(expr.name.uri, expr.name.local)
        if definition is None:
            raise XQueryStaticError(
                f"unknown function {expr.name}", code="XPST0017")
        if not definition.min_args <= len(expr.args) <= definition.max_args:
            raise XQueryStaticError(
                f"wrong number of arguments for {expr.name}: "
                f"{len(expr.args)}", code="XPST0017")
        args = [self.evaluate(argument, ctx) for argument in expr.args]
        return definition.impl(ctx, args)

    def _call_user_function(self, function: ast.UserFunction,
                            expr: ast.FunctionCall,
                            ctx: DynamicContext) -> list[Item]:
        """Invoke a prolog-declared function.

        The body sees only the parameter bindings (no outer variables,
        no focus), per the XQuery scoping rules.
        """
        from .context import DynamicContext as _Context

        variables: dict[str, list[Item]] = {}
        for (param_name, param_type), argument in zip(function.params,
                                                      expr.args):
            value = self.evaluate(argument, ctx)
            if param_type is not None and \
                    not _matches_sequence_type(value, param_type):
                raise XQueryTypeError(
                    f"argument ${param_name} of {function.name} does "
                    f"not match {param_type.item_type}"
                    f"{param_type.occurrence}", code="XPTY0004")
            variables[param_name] = value
        body_ctx = _Context(ctx.prolog, variables=variables,
                            database=ctx.database, stats=ctx.stats)
        try:
            result = self.evaluate(function.body, body_ctx)
        except RecursionError:
            raise XQueryDynamicError(
                f"recursion limit exceeded in {function.name}",
                code="XQDY0002") from None
        if function.return_type is not None and \
                not _matches_sequence_type(result, function.return_type):
            raise XQueryTypeError(
                f"result of {function.name} does not match declared "
                f"return type", code="XPTY0004")
        return result

    # -- FLWOR ---------------------------------------------------------------

    def _eval_FLWORExpr(self, expr: ast.FLWORExpr, ctx) -> list[Item]:
        # The tuple stream is where runaway queries burn their time, so
        # the per-query guard (deadlines, row budgets — see
        # :mod:`repro.xquery.guard`) is consulted here: every for-clause
        # binding ticks the deadline, and the materialized return
        # sequence is checked against the row limit as it grows.
        guard = active_guard()
        contexts = [ctx]
        order_by: ast.OrderByClause | None = None
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                next_contexts = []
                for tuple_ctx in contexts:
                    items = self.evaluate(clause.expr, tuple_ctx)
                    if guard is not None:
                        guard.tick(len(items) + 1)
                    for position, item in enumerate(items, start=1):
                        bound = tuple_ctx.bind(clause.var, [item])
                        if clause.position_var:
                            bound = bound.bind(clause.position_var,
                                               [atomic.integer(position)])
                        next_contexts.append(bound)
                contexts = next_contexts
            elif isinstance(clause, ast.LetClause):
                contexts = [tuple_ctx.bind(clause.var,
                                           self.evaluate(clause.expr,
                                                         tuple_ctx))
                            for tuple_ctx in contexts]
            elif isinstance(clause, ast.WhereClause):
                contexts = [tuple_ctx for tuple_ctx in contexts
                            if self.boolean_value(clause.expr, tuple_ctx)]
            elif isinstance(clause, ast.OrderByClause):
                order_by = clause
        if order_by is not None:
            contexts = self._order_tuples(order_by, contexts)
        result: list[Item] = []
        for tuple_ctx in contexts:
            result.extend(self.evaluate(expr.return_expr, tuple_ctx))
            if guard is not None:
                guard.tick()
                guard.check_items(len(result))
        return result

    def _order_tuples(self, clause: ast.OrderByClause,
                      contexts: list[DynamicContext]
                      ) -> list[DynamicContext]:
        keyed: list[tuple[list[AtomicValue | None], DynamicContext]] = []
        for tuple_ctx in contexts:
            keys: list[AtomicValue | None] = []
            for spec in clause.specs:
                values = atomize(self.evaluate(spec.expr, tuple_ctx))
                if len(values) > 1:
                    raise XQueryTypeError("order by key must be a "
                                          "singleton", code="XPTY0004")
                keys.append(values[0] if values else None)
            keyed.append((keys, tuple_ctx))

        def compare(left, right) -> int:
            for index, spec in enumerate(clause.specs):
                left_key, right_key = left[0][index], right[0][index]
                result = _compare_order_keys(left_key, right_key,
                                             spec.empty_greatest)
                if result:
                    return -result if spec.descending else result
            return 0

        keyed.sort(key=functools.cmp_to_key(compare))
        return [tuple_ctx for _keys, tuple_ctx in keyed]

    # -- paths ------------------------------------------------------------

    def _eval_PathExpr(self, expr: ast.PathExpr, ctx) -> list[Item]:
        if expr.absolute:
            root = self._context_root(ctx)
            steps: list[ast.Step] = list(expr.steps)
            if expr.absolute == "//":
                # Keep the expansion symbolic so the path-summary fast
                # path can fold it into a gap step instead of eagerly
                # materializing every subtree node.
                steps.insert(0, ast.AxisStep("descendant-or-self",
                                             ast.KindTest("node")))
            return self._apply_remaining(steps, [root], ctx)
        first = expr.steps[0]
        if isinstance(first, ast.ExprStep):
            items = self._apply_expr_step(first, None, ctx)
            return self._apply_remaining(expr.steps[1:], items, ctx)
        items = [ctx.require_context_item()]
        return self._apply_remaining(expr.steps, items, ctx)

    def _context_root(self, ctx: DynamicContext) -> Node:
        item = ctx.require_context_item()
        if not isinstance(item, Node):
            raise XQueryTypeError(
                "leading '/' requires a node context item", code="XPTY0020")
        root = item.root
        if root.kind != "document":
            # fn:root(.) treat as document-node() — the Query 25 error.
            raise XQueryDynamicError(
                "leading '/' in a tree whose root is not a document node",
                code="XPDY0050")
        return root

    def _apply_remaining(self, steps, items: list[Item], ctx) -> list[Item]:
        # Cheap pre-check: the summary fast path only applies when the
        # context is document nodes (relative paths inside predicates hit
        # this with element contexts thousands of times per query).
        if steps and items and isinstance(items[0], DocumentNode):
            steps, items = self._try_summary_lookup(steps, items, ctx)
        for step in steps:
            if isinstance(step, ast.AxisStep):
                items = self._apply_axis_step(step, items, ctx)
            else:
                items = self._apply_expr_step(step, items, ctx)
        return items

    def _try_summary_lookup(self, steps, items: list[Item], ctx
                            ) -> tuple[list, list[Item]]:
        """Answer a leading predicate-free step chain from path summaries.

        When every context item is an ingested document (it carries a
        valid path summary) and a prefix of the steps compiles to a
        linear path pattern, the matching nodes come straight from the
        summary's per-path node lists — no subtree materialization, no
        re-sort.  Returns the (possibly shortened) remaining steps and
        the new context items; on any doubt it returns the inputs
        unchanged and the generic pipeline runs.
        """
        from ..storage.pathsummary import get_summary
        summaries = []
        # sa: ok(SA406: one summary lookup per document root; bails early)
        for item in items:
            if not isinstance(item, DocumentNode):
                return steps, items
            summary = get_summary(item)
            if summary is None:
                return steps, items
            summaries.append(summary)
        pattern_steps, consumed, predicates = _compile_summary_prefix(steps)
        if not consumed:
            return steps, items
        from ..core.patterns import LinearPattern
        from ..storage.pathsummary import PatternMatcher
        matcher = PatternMatcher(LinearPattern(tuple(pattern_steps)))
        nodes: list[Node] = []
        for summary in summaries:
            nodes.extend(summary.nodes_for(matcher))
        if ctx.stats is not None:
            ctx.stats.summary_lookups += 1
        if METRICS.enabled:
            METRICS.inc("pathsummary.hits")
        nodes = document_order(nodes)
        if predicates:
            nodes = self._filter_predicates(nodes, predicates, ctx)
        return steps[consumed:], nodes

    def _apply_axis_step(self, step: ast.AxisStep, items: list[Item],
                         ctx) -> list[Item]:
        guard = active_guard()
        if guard is not None:
            # Axis scans over wide context sequences are the other
            # place a deadline must be able to interrupt.
            guard.tick(len(items) + 1)
        single = len(items) == 1
        axis = step.axis
        test = step.test
        # The two hottest shapes, inlined: a name test on the child or
        # attribute axis needs no per-candidate dispatch through
        # _test_matches.
        name_test = (test if isinstance(test, ast.NameTest) else None)
        collected: list[Node] = []
        for item in items:
            if not isinstance(item, Node):
                raise XQueryTypeError(
                    "axis step applied to an atomic value", code="XPTY0020")
            if name_test is not None and axis == "child":
                matched = [node for node in item.children
                           if node.kind == "element"
                           and name_test.matches(node.name)]
            elif name_test is not None and axis == "attribute":
                matched = [node for node in item.attributes
                           if name_test.matches(node.name)]
            else:
                matched = [node for node in _axis_nodes(item, axis)
                           if _test_matches(test, node, axis)]
            if step.predicates:
                matched = self._filter_predicates(matched, step.predicates,
                                                  ctx)
            collected.extend(matched)
        if single and axis in _SORTED_SINGLE_AXES:
            # One context node + an order-preserving axis: the result is
            # already sorted and duplicate-free.
            return collected
        return document_order(collected)

    def _apply_expr_step(self, step: ast.ExprStep,
                         items: list[Item] | None, ctx) -> list[Item]:
        results: list[Item] = []
        if items is None:
            evaluated = self.evaluate(step.expr, ctx)
            evaluated = self._filter_predicates(evaluated, step.predicates,
                                                ctx)
            results.extend(evaluated)
        else:
            size = len(items)
            guard = active_guard()
            if guard is not None:
                # Expression steps re-evaluate per context item; a
                # deadline must be able to interrupt wide sequences.
                guard.tick(size + 1)
            for position, item in enumerate(items, start=1):
                focused = ctx.with_focus(item, position, size)
                evaluated = self.evaluate(step.expr, focused)
                evaluated = self._filter_predicates(
                    evaluated, step.predicates, focused)
                results.extend(evaluated)
        node_count = sum(1 for item in results if isinstance(item, Node))
        if node_count == len(results):
            return document_order(results)  # type: ignore[arg-type]
        if node_count:
            raise XQueryTypeError(
                "path step mixes nodes and atomic values", code="XPTY0018")
        return results

    def _filter_predicates(self, items, predicates: list[ast.Expr],
                           ctx) -> list:
        guard = active_guard()
        for predicate in predicates:
            kept = []
            size = len(items)
            if guard is not None:
                # Each predicate pass evaluates an expression per item.
                guard.tick(size + 1)
            for position, item in enumerate(items, start=1):
                focused = ctx.with_focus(item, position, size)
                values = self.evaluate(predicate, focused)
                if _predicate_truth(values, position):
                    kept.append(item)
            items = kept
        return items

    def _eval_FilterExpr(self, expr: ast.FilterExpr, ctx) -> list[Item]:
        items = self.evaluate(expr.primary, ctx)
        return self._filter_predicates(items, expr.predicates, ctx)

    # -- constructors -------------------------------------------------------

    def _eval_DirectElementConstructor(
            self, expr: ast.DirectElementConstructor, ctx) -> list[Item]:
        scope = dict(self.prolog.namespaces)
        default_ns = self.prolog.default_element_namespace
        for prefix, uri in expr.namespace_declarations.items():
            if prefix == "":
                default_ns = uri
            else:
                scope[prefix] = uri

        name = _resolve_constructor_name(expr.name, scope, default_ns)

        attributes: list[AttributeNode] = []
        seen: set[QName] = set()
        for attribute_name, template in expr.attributes:
            qname = _resolve_constructor_name(attribute_name, scope,
                                              default_ns="")
            if qname in seen:
                raise XQueryDynamicError(
                    f"duplicate attribute {attribute_name!r}",
                    code="XQDY0025")
            seen.add(qname)
            value = self._template_value(template, ctx)
            attributes.append(AttributeNode(qname, value))

        content_items: list[Item] = []
        for piece in expr.content:
            if isinstance(piece, str):
                content_items.append(TextNode(piece))
            elif isinstance(piece, ast.DirectElementConstructor):
                content_items.extend(
                    self._eval_DirectElementConstructor(piece, ctx))
            else:
                content_items.extend(self.evaluate(piece, ctx))

        element = self._build_element(name, attributes, content_items,
                                      scope)
        return [element]

    def _template_value(self, template: ast.AttributeValueTemplate,
                        ctx) -> str:
        parts: list[str] = []
        for part in template.parts:
            if isinstance(part, str):
                parts.append(part)
            else:
                values = atomize(self.evaluate(part, ctx))
                parts.append(" ".join(value.string_value()
                                      for value in values))
        return "".join(parts)

    def _build_element(self, name: QName,
                       attributes: list[AttributeNode],
                       content_items: list[Item],
                       scope: dict[str, str]) -> ElementNode:
        """Assemble a new element per the §3.6 construction rules."""
        preserve = self.prolog.construction_mode == "preserve"
        element = ElementNode(name, in_scope_namespaces=scope)
        seen = {attribute.name for attribute in attributes}
        for attribute in attributes:
            element.add_attribute(attribute)

        children: list[Node] = []
        pending_atomics: list[AtomicValue] = []
        saw_non_attribute_content = False

        def flush_atomics() -> None:
            if pending_atomics:
                text = " ".join(value.string_value()
                                for value in pending_atomics)
                children.append(TextNode(text))
                pending_atomics.clear()

        for item in content_items:
            if isinstance(item, AtomicValue):
                saw_non_attribute_content = True
                pending_atomics.append(item)
                continue
            if item.kind == "attribute":
                if saw_non_attribute_content or children or pending_atomics:
                    raise XQueryTypeError(
                        "attribute node after non-attribute content",
                        code="XQTY0024")
                copied_attribute = copy_node(item, preserve)
                assert isinstance(copied_attribute, AttributeNode)
                if copied_attribute.name in seen:
                    raise XQueryDynamicError(
                        f"duplicate attribute {copied_attribute.name}",
                        code="XQDY0025")
                seen.add(copied_attribute.name)
                element.add_attribute(copied_attribute)
                continue
            flush_atomics()
            saw_non_attribute_content = True
            if item.kind == "document":
                for child in item.children:
                    children.append(copy_node(child, preserve))
            elif item.kind == "text":
                if item.string_value():
                    children.append(TextNode(item.string_value()))
            else:
                children.append(copy_node(item, preserve))
        flush_atomics()

        merged: list[Node] = []
        for child in children:
            if (merged and child.kind == "text" and
                    merged[-1].kind == "text"):
                merged[-1] = TextNode(merged[-1].string_value() +
                                      child.string_value())
            else:
                merged.append(child)
        for child in merged:
            if child.kind == "text" and not child.string_value():
                continue
            element.append_child(child)
        return element

    def _eval_ComputedElementConstructor(
            self, expr: ast.ComputedElementConstructor, ctx) -> list[Item]:
        scope = dict(self.prolog.namespaces)
        if isinstance(expr.name, str):
            name = _resolve_constructor_name(
                expr.name, scope, self.prolog.default_element_namespace)
        else:
            lexical = singleton(atomize(self.evaluate(expr.name, ctx)),
                                "element name").string_value()
            name = _resolve_constructor_name(
                lexical, scope, self.prolog.default_element_namespace)
        content = (self.evaluate(expr.content, ctx)
                   if expr.content is not None else [])
        return [self._build_element(name, [], content, scope)]

    def _eval_ComputedAttributeConstructor(
            self, expr: ast.ComputedAttributeConstructor, ctx) -> list[Item]:
        scope = dict(self.prolog.namespaces)
        if isinstance(expr.name, str):
            name = _resolve_constructor_name(expr.name, scope, "")
        else:
            lexical = singleton(atomize(self.evaluate(expr.name, ctx)),
                                "attribute name").string_value()
            name = _resolve_constructor_name(lexical, scope, "")
        values = (atomize(self.evaluate(expr.content, ctx))
                  if expr.content is not None else [])
        text = " ".join(value.string_value() for value in values)
        return [AttributeNode(name, text)]

    def _eval_ComputedTextConstructor(
            self, expr: ast.ComputedTextConstructor, ctx) -> list[Item]:
        values = atomize(self.evaluate(expr.content, ctx))
        if not values:
            return []
        return [TextNode(" ".join(value.string_value()
                                  for value in values))]

    def _eval_ComputedDocumentConstructor(
            self, expr: ast.ComputedDocumentConstructor, ctx) -> list[Item]:
        preserve = self.prolog.construction_mode == "preserve"
        document = DocumentNode()
        for item in self.evaluate(expr.content, ctx):
            if isinstance(item, AtomicValue):
                document.append_child(TextNode(item.string_value()))
            elif item.kind == "document":
                for child in item.children:
                    document.append_child(copy_node(child, preserve))
            elif item.kind == "attribute":
                raise XQueryTypeError(
                    "attribute node in document constructor",
                    code="XPTY0004")
            else:
                document.append_child(copy_node(item, preserve))
        return [document]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _resolve_constructor_name(lexical: str, scope: dict[str, str],
                              default_ns: str) -> QName:
    if ":" in lexical:
        prefix, local = lexical.split(":", 1)
        uri = scope.get(prefix)
        if uri is None:
            raise XQueryStaticError(
                f"undeclared namespace prefix {prefix!r}", code="XPST0081")
        return QName(uri, local, prefix)
    return QName(default_ns, lexical)


def _predicate_truth(values: list[Item], position: int) -> bool:
    if (len(values) == 1 and isinstance(values[0], AtomicValue)
            and values[0].is_numeric):
        return float(values[0].value) == position
    return effective_boolean_value(values)


#: Predicate expression types that always produce a boolean (or empty)
#: result — they can never be mistaken for a positional predicate.
_BOOLEAN_PREDICATE_TYPES = (ast.GeneralComparison, ast.ValueComparison,
                            ast.NodeComparison, ast.AndExpr, ast.OrExpr,
                            ast.QuantifiedExpr)


def _non_positional(predicate: ast.Expr) -> bool:
    """Can ``predicate`` be applied to a merged node list instead of
    per-context?  Requires a provably boolean result (no numeric
    position shorthand) and no position()/last() anywhere inside."""
    if not isinstance(predicate, _BOOLEAN_PREDICATE_TYPES):
        return False
    for obj in ast.walk(predicate):
        if (isinstance(obj, ast.FunctionCall)
                and obj.name.local in ("position", "last")):
            return False
    return True


def _summary_step_test(step: ast.AxisStep):
    """Translate an axis step's node test into a pattern StepTest, or
    None when it has no summary-path equivalent."""
    from ..core.patterns import StepTest
    test = step.test
    on_attribute = step.axis == "attribute"
    if isinstance(test, ast.NameTest):
        kind = "attribute" if on_attribute else "element"
        return StepTest(kind, uri=test.uri, local=test.local)
    if test.kind == "node":
        return StepTest("attribute") if on_attribute else StepTest("node")
    if on_attribute:
        return None  # attribute::text() etc. select nothing
    if test.kind in ("text", "comment"):
        return StepTest(test.kind)
    if test.kind == "processing-instruction":
        return StepTest("processing-instruction", pi_target=test.target)
    return None  # element()/attribute()/document-node(): generic path


def _compile_summary_prefix(steps) -> tuple[list, int, list]:
    """Compile a leading run of axis steps into linear-pattern steps.

    Returns (pattern_steps, consumed_step_count, final_predicates).
    ``descendant-or-self::node()`` folds into a gap on the next step;
    predicates are only consumed on the *last* step of the prefix and
    only when provably non-positional (their filter then commutes with
    the per-document merge).
    """
    from ..core.patterns import PatternStep
    pattern_steps: list = []
    consumed = 0
    gap = False
    predicates: list = []
    for step in steps:
        if not isinstance(step, ast.AxisStep):
            break
        if (step.axis == "descendant-or-self"
                and isinstance(step.test, ast.KindTest)
                and step.test.kind == "node" and not step.predicates):
            gap = True
            consumed += 1
            continue
        if step.axis not in ("child", "attribute", "descendant"):
            break
        test = _summary_step_test(step)
        if test is None:
            break
        if step.predicates and \
                not all(_non_positional(predicate)
                        for predicate in step.predicates):
            break
        pattern_steps.append(
            PatternStep(test, gap=gap or step.axis == "descendant"))
        gap = False
        consumed += 1
        if step.predicates:
            predicates = step.predicates
            break
    if gap:
        # A trailing descendant-or-self::node() selects nodes itself;
        # leave it (and everything after) to the generic pipeline.
        consumed -= 1
    if not pattern_steps:
        return [], 0, []
    return pattern_steps, consumed, predicates


def _axis_nodes(node: Node, axis: str) -> list[Node]:
    if axis == "child":
        return list(node.children)
    if axis == "attribute":
        return list(node.attributes)
    if axis == "self":
        return [node]
    if axis == "descendant-or-self":
        # Columnar fast path: a subtree is one contiguous slot range of
        # the accelerator table, so the recursive object walk becomes a
        # single range scan (see repro.storage.columnar).
        store = _column_store_for(node)
        if store is not None:
            return store.descendants_or_self(node)
        return list(node.descendants_or_self())
    if axis == "descendant":
        store = _column_store_for(node)
        if store is not None:
            return store.descendants_or_self(node)[1:]
        result = list(node.descendants_or_self())
        return result[1:]
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "ancestor":
        return list(node.ancestors())
    if axis == "ancestor-or-self":
        return [node] + list(node.ancestors())
    if axis == "following-sibling":
        if node.parent is None or node.kind == "attribute":
            return []
        siblings = node.parent.children
        index = next(i for i, sibling in enumerate(siblings)
                     if sibling.is_same_node(node))
        return siblings[index + 1:]
    if axis == "preceding-sibling":
        if node.parent is None or node.kind == "attribute":
            return []
        siblings = node.parent.children
        index = next(i for i, sibling in enumerate(siblings)
                     if sibling.is_same_node(node))
        return list(reversed(siblings[:index]))
    if axis in ("following", "preceding"):
        # Interval encoding: x follows c iff pre(x) > pre(c) and
        # post(x) > post(c); x precedes c iff both are smaller.  For an
        # attribute the spec anchors both axes at its parent element
        # (following = ancestor-or-self/following-sibling/…).
        anchor = node.parent if node.kind == "attribute" else node
        if anchor is None:
            return []
        _tree, pre, post, _level = anchor.structure()
        store = _column_store_for(anchor)
        if store is not None:
            if axis == "following":
                return store.following(anchor)
            return list(reversed(store.preceding(anchor)))
        if axis == "following":
            return [candidate for candidate
                    in anchor.root.descendants_or_self()
                    if candidate._order[1] > pre
                    and candidate._post > post]
        return list(reversed(
            [candidate for candidate in anchor.root.descendants_or_self()
             if candidate._order[1] < pre and candidate._post < post]))
    raise XQueryDynamicError(f"unsupported axis {axis!r}")


def _column_store_for(node: Node):
    """Resolve the columnar accelerator table behind ``node`` (None for
    constructed/mutated trees, which keep the object-walk paths)."""
    global _store_for_node
    if _store_for_node is None:
        from ..storage.columnar import store_for_node
        _store_for_node = store_for_node
    return _store_for_node(node)


_store_for_node = None


def _test_matches(test: ast.NodeTest, node: Node, axis: str) -> bool:
    if isinstance(test, ast.KindTest):
        return test.matches_node(node)
    # NameTest: principal node kind is attribute on the attribute axis,
    # element everywhere else (the §3.9 rule that //node() skips
    # attributes).
    principal = "attribute" if axis == "attribute" else "element"
    if node.kind != principal:
        return False
    return test.matches(node.name)


def _compare_order_keys(left: AtomicValue | None,
                        right: AtomicValue | None,
                        empty_greatest: bool) -> int:
    if left is None and right is None:
        return 0
    if left is None:
        return 1 if empty_greatest else -1
    if right is None:
        return -1 if empty_greatest else 1
    less = value_compare("lt", [left], [right])
    if less and less[0].value:
        return -1
    greater = value_compare("gt", [left], [right])
    if greater and greater[0].value:
        return 1
    return 0


def _arithmetic(op: str, left: AtomicValue,
                right: AtomicValue) -> AtomicValue:
    from decimal import Decimal

    promoted_left, promoted_right = atomic.promote_numeric_pair(left, right)
    a, b = promoted_left.value, promoted_right.value
    result_type = promoted_left.type_name
    try:
        if op == "+":
            return AtomicValue(result_type, a + b)
        if op == "-":
            return AtomicValue(result_type, a - b)
        if op == "*":
            return AtomicValue(result_type, a * b)
        if op == "div":
            if result_type in (atomic.T_INTEGER, atomic.T_LONG):
                return atomic.decimal(Decimal(a) / Decimal(b))
            return AtomicValue(result_type, a / b)
        if op == "idiv":
            quotient = a / b
            return atomic.integer(int(quotient))
        if op == "mod":
            if result_type == atomic.T_DOUBLE:
                return atomic.double(float(a) % float(b) if b else
                                     float("nan"))
            return AtomicValue(result_type, a % b)
    except ZeroDivisionError:
        raise XQueryDynamicError("division by zero",
                                 code="FOAR0001") from None
    raise XQueryDynamicError(f"unknown arithmetic operator {op!r}")


def _matches_sequence_type(items: list[Item],
                           sequence_type: ast.SequenceType) -> bool:
    occurrence = sequence_type.occurrence
    if not items:
        return occurrence in ("?", "*")
    if len(items) > 1 and occurrence not in ("*", "+"):
        return False
    return all(_matches_item_type(item, sequence_type.item_type)
               for item in items)


def _matches_item_type(item: Item, item_type: str) -> bool:
    if item_type == "item":
        return True
    kind_map = {"document-node": "document", "element": "element",
                "attribute": "attribute", "node": None, "text": "text",
                "comment": "comment",
                "processing-instruction": "processing-instruction"}
    if item_type in kind_map:
        if not isinstance(item, Node):
            return False
        expected = kind_map[item_type]
        return expected is None or item.kind == expected
    if isinstance(item, Node):
        return False
    return atomic.is_subtype(item.type_name, item_type)
