"""Recursive-descent XQuery parser.

Covers the XQuery 1.0 subset exercised by the paper's thirty queries
(see DESIGN.md §3) plus a few conveniences.  One deliberate DB2-ism is
kept: a function call may appear as a non-initial path step
(``$i/custid/xs:double(.)``, Query 4), which XPath 2.0 permits via
FilterExpr steps.

The parser owns a cursor into the source text and tokenizes lazily,
which lets direct element constructors drop out of token mode and scan
raw XML-ish syntax, recursing into expression parsing for every
``{...}`` enclosure.
"""

from __future__ import annotations

import functools

from ..errors import XQueryStaticError
from ..xdm import atomic
from ..xdm.qname import DEFAULT_PREFIXES, FN_NS, QName
from . import ast
from .lexer import Lexer, Token, _resolve_entity

_AXES = {
    "child", "descendant", "attribute", "self", "descendant-or-self",
    "parent", "ancestor", "ancestor-or-self", "following-sibling",
    "preceding-sibling", "following", "preceding",
}

_KIND_TESTS = {"node", "text", "comment", "processing-instruction",
               "document-node", "element", "attribute"}

#: Names that can never be parsed as a function call.
_RESERVED_FUNCTION_NAMES = _KIND_TESTS | {
    "if", "typeswitch", "item", "empty-sequence",
}

_VALUE_COMPARISONS = {"eq", "ne", "lt", "le", "gt", "ge"}
_GENERAL_COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
_NODE_COMPARISONS = {"is", "<<", ">>"}

#: Canonical atomic type spellings accepted in cast/castable/index DDL.
ATOMIC_TYPE_ALIASES = {
    "xs:string": atomic.T_STRING,
    "xs:double": atomic.T_DOUBLE,
    "xs:float": atomic.T_DOUBLE,
    "xs:decimal": atomic.T_DECIMAL,
    "xs:integer": atomic.T_INTEGER,
    "xs:int": atomic.T_INTEGER,
    "xs:long": atomic.T_LONG,
    "xs:boolean": atomic.T_BOOLEAN,
    "xs:date": atomic.T_DATE,
    "xs:dateTime": atomic.T_DATETIME,
    "xs:anyAtomicType": atomic.T_ANY_ATOMIC,
    "xdt:anyAtomicType": atomic.T_ANY_ATOMIC,
    "xs:untypedAtomic": atomic.T_UNTYPED,
    "xdt:untypedAtomic": atomic.T_UNTYPED,
}


@functools.lru_cache(maxsize=256)
def parse_xquery(source: str) -> ast.Module:
    """Parse an XQuery main module (prolog + body expression).

    Memoized: modules are never mutated after parsing (rewrites build
    fresh Module objects), so repeated queries share one parse.
    """
    parser = _Parser(source)
    module = parser.parse_module()
    return module


def parse_expression(source: str,
                     namespaces: dict[str, str] | None = None,
                     default_element_namespace: str = "") -> ast.Module:
    """Parse a bare expression (no prolog) with given namespace bindings.

    Used by the SQL/XML layer for XMLQUERY/XMLEXISTS/XMLTABLE arguments.
    """
    parser = _Parser(source)
    parser.prolog.namespaces.update(namespaces or {})
    parser.prolog.default_element_namespace = default_element_namespace
    body = parser.parse_expr()
    parser.expect_eof()
    return ast.Module(parser.prolog, body)


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.lexer = Lexer(source)
        self.pos = 0
        self._buffer: list[Token] = []
        self.prolog = ast.Prolog(namespaces=dict(DEFAULT_PREFIXES))

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        while len(self._buffer) <= offset:
            start = self._buffer[-1].end if self._buffer else self.pos
            self._buffer.append(self.lexer.next_token(start))
        return self._buffer[offset]

    def _advance(self) -> Token:
        token = self._peek()
        self._buffer.pop(0)
        self.pos = token.end
        return token

    def _reset_to(self, offset: int) -> None:
        """Drop lookahead and reposition the raw cursor (constructors)."""
        self._buffer.clear()
        self.pos = offset

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._advance()
        if not token.is_symbol(symbol):
            raise XQueryStaticError(
                f"expected {symbol!r}, got {token.value!r} "
                f"at offset {token.start}")
        return token

    def _expect_name(self, *names: str) -> Token:
        token = self._advance()
        if token.type != "name" or (names and token.value not in names):
            expected = " or ".join(repr(name) for name in names) or "a name"
            raise XQueryStaticError(
                f"expected {expected}, got {token.value!r} "
                f"at offset {token.start}")
        return token

    def expect_eof(self) -> None:
        token = self._peek()
        if token.type != "eof":
            raise XQueryStaticError(
                f"unexpected trailing input {token.value!r} "
                f"at offset {token.start}")

    # ------------------------------------------------------------------
    # QNames
    # ------------------------------------------------------------------

    def _parse_lexical_qname(self) -> str:
        first = self._expect_name()
        if (self._peek().is_symbol(":") and
                self._peek().start == first.end and
                self._peek(1).type == "name" and
                self._peek(1).start == self._peek().end):
            self._advance()
            local = self._advance()
            return f"{first.value}:{local.value}"
        return first.value

    def _resolve(self, lexical: str, default_ns: str = "") -> QName:
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            uri = self.prolog.namespaces.get(prefix)
            if uri is None:
                raise XQueryStaticError(
                    f"undeclared namespace prefix {prefix!r}",
                    code="XPST0081")
            return QName(uri, local, prefix)
        return QName(default_ns, lexical)

    def _resolve_type_name(self, lexical: str) -> str:
        if lexical in ATOMIC_TYPE_ALIASES:
            return ATOMIC_TYPE_ALIASES[lexical]
        raise XQueryStaticError(f"unknown atomic type {lexical!r}",
                                code="XPST0051")

    # ------------------------------------------------------------------
    # Module & prolog
    # ------------------------------------------------------------------

    def parse_module(self) -> ast.Module:
        self._parse_prolog()
        body = self.parse_expr()
        self.expect_eof()
        return ast.Module(self.prolog, body)

    def _parse_prolog(self) -> None:
        while self._peek().is_name("declare"):
            second = self._peek(1)
            if not second.is_name("default", "namespace", "construction",
                                  "boundary-space", "function"):
                break
            self._advance()  # 'declare'
            keyword = self._advance().value
            if keyword == "function":
                self._parse_function_declaration()
                self._expect_symbol(";")
                continue
            if keyword == "default":
                self._expect_name("element")
                self._expect_name("namespace")
                uri = self._advance()
                if uri.type != "string":
                    raise XQueryStaticError("expected namespace URI string")
                self.prolog.default_element_namespace = uri.value
            elif keyword == "namespace":
                prefix = self._expect_name().value
                self._expect_symbol("=")
                uri = self._advance()
                if uri.type != "string":
                    raise XQueryStaticError("expected namespace URI string")
                self.prolog.namespaces[prefix] = uri.value
            elif keyword == "construction":
                mode = self._expect_name("strip", "preserve").value
                self.prolog.construction_mode = mode
            elif keyword == "boundary-space":
                self._expect_name("strip", "preserve")
            self._expect_symbol(";")

    def _parse_function_declaration(self) -> None:
        """``declare function local:name($p as T, ...) as T { body }``"""
        lexical = self._parse_lexical_qname()
        if ":" not in lexical:
            raise XQueryStaticError(
                f"declared function {lexical!r} must have a namespace "
                f"prefix (e.g. local:{lexical})", code="XQST0060")
        name = self._resolve(lexical)
        self._expect_symbol("(")
        params: list[tuple[str, ast.SequenceType | None]] = []
        if not self._peek().is_symbol(")"):
            while True:
                self._expect_symbol("$")
                param_name = self._parse_lexical_qname()
                param_type = None
                if self._peek().is_name("as"):
                    self._advance()
                    param_type = self._parse_sequence_type()
                params.append((param_name, param_type))
                if self._peek().is_symbol(","):
                    self._advance()
                    continue
                break
        self._expect_symbol(")")
        return_type = None
        if self._peek().is_name("as"):
            self._advance()
            return_type = self._parse_sequence_type()
        self._expect_symbol("{")
        body = self.parse_expr()
        self._expect_symbol("}")
        key = (name.uri, name.local, len(params))
        if key in self.prolog.functions:
            raise XQueryStaticError(
                f"function {lexical}#{len(params)} declared twice",
                code="XQST0034")
        self.prolog.functions[key] = ast.UserFunction(
            name, params, return_type, body)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        items = [self.parse_expr_single()]
        while self._peek().is_symbol(","):
            self._advance()
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return ast.SequenceExpr(items)

    def parse_expr_single(self) -> ast.Expr:
        token = self._peek()
        if token.is_name("for", "let") and self._peek(1).is_symbol("$"):
            return self._parse_flwor()
        if (token.is_name("some", "every") and
                self._peek(1).is_symbol("$")):
            return self._parse_quantified()
        if token.is_name("if") and self._peek(1).is_symbol("("):
            return self._parse_if()
        if token.is_name("typeswitch") and self._peek(1).is_symbol("("):
            return self._parse_typeswitch()
        return self._parse_or()

    def _parse_var_name(self) -> str:
        self._expect_symbol("$")
        return self._parse_lexical_qname()

    def _parse_flwor(self) -> ast.FLWORExpr:
        clauses: list[ast.Clause] = []
        while True:
            token = self._peek()
            if token.is_name("for") and self._peek(1).is_symbol("$"):
                self._advance()
                while True:
                    var = self._parse_var_name()
                    position_var = None
                    if self._peek().is_name("at"):
                        self._advance()
                        position_var = self._parse_var_name()
                    self._expect_name("in")
                    expr = self.parse_expr_single()
                    clauses.append(ast.ForClause(var, expr, position_var))
                    if self._peek().is_symbol(","):
                        self._advance()
                        continue
                    break
            elif token.is_name("let") and self._peek(1).is_symbol("$"):
                self._advance()
                while True:
                    var = self._parse_var_name()
                    self._expect_symbol(":=")
                    expr = self.parse_expr_single()
                    clauses.append(ast.LetClause(var, expr))
                    if self._peek().is_symbol(","):
                        self._advance()
                        continue
                    break
            elif token.is_name("where"):
                self._advance()
                clauses.append(ast.WhereClause(self.parse_expr_single()))
            elif (token.is_name("order") and self._peek(1).is_name("by")) or \
                    (token.is_name("stable") and self._peek(1).is_name("order")):
                if token.is_name("stable"):
                    self._advance()
                self._advance()
                self._expect_name("by")
                specs = [self._parse_order_spec()]
                while self._peek().is_symbol(","):
                    self._advance()
                    specs.append(self._parse_order_spec())
                clauses.append(ast.OrderByClause(specs))
            else:
                break
        self._expect_name("return")
        return_expr = self.parse_expr_single()
        if not any(isinstance(clause, (ast.ForClause, ast.LetClause))
                   for clause in clauses):
            raise XQueryStaticError("FLWOR requires a for or let clause")
        return ast.FLWORExpr(clauses, return_expr)

    def _parse_order_spec(self) -> ast.OrderSpec:
        expr = self.parse_expr_single()
        descending = False
        empty_greatest = False
        if self._peek().is_name("ascending", "descending"):
            descending = self._advance().value == "descending"
        if self._peek().is_name("empty"):
            self._advance()
            empty_greatest = self._expect_name(
                "greatest", "least").value == "greatest"
        return ast.OrderSpec(expr, descending, empty_greatest)

    def _parse_quantified(self) -> ast.QuantifiedExpr:
        quantifier = self._advance().value
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            var = self._parse_var_name()
            self._expect_name("in")
            bindings.append((var, self.parse_expr_single()))
            if self._peek().is_symbol(","):
                self._advance()
                continue
            break
        self._expect_name("satisfies")
        satisfies = self.parse_expr_single()
        return ast.QuantifiedExpr(quantifier, bindings, satisfies)

    def _parse_typeswitch(self) -> ast.TypeswitchExpr:
        self._expect_name("typeswitch")
        self._expect_symbol("(")
        operand = self.parse_expr()
        self._expect_symbol(")")
        cases: list[ast.TypeswitchCase] = []
        while self._peek().is_name("case"):
            self._advance()
            variable = None
            if self._peek().is_symbol("$"):
                variable = self._parse_var_name()
                self._expect_name("as")
            sequence_type = self._parse_sequence_type()
            self._expect_name("return")
            cases.append(ast.TypeswitchCase(
                variable, sequence_type, self.parse_expr_single()))
        if not cases:
            raise XQueryStaticError("typeswitch requires at least one "
                                    "case clause")
        self._expect_name("default")
        default_variable = None
        if self._peek().is_symbol("$"):
            default_variable = self._parse_var_name()
        self._expect_name("return")
        default_body = self.parse_expr_single()
        return ast.TypeswitchExpr(operand, cases, default_variable,
                                  default_body)

    def _parse_if(self) -> ast.IfExpr:
        self._expect_name("if")
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        self._expect_name("then")
        then_branch = self.parse_expr_single()
        self._expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.IfExpr(condition, then_branch, else_branch)

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._peek().is_name("or"):
            self._advance()
            left = ast.OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._peek().is_name("and"):
            self._advance()
            left = ast.AndExpr(left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self._peek()
        if token.type == "symbol" and token.value in _GENERAL_COMPARISONS:
            op = self._advance().value
            return ast.GeneralComparison(op, left, self._parse_range())
        if token.type == "symbol" and token.value in ("<<", ">>"):
            op = self._advance().value
            return ast.NodeComparison(op, left, self._parse_range())
        if token.type == "name" and token.value in _VALUE_COMPARISONS:
            op = self._advance().value
            return ast.ValueComparison(op, left, self._parse_range())
        if token.is_name("is"):
            self._advance()
            return ast.NodeComparison("is", left, self._parse_range())
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().is_name("to"):
            self._advance()
            return ast.RangeExpr(left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().is_symbol("+", "-"):
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_union()
        while (self._peek().is_symbol("*") or
               self._peek().is_name("div", "idiv", "mod")):
            op = self._advance().value
            left = ast.Arithmetic(op, left, self._parse_union())
        return left

    def _parse_union(self) -> ast.Expr:
        left = self._parse_intersect_except()
        while self._peek().is_symbol("|") or self._peek().is_name("union"):
            self._advance()
            left = ast.SetExpr("union", left, self._parse_intersect_except())
        return left

    def _parse_intersect_except(self) -> ast.Expr:
        left = self._parse_instance_of()
        while self._peek().is_name("intersect", "except"):
            op = self._advance().value
            left = ast.SetExpr(op, left, self._parse_instance_of())
        return left

    def _parse_instance_of(self) -> ast.Expr:
        left = self._parse_treat()
        if self._peek().is_name("instance") and self._peek(1).is_name("of"):
            self._advance()
            self._advance()
            return ast.InstanceOfExpr(left, self._parse_sequence_type())
        return left

    def _parse_treat(self) -> ast.Expr:
        left = self._parse_castable()
        if self._peek().is_name("treat") and self._peek(1).is_name("as"):
            self._advance()
            self._advance()
            return ast.TreatExpr(left, self._parse_sequence_type())
        return left

    def _parse_castable(self) -> ast.Expr:
        left = self._parse_cast()
        if self._peek().is_name("castable") and self._peek(1).is_name("as"):
            self._advance()
            self._advance()
            type_name, allow_empty = self._parse_single_type()
            return ast.CastableExpr(left, type_name, allow_empty)
        return left

    def _parse_cast(self) -> ast.Expr:
        left = self._parse_unary()
        if self._peek().is_name("cast") and self._peek(1).is_name("as"):
            self._advance()
            self._advance()
            type_name, allow_empty = self._parse_single_type()
            return ast.CastExpr(left, type_name, allow_empty)
        return left

    def _parse_single_type(self) -> tuple[str, bool]:
        lexical = self._parse_lexical_qname()
        type_name = self._resolve_type_name(lexical)
        allow_empty = False
        if self._peek().is_symbol("?"):
            self._advance()
            allow_empty = True
        return type_name, allow_empty

    def _parse_sequence_type(self) -> ast.SequenceType:
        token = self._peek()
        if token.type == "name" and self._peek(1).is_symbol("("):
            name = self._advance().value
            self._expect_symbol("(")
            self._expect_symbol(")")
            item_type = name
        else:
            item_type = self._resolve_type_name(self._parse_lexical_qname())
        occurrence = ""
        if self._peek().is_symbol("?", "*", "+"):
            occurrence = self._advance().value
        return ast.SequenceType(item_type, occurrence)

    def _parse_unary(self) -> ast.Expr:
        negate = False
        seen = False
        while self._peek().is_symbol("-", "+"):
            seen = True
            if self._advance().value == "-":
                negate = not negate
        operand = self._parse_path()
        if seen:
            return ast.UnaryMinus(operand, negate)
        return operand

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self._peek()
        if token.is_symbol("/"):
            self._advance()
            if self._can_start_step():
                steps = self._parse_relative_steps()
            else:
                steps = []
            return ast.PathExpr("/", steps)
        if token.is_symbol("//"):
            self._advance()
            steps = self._parse_relative_steps()
            return ast.PathExpr("//", steps)
        steps = self._parse_relative_steps()
        if len(steps) == 1 and isinstance(steps[0], ast.ExprStep):
            step = steps[0]
            if not step.predicates:
                return step.expr
            return ast.FilterExpr(step.expr, step.predicates)
        return ast.PathExpr("", steps)

    def _parse_relative_steps(self) -> list[ast.Step]:
        steps = [self._parse_step()]
        while True:
            token = self._peek()
            if token.is_symbol("/"):
                self._advance()
                steps.append(self._parse_step())
            elif token.is_symbol("//"):
                self._advance()
                steps.append(ast.AxisStep("descendant-or-self",
                                          ast.KindTest("node")))
                steps.append(self._parse_step())
            else:
                break
        return steps

    def _can_start_step(self) -> bool:
        token = self._peek()
        if token.type in ("name", "string", "integer", "decimal", "double"):
            return True
        return token.is_symbol("@", "*", ".", "..", "$", "(", "<")

    def _parse_step(self) -> ast.Step:
        token = self._peek()

        if token.is_symbol(".."):
            self._advance()
            return ast.AxisStep("parent", ast.KindTest("node"),
                                self._parse_predicates())
        if token.is_symbol("@"):
            self._advance()
            test = self._parse_node_test(default_ns="")
            return ast.AxisStep("attribute", test, self._parse_predicates())
        if token.is_symbol("*"):
            test = self._parse_node_test(
                default_ns=self.prolog.default_element_namespace)
            return ast.AxisStep("child", test, self._parse_predicates())

        # Explicit axis?
        if (token.type == "name" and token.value in _AXES and
                self._peek(1).is_symbol("::")):
            axis = self._advance().value
            self._advance()  # '::'
            default_ns = ("" if axis == "attribute"
                          else self.prolog.default_element_namespace)
            test = self._parse_node_test(default_ns=default_ns)
            return ast.AxisStep(axis, test, self._parse_predicates())

        # Kind test as a step: node(), text(), ...
        if (token.type == "name" and token.value in _KIND_TESTS and
                self._peek(1).is_symbol("(") and
                self._peek(1).start == token.end):
            test = self._parse_kind_test()
            return ast.AxisStep("child", test, self._parse_predicates())

        # Name test (child axis) — but beware function calls, computed
        # constructors, and other primaries, which become ExprSteps.
        if token.type == "name":
            if (token.value in ("element", "attribute", "text", "document",
                                "comment") and self._computed_ctor_ahead()):
                primary = self._parse_primary()
                return ast.ExprStep(primary, self._parse_predicates())
            if self._is_function_call_ahead():
                primary = self._parse_primary()
                return ast.ExprStep(primary, self._parse_predicates())
            lexical = self._parse_lexical_qname_or_wildcard()
            test = self._make_name_test(
                lexical, default_ns=self.prolog.default_element_namespace)
            return ast.AxisStep("child", test, self._parse_predicates())

        primary = self._parse_primary()
        return ast.ExprStep(primary, self._parse_predicates())

    def _is_function_call_ahead(self) -> bool:
        """NAME [':' NAME] '(' — adjacency-checked, reserved names excluded."""
        first = self._peek()
        if first.type != "name":
            return False
        offset = 1
        name = first.value
        if (self._peek(1).is_symbol(":") and self._peek(1).start == first.end
                and self._peek(2).type == "name"
                and self._peek(2).start == self._peek(1).end):
            name = f"{first.value}:{self._peek(2).value}"
            offset = 3
        if not self._peek(offset).is_symbol("("):
            return False
        return name not in _RESERVED_FUNCTION_NAMES

    def _parse_lexical_qname_or_wildcard(self) -> str:
        """QName | * | prefix:* | *:local, returned in lexical form."""
        if self._peek().is_symbol("*"):
            star = self._advance()
            if (self._peek().is_symbol(":") and
                    self._peek().start == star.end and
                    self._peek(1).type == "name"):
                self._advance()
                local = self._advance()
                return f"*:{local.value}"
            return "*"
        first = self._expect_name()
        if (self._peek().is_symbol(":") and self._peek().start == first.end):
            colon = self._advance()
            if self._peek().is_symbol("*") and self._peek().start == colon.end:
                self._advance()
                return f"{first.value}:*"
            local = self._expect_name()
            return f"{first.value}:{local.value}"
        return first.value

    def _make_name_test(self, lexical: str, default_ns: str) -> ast.NameTest:
        if lexical == "*":
            return ast.NameTest(None, None)
        if lexical.startswith("*:"):
            return ast.NameTest(None, lexical[2:])
        if lexical.endswith(":*"):
            prefix = lexical[:-2]
            uri = self.prolog.namespaces.get(prefix)
            if uri is None:
                raise XQueryStaticError(
                    f"undeclared namespace prefix {prefix!r}",
                    code="XPST0081")
            return ast.NameTest(uri, None, prefix)
        qname = self._resolve(lexical, default_ns)
        return ast.NameTest(qname.uri, qname.local, qname.prefix)

    def _parse_node_test(self, default_ns: str) -> ast.NodeTest:
        token = self._peek()
        if (token.type == "name" and token.value in _KIND_TESTS and
                self._peek(1).is_symbol("(") and
                self._peek(1).start == token.end):
            return self._parse_kind_test()
        lexical = self._parse_lexical_qname_or_wildcard()
        return self._make_name_test(lexical, default_ns)

    def _parse_kind_test(self) -> ast.KindTest:
        name = self._advance().value
        self._expect_symbol("(")
        target = None
        if name == "processing-instruction" and not self._peek().is_symbol(")"):
            token = self._advance()
            if token.type not in ("name", "string"):
                raise XQueryStaticError("expected PI target")
            target = token.value
        self._expect_symbol(")")
        kind = "document" if name == "document-node" else name
        return ast.KindTest(kind, target)

    def _parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self._peek().is_symbol("["):
            self._advance()
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        return predicates

    # ------------------------------------------------------------------
    # Primary expressions
    # ------------------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type == "string":
            self._advance()
            return ast.Literal(atomic.string(token.value))
        if token.type == "integer":
            self._advance()
            return ast.Literal(atomic.integer(int(token.value)))
        if token.type == "decimal":
            self._advance()
            return ast.Literal(atomic.decimal(token.value))
        if token.type == "double":
            self._advance()
            return ast.Literal(atomic.double(float(token.value)))
        if token.is_symbol("$"):
            self._advance()
            return ast.VarRef(self._parse_lexical_qname())
        if token.is_symbol("."):
            self._advance()
            return ast.ContextItem()
        if token.is_symbol("("):
            self._advance()
            if self._peek().is_symbol(")"):
                self._advance()
                return ast.SequenceExpr([])
            inner = self.parse_expr()
            self._expect_symbol(")")
            return inner
        if token.is_symbol("<"):
            return self._parse_direct_constructor()
        if token.type == "name":
            if token.value in ("element", "attribute", "text", "document",
                               "comment") and self._computed_ctor_ahead():
                return self._parse_computed_constructor()
            if self._is_function_call_ahead():
                return self._parse_function_call()
        raise XQueryStaticError(
            f"unexpected token {token.value!r} at offset {token.start}")

    def _computed_ctor_ahead(self) -> bool:
        """'element'/'attribute' followed by '{' or by a QName then '{'."""
        second = self._peek(1)
        if second.is_symbol("{"):
            return True
        if second.type != "name":
            return False
        offset = 2
        if (self._peek(2).is_symbol(":") and
                self._peek(3).type == "name"):
            offset = 4
        return self._peek(offset).is_symbol("{")

    def _parse_computed_constructor(self) -> ast.Expr:
        keyword = self._advance().value
        if keyword in ("text", "document", "comment"):
            self._expect_symbol("{")
            content = self.parse_expr()
            self._expect_symbol("}")
            if keyword == "text":
                return ast.ComputedTextConstructor(content)
            if keyword == "document":
                return ast.ComputedDocumentConstructor(content)
            raise XQueryStaticError("computed comment constructors are "
                                    "not supported")
        if self._peek().is_symbol("{"):
            self._advance()
            name_expr = self.parse_expr()
            self._expect_symbol("}")
            name: str | ast.Expr = name_expr
        else:
            name = self._parse_lexical_qname()
        content: ast.Expr | None = None
        self._expect_symbol("{")
        if not self._peek().is_symbol("}"):
            content = self.parse_expr()
        self._expect_symbol("}")
        if keyword == "element":
            return ast.ComputedElementConstructor(name, content)
        return ast.ComputedAttributeConstructor(name, content)

    def _parse_function_call(self) -> ast.FunctionCall:
        lexical = self._parse_lexical_qname()
        name = self._resolve(lexical, default_ns=FN_NS)
        self._expect_symbol("(")
        args: list[ast.Expr] = []
        if not self._peek().is_symbol(")"):
            args.append(self.parse_expr_single())
            while self._peek().is_symbol(","):
                self._advance()
                args.append(self.parse_expr_single())
        self._expect_symbol(")")
        return ast.FunctionCall(name, args)

    # ------------------------------------------------------------------
    # Direct element constructors (raw-mode scanning)
    # ------------------------------------------------------------------

    def _parse_direct_constructor(self) -> ast.DirectElementConstructor:
        start_token = self._peek()
        assert start_token.is_symbol("<")
        self._reset_to(start_token.start)
        constructor, end = self._scan_element(self.pos)
        self._reset_to(end)
        return constructor

    def _raw(self, pos: int) -> str:
        return self.source[pos] if pos < len(self.source) else ""

    def _scan_name_raw(self, pos: int) -> tuple[str, int]:
        start = pos
        while pos < len(self.source) and (
                self.source[pos].isalnum() or
                self.source[pos] in "_-.:" or ord(self.source[pos]) > 127):
            pos += 1
        if pos == start:
            raise XQueryStaticError(
                f"expected a name at offset {start} in constructor")
        return self.source[start:pos], pos

    def _skip_ws_raw(self, pos: int) -> int:
        while self._raw(pos) in (" ", "\t", "\r", "\n") and self._raw(pos):
            pos += 1
        return pos

    def _scan_element(self, pos: int
                      ) -> tuple[ast.DirectElementConstructor, int]:
        assert self._raw(pos) == "<"
        pos += 1
        name, pos = self._scan_name_raw(pos)
        namespace_declarations: dict[str, str] = {}
        attributes: list[tuple[str, ast.AttributeValueTemplate]] = []

        while True:
            pos = self._skip_ws_raw(pos)
            char = self._raw(pos)
            if char in (">", "/"):
                break
            if char == "":
                raise XQueryStaticError(f"unterminated start tag <{name}>")
            attribute_name, pos = self._scan_name_raw(pos)
            pos = self._skip_ws_raw(pos)
            if self._raw(pos) != "=":
                raise XQueryStaticError(
                    f"expected '=' after attribute {attribute_name!r}")
            pos = self._skip_ws_raw(pos + 1)
            template, pos = self._scan_attribute_value(pos)
            if attribute_name == "xmlns":
                namespace_declarations[""] = _template_as_uri(template)
            elif attribute_name.startswith("xmlns:"):
                namespace_declarations[attribute_name[6:]] = \
                    _template_as_uri(template)
            else:
                attributes.append((attribute_name, template))

        content: list[str | ast.Expr | ast.DirectElementConstructor] = []
        if self._raw(pos) == "/":
            if self._raw(pos + 1) != ">":
                raise XQueryStaticError("expected '/>'")
            return ast.DirectElementConstructor(
                name, namespace_declarations, attributes, content), pos + 2
        pos += 1  # consume '>'

        pos = self._scan_content(pos, content, name)
        return ast.DirectElementConstructor(
            name, namespace_declarations, attributes, content), pos

    def _scan_attribute_value(self, pos: int
                              ) -> tuple[ast.AttributeValueTemplate, int]:
        quote = self._raw(pos)
        if quote not in ("'", '"'):
            raise XQueryStaticError("attribute value must be quoted")
        pos += 1
        parts: list[str | ast.Expr] = []
        text: list[str] = []
        while True:
            char = self._raw(pos)
            if char == "":
                raise XQueryStaticError("unterminated attribute value")
            if char == quote:
                if self._raw(pos + 1) == quote:
                    text.append(quote)
                    pos += 2
                    continue
                break
            if char == "{":
                if self._raw(pos + 1) == "{":
                    text.append("{")
                    pos += 2
                    continue
                if text:
                    parts.append("".join(text))
                    text = []
                expr, pos = self._scan_enclosed(pos)
                parts.append(expr)
                continue
            if char == "}":
                if self._raw(pos + 1) == "}":
                    text.append("}")
                    pos += 2
                    continue
                raise XQueryStaticError("'}' must be escaped in attribute "
                                        "value")
            if char == "&":
                end = self.source.find(";", pos)
                if end < 0 or end - pos > 12:
                    raise XQueryStaticError("malformed entity reference")
                text.append(_resolve_entity(self.source[pos + 1:end]))
                pos = end + 1
                continue
            text.append(char)
            pos += 1
        if text:
            parts.append("".join(text))
        return ast.AttributeValueTemplate(parts), pos + 1

    def _scan_enclosed(self, pos: int) -> tuple[ast.Expr, int]:
        """Parse one ``{ Expr }`` enclosure via the main parser."""
        assert self._raw(pos) == "{"
        saved_buffer = list(self._buffer)
        saved_pos = self.pos
        self._reset_to(pos + 1)
        expr = self.parse_expr()
        closing = self._peek()
        if not closing.is_symbol("}"):
            raise XQueryStaticError(
                f"expected '}}' at offset {closing.start}")
        end = closing.end
        self._buffer = saved_buffer
        self.pos = saved_pos
        return expr, end

    def _scan_content(self, pos: int,
                      content: list,
                      element_name: str) -> int:
        text: list[str] = []

        def flush(boundary: bool) -> None:
            """Emit accumulated text; drop boundary whitespace."""
            if not text:
                return
            segment = "".join(text)
            text.clear()
            if boundary and not segment.strip():
                return
            content.append(segment)

        while True:
            char = self._raw(pos)
            if char == "":
                raise XQueryStaticError(
                    f"unterminated element constructor <{element_name}>")
            if char == "<":
                if self.source.startswith("</", pos):
                    flush(boundary=True)
                    pos += 2
                    closing, pos = self._scan_name_raw(pos)
                    if closing != element_name:
                        raise XQueryStaticError(
                            f"mismatched </{closing}> for <{element_name}>")
                    pos = self._skip_ws_raw(pos)
                    if self._raw(pos) != ">":
                        raise XQueryStaticError("expected '>' in closing tag")
                    return pos + 1
                if self.source.startswith("<!--", pos):
                    end = self.source.find("-->", pos + 4)
                    if end < 0:
                        raise XQueryStaticError("unterminated comment")
                    pos = end + 3
                    continue
                if self.source.startswith("<![CDATA[", pos):
                    end = self.source.find("]]>", pos + 9)
                    if end < 0:
                        raise XQueryStaticError("unterminated CDATA")
                    text.append(self.source[pos + 9:end])
                    pos = end + 3
                    continue
                flush(boundary=True)
                child, pos = self._scan_element(pos)
                content.append(child)
                continue
            if char == "{":
                if self._raw(pos + 1) == "{":
                    text.append("{")
                    pos += 2
                    continue
                flush(boundary=True)
                expr, pos = self._scan_enclosed(pos)
                content.append(expr)
                continue
            if char == "}":
                if self._raw(pos + 1) == "}":
                    text.append("}")
                    pos += 2
                    continue
                raise XQueryStaticError("'}' must be escaped in element "
                                        "content")
            if char == "&":
                end = self.source.find(";", pos)
                if end < 0 or end - pos > 12:
                    raise XQueryStaticError("malformed entity reference")
                text.append(_resolve_entity(self.source[pos + 1:end]))
                pos = end + 1
                continue
            text.append(char)
            pos += 1


def _template_as_uri(template: ast.AttributeValueTemplate) -> str:
    if len(template.parts) == 1 and isinstance(template.parts[0], str):
        return template.parts[0]
    if not template.parts:
        return ""
    raise XQueryStaticError("namespace declaration value must be a literal")
