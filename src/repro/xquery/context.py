"""Static and dynamic evaluation contexts."""

from __future__ import annotations

from typing import Any

from ..errors import XQueryDynamicError
from ..xdm.sequence import Item
from .ast import Prolog


class DynamicContext:
    """Variable bindings + focus (context item, position, size).

    Contexts are immutable; ``bind`` and ``with_focus`` return children.
    ``database`` gives ``db2-fn:xmlcolumn`` (and ``db2-fn:sqlquery``)
    access to the catalog, mirroring DB2's standalone XQuery interface.
    """

    __slots__ = ("variables", "item", "position", "size", "prolog",
                 "database", "stats")

    def __init__(self, prolog: Prolog,
                 variables: dict[str, list[Item]] | None = None,
                 item: Item | None = None,
                 position: int = 0,
                 size: int = 0,
                 database: Any = None,
                 stats: Any = None):
        self.prolog = prolog
        self.variables = variables or {}
        self.item = item
        self.position = position
        self.size = size
        self.database = database
        self.stats = stats

    def bind(self, name: str, value: list[Item]) -> "DynamicContext":
        variables = dict(self.variables)
        variables[name] = value
        return DynamicContext(self.prolog, variables, self.item,
                              self.position, self.size, self.database,
                              self.stats)

    def with_focus(self, item: Item, position: int,
                   size: int) -> "DynamicContext":
        return DynamicContext(self.prolog, self.variables, item,
                              position, size, self.database, self.stats)

    def lookup(self, name: str) -> list[Item]:
        try:
            return self.variables[name]
        except KeyError:
            raise XQueryDynamicError(
                f"undefined variable ${name}", code="XPST0008") from None

    def require_context_item(self) -> Item:
        if self.item is None:
            raise XQueryDynamicError(
                "context item is undefined", code="XPDY0002")
        return self.item
