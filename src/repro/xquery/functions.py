"""Built-in function library: fn:*, xs:* constructors, db2-fn:*.

The registry maps (namespace-uri, local-name) to a signature.  Function
arguments arrive fully evaluated (XQuery is call-by-value over
sequences).  Implementations raise the standard err:* codes.
"""

from __future__ import annotations

import math
import re
from decimal import Decimal
from typing import Callable

from ..errors import CastError, XQueryDynamicError, XQueryTypeError
from ..xdm import atomic
from ..xdm.atomic import AtomicValue
from ..xdm.compare import value_compare
from ..xdm.nodes import Node
from ..xdm.qname import DB2FN_NS, FN_NS, XDT_NS, XS_NS
from ..xdm.sequence import (Item, atomize, effective_boolean_value,
                            singleton)
from .context import DynamicContext


class FunctionDef:
    __slots__ = ("name", "min_args", "max_args", "impl")

    def __init__(self, name: str, min_args: int, max_args: int,
                 impl: Callable):
        self.name = name
        self.min_args = min_args
        self.max_args = max_args
        self.impl = impl


REGISTRY: dict[tuple[str, str], FunctionDef] = {}


def _register(uri: str, local: str, min_args: int, max_args: int):
    def decorator(impl):
        REGISTRY[(uri, local)] = FunctionDef(local, min_args, max_args, impl)
        return impl
    return decorator


def lookup_function(uri: str, local: str) -> FunctionDef | None:
    return REGISTRY.get((uri, local))


def _one_string(args: list[list[Item]], index: int = 0,
                default: str = "") -> str:
    values = atomize(args[index]) if index < len(args) else []
    if not values:
        return default
    if len(values) > 1:
        raise XQueryTypeError("expected a singleton string argument")
    return values[0].string_value()


def _optional_atomic(items: list[Item]) -> AtomicValue | None:
    values = atomize(items)
    if not values:
        return None
    if len(values) > 1:
        raise XQueryTypeError("expected zero or one atomic value")
    return values[0]


# ---------------------------------------------------------------------------
# fn: boolean / sequences
# ---------------------------------------------------------------------------

@_register(FN_NS, "true", 0, 0)
def _fn_true(ctx, args):
    return [atomic.TRUE]


@_register(FN_NS, "false", 0, 0)
def _fn_false(ctx, args):
    return [atomic.FALSE]


@_register(FN_NS, "boolean", 1, 1)
def _fn_boolean(ctx, args):
    return [atomic.boolean(effective_boolean_value(args[0]))]


@_register(FN_NS, "not", 1, 1)
def _fn_not(ctx, args):
    return [atomic.boolean(not effective_boolean_value(args[0]))]


@_register(FN_NS, "empty", 1, 1)
def _fn_empty(ctx, args):
    return [atomic.boolean(not args[0])]


@_register(FN_NS, "exists", 1, 1)
def _fn_exists(ctx, args):
    return [atomic.boolean(bool(args[0]))]


@_register(FN_NS, "count", 1, 1)
def _fn_count(ctx, args):
    return [atomic.integer(len(args[0]))]


@_register(FN_NS, "distinct-values", 1, 1)
def _fn_distinct_values(ctx, args):
    seen: list[AtomicValue] = []
    for value in atomize(args[0]):
        duplicate = False
        for kept in seen:
            try:
                result = value_compare("eq", [kept], [value])
            except XQueryTypeError:
                continue
            if result and result[0].value:
                duplicate = True
                break
        if not duplicate:
            seen.append(value)
    return list(seen)


@_register(FN_NS, "reverse", 1, 1)
def _fn_reverse(ctx, args):
    return list(reversed(args[0]))


@_register(FN_NS, "subsequence", 2, 3)
def _fn_subsequence(ctx, args):
    items = args[0]
    start = round(float(singleton(atomize(args[1]), "subsequence").value))
    if len(args) == 3:
        length = round(float(singleton(atomize(args[2]),
                                       "subsequence").value))
        end = start + length
    else:
        end = len(items) + 1
    return [item for position, item in enumerate(items, start=1)
            if start <= position < end]


@_register(FN_NS, "index-of", 2, 2)
def _fn_index_of(ctx, args):
    target = singleton(atomize(args[1]), "index-of")
    matches = []
    for position, value in enumerate(atomize(args[0]), start=1):
        try:
            result = value_compare("eq", [value], [target])
        except XQueryTypeError:
            continue
        if result and result[0].value:
            matches.append(atomic.integer(position))
    return matches


@_register(FN_NS, "exactly-one", 1, 1)
def _fn_exactly_one(ctx, args):
    if len(args[0]) != 1:
        raise XQueryTypeError("fn:exactly-one: sequence has "
                              f"{len(args[0])} items", code="FORG0005")
    return args[0]


@_register(FN_NS, "zero-or-one", 1, 1)
def _fn_zero_or_one(ctx, args):
    if len(args[0]) > 1:
        raise XQueryTypeError("fn:zero-or-one: more than one item",
                              code="FORG0003")
    return args[0]


@_register(FN_NS, "one-or-more", 1, 1)
def _fn_one_or_more(ctx, args):
    if not args[0]:
        raise XQueryTypeError("fn:one-or-more: empty sequence",
                              code="FORG0004")
    return args[0]


@_register(FN_NS, "position", 0, 0)
def _fn_position(ctx: DynamicContext, args):
    ctx.require_context_item()
    return [atomic.integer(ctx.position)]


@_register(FN_NS, "last", 0, 0)
def _fn_last(ctx: DynamicContext, args):
    ctx.require_context_item()
    return [atomic.integer(ctx.size)]


# ---------------------------------------------------------------------------
# fn: aggregates
# ---------------------------------------------------------------------------

def _to_number(value: AtomicValue) -> AtomicValue:
    if value.is_untyped:
        return atomic.cast(value, atomic.T_DOUBLE)
    if not value.is_numeric:
        raise XQueryTypeError(
            f"aggregate over non-numeric {value.type_name}")
    return value


@_register(FN_NS, "sum", 1, 2)
def _fn_sum(ctx, args):
    values = [_to_number(value) for value in atomize(args[0])]
    if not values:
        if len(args) == 2:
            return list(args[1])
        return [atomic.integer(0)]
    total = values[0]
    for value in values[1:]:
        left, right = atomic.promote_numeric_pair(total, value)
        total = AtomicValue(left.type_name, left.value + right.value)
    return [total]


@_register(FN_NS, "avg", 1, 1)
def _fn_avg(ctx, args):
    values = [_to_number(value) for value in atomize(args[0])]
    if not values:
        return []
    total = _fn_sum(ctx, [values])[0]
    if total.type_name == atomic.T_DOUBLE:
        return [atomic.double(total.value / len(values))]
    return [atomic.decimal(Decimal(total.value) / len(values))]


def _extreme(args, op: str):
    values = atomize(args[0])
    if not values:
        return []
    best = values[0]
    if best.is_untyped:
        best = atomic.cast(best, atomic.T_DOUBLE)
    for value in values[1:]:
        if value.is_untyped:
            value = atomic.cast(value, atomic.T_DOUBLE)
        result = value_compare(op, [value], [best])
        if result and result[0].value:
            best = value
    return [best]


@_register(FN_NS, "max", 1, 1)
def _fn_max(ctx, args):
    return _extreme(args, "gt")


@_register(FN_NS, "min", 1, 1)
def _fn_min(ctx, args):
    return _extreme(args, "lt")


# ---------------------------------------------------------------------------
# fn: strings
# ---------------------------------------------------------------------------

@_register(FN_NS, "string", 0, 1)
def _fn_string(ctx: DynamicContext, args):
    if args:
        if not args[0]:
            return [atomic.string("")]
        item = singleton(args[0], "fn:string")
    else:
        item = ctx.require_context_item()
    if isinstance(item, Node):
        return [atomic.string(item.string_value())]
    return [atomic.string(item.string_value())]


@_register(FN_NS, "string-length", 0, 1)
def _fn_string_length(ctx, args):
    if args:
        text = _one_string(args)
    else:
        item = ctx.require_context_item()
        text = item.string_value() if isinstance(item, Node) else \
            item.string_value()
    return [atomic.integer(len(text))]


@_register(FN_NS, "concat", 2, 256)
def _fn_concat(ctx, args):
    parts = []
    for argument in args:
        value = _optional_atomic(argument)
        parts.append(value.string_value() if value is not None else "")
    return [atomic.string("".join(parts))]


@_register(FN_NS, "string-join", 2, 2)
def _fn_string_join(ctx, args):
    separator = _one_string(args, 1)
    parts = [value.string_value() for value in atomize(args[0])]
    return [atomic.string(separator.join(parts))]


@_register(FN_NS, "contains", 2, 2)
def _fn_contains(ctx, args):
    return [atomic.boolean(_one_string(args, 1) in _one_string(args, 0))]


@_register(FN_NS, "starts-with", 2, 2)
def _fn_starts_with(ctx, args):
    return [atomic.boolean(
        _one_string(args, 0).startswith(_one_string(args, 1)))]


@_register(FN_NS, "ends-with", 2, 2)
def _fn_ends_with(ctx, args):
    return [atomic.boolean(
        _one_string(args, 0).endswith(_one_string(args, 1)))]


def _xpath_round(value: float) -> float:
    """fn:round semantics: round half toward +INF (not banker's).

    ``round(2.5) == 2`` in Python but ``fn:round(2.5) eq 3`` in XPath;
    NaN and ±INF round to themselves."""
    if math.isnan(value) or math.isinf(value):
        return value
    return math.floor(value + 0.5)


@_register(FN_NS, "substring", 2, 3)
def _fn_substring(ctx, args):
    # F&O 7.4.3: characters whose position p satisfies
    # round(start) <= p < round(start) + round(length).  The
    # comparisons are done in double arithmetic so NaN bounds make
    # every test false (empty result) and infinite bounds behave as
    # unbounded — no special-casing, no ValueError.
    text = _one_string(args, 0)
    start = _xpath_round(float(singleton(atomize(args[1]),
                                         "substring").value))
    if len(args) == 3:
        length = _xpath_round(float(singleton(atomize(args[2]),
                                              "substring").value))
        end = start + length
    else:
        end = math.inf
    result = "".join(char for position, char in enumerate(text, start=1)
                     if start <= position < end)
    return [atomic.string(result)]


@_register(FN_NS, "substring-before", 2, 2)
def _fn_substring_before(ctx, args):
    # F&O 7.5.4: an empty separator yields the zero-length string.
    text, sep = _one_string(args, 0), _one_string(args, 1)
    if not sep:
        return [atomic.string("")]
    index = text.find(sep)
    return [atomic.string(text[:index] if index >= 0 else "")]


@_register(FN_NS, "substring-after", 2, 2)
def _fn_substring_after(ctx, args):
    # F&O 7.5.5: an empty separator yields $text itself ("" occurs
    # before the first character), not "".
    text, sep = _one_string(args, 0), _one_string(args, 1)
    if not sep:
        return [atomic.string(text)]
    index = text.find(sep)
    return [atomic.string(text[index + len(sep):] if index >= 0 else "")]


@_register(FN_NS, "normalize-space", 0, 1)
def _fn_normalize_space(ctx, args):
    if args:
        text = _one_string(args)
    else:
        item = ctx.require_context_item()
        text = item.string_value()
    return [atomic.string(" ".join(text.split()))]


@_register(FN_NS, "upper-case", 1, 1)
def _fn_upper_case(ctx, args):
    return [atomic.string(_one_string(args).upper())]


@_register(FN_NS, "lower-case", 1, 1)
def _fn_lower_case(ctx, args):
    return [atomic.string(_one_string(args).lower())]


@_register(FN_NS, "translate", 3, 3)
def _fn_translate(ctx, args):
    text = _one_string(args, 0)
    source_map = _one_string(args, 1)
    target_map = _one_string(args, 2)
    table = {}
    for index, char in enumerate(source_map):
        table[ord(char)] = (target_map[index]
                            if index < len(target_map) else None)
    return [atomic.string(text.translate(table))]


@_register(FN_NS, "matches", 2, 2)
def _fn_matches(ctx, args):
    # Python re is a close approximation of XPath regular expressions.
    return [atomic.boolean(
        re.search(_one_string(args, 1), _one_string(args, 0)) is not None)]


@_register(FN_NS, "replace", 3, 3)
def _fn_replace(ctx, args):
    return [atomic.string(re.sub(_one_string(args, 1),
                                 _one_string(args, 2),
                                 _one_string(args, 0)))]


@_register(FN_NS, "tokenize", 2, 2)
def _fn_tokenize(ctx, args):
    return [atomic.string(token)
            for token in re.split(_one_string(args, 1), _one_string(args, 0))]


# ---------------------------------------------------------------------------
# fn: numerics
# ---------------------------------------------------------------------------

@_register(FN_NS, "number", 0, 1)
def _fn_number(ctx: DynamicContext, args):
    if args:
        value = _optional_atomic(args[0])
    else:
        item = ctx.require_context_item()
        value = atomize([item])[0] if atomize([item]) else None
    if value is None:
        return [atomic.double(math.nan)]
    try:
        return [atomic.cast(value, atomic.T_DOUBLE)]
    except CastError:
        # Only a failed *cast* means NaN (F&O 14.4.1.2); a programming
        # bug (TypeError, AttributeError, ...) must propagate.
        return [atomic.double(math.nan)]


@_register(FN_NS, "abs", 1, 1)
def _fn_abs(ctx, args):
    value = _optional_atomic(args[0])
    if value is None:
        return []
    value = _to_number(value)
    return [AtomicValue(value.type_name, abs(value.value))]


@_register(FN_NS, "floor", 1, 1)
def _fn_floor(ctx, args):
    value = _optional_atomic(args[0])
    if value is None:
        return []
    value = _to_number(value)
    return [AtomicValue(value.type_name, type(value.value)(
        math.floor(value.value)))]


@_register(FN_NS, "ceiling", 1, 1)
def _fn_ceiling(ctx, args):
    value = _optional_atomic(args[0])
    if value is None:
        return []
    value = _to_number(value)
    return [AtomicValue(value.type_name, type(value.value)(
        math.ceil(value.value)))]


@_register(FN_NS, "round", 1, 1)
def _fn_round(ctx, args):
    value = _optional_atomic(args[0])
    if value is None:
        return []
    value = _to_number(value)
    return [AtomicValue(value.type_name, type(value.value)(
        math.floor(float(value.value) + 0.5)))]


# ---------------------------------------------------------------------------
# fn: nodes
# ---------------------------------------------------------------------------

@_register(FN_NS, "data", 0, 1)
def _fn_data(ctx: DynamicContext, args):
    # The 0-argument form (data() over the context item) is an XPath 2.1
    # /DB2-ism the paper's §3.10 examples use.
    if args:
        return list(atomize(args[0]))
    return list(atomize([ctx.require_context_item()]))


@_register(FN_NS, "root", 0, 1)
def _fn_root(ctx: DynamicContext, args):
    if args:
        if not args[0]:
            return []
        item = singleton(args[0], "fn:root")
    else:
        item = ctx.require_context_item()
    if not isinstance(item, Node):
        raise XQueryTypeError("fn:root requires a node")
    return [item.root]


@_register(FN_NS, "name", 0, 1)
def _fn_name(ctx: DynamicContext, args):
    node = _node_argument(ctx, args)
    if node is None or node.name is None:
        return [atomic.string("")]
    return [atomic.string(node.name.lexical)]


@_register(FN_NS, "local-name", 0, 1)
def _fn_local_name(ctx: DynamicContext, args):
    node = _node_argument(ctx, args)
    if node is None or node.name is None:
        return [atomic.string("")]
    return [atomic.string(node.name.local)]


@_register(FN_NS, "namespace-uri", 0, 1)
def _fn_namespace_uri(ctx: DynamicContext, args):
    node = _node_argument(ctx, args)
    if node is None or node.name is None:
        return [atomic.string("")]
    return [atomic.string(node.name.uri)]


def _node_argument(ctx: DynamicContext, args) -> Node | None:
    if args:
        if not args[0]:
            return None
        item = singleton(args[0], "node function")
    else:
        item = ctx.require_context_item()
    if not isinstance(item, Node):
        raise XQueryTypeError("expected a node argument")
    return item


@_register(FN_NS, "deep-equal", 2, 2)
def _fn_deep_equal(ctx, args):
    return [atomic.boolean(deep_equal_sequences(args[0], args[1]))]


def deep_equal_sequences(left: list[Item], right: list[Item]) -> bool:
    if len(left) != len(right):
        return False
    return all(_deep_equal_items(a, b) for a, b in zip(left, right))


def _deep_equal_items(left: Item, right: Item) -> bool:
    left_is_node = isinstance(left, Node)
    if left_is_node != isinstance(right, Node):
        return False
    if not left_is_node:
        try:
            result = value_compare("eq", [left], [right])
        except XQueryTypeError:
            return False
        return bool(result and result[0].value)
    if left.kind != right.kind:
        return False
    if left.kind in ("text", "comment"):
        return left.string_value() == right.string_value()
    if left.kind == "processing-instruction":
        return (left.name == right.name and
                left.string_value() == right.string_value())
    if left.kind == "attribute":
        return (left.name == right.name and
                _deep_equal_items(left.typed_value()[0],
                                  right.typed_value()[0])
                if left.typed_value() and right.typed_value()
                else left.string_value() == right.string_value())
    if left.kind == "element":
        if left.name != right.name:
            return False
        left_attributes = {a.name: a.string_value() for a in left.attributes}
        right_attributes = {a.name: a.string_value()
                            for a in right.attributes}
        if left_attributes != right_attributes:
            return False
    left_children = [child for child in left.children
                     if child.kind in ("element", "text")]
    right_children = [child for child in right.children
                      if child.kind in ("element", "text")]
    return deep_equal_sequences(left_children, right_children)


# ---------------------------------------------------------------------------
# xs: constructor functions
# ---------------------------------------------------------------------------

def _make_constructor(type_name: str):
    def impl(ctx, args):
        value = _optional_atomic(args[0])
        if value is None:
            return []
        return [atomic.cast(value, type_name)]
    return impl


for _local, _type in [
    ("string", atomic.T_STRING),
    ("double", atomic.T_DOUBLE),
    ("float", atomic.T_DOUBLE),
    ("decimal", atomic.T_DECIMAL),
    ("integer", atomic.T_INTEGER),
    ("int", atomic.T_INTEGER),
    ("long", atomic.T_LONG),
    ("boolean", atomic.T_BOOLEAN),
    ("date", atomic.T_DATE),
    ("dateTime", atomic.T_DATETIME),
    ("untypedAtomic", atomic.T_UNTYPED),
]:
    REGISTRY[(XS_NS, _local)] = FunctionDef(
        _local, 1, 1, _make_constructor(_type))

REGISTRY[(XDT_NS, "untypedAtomic")] = FunctionDef(
    "untypedAtomic", 1, 1, _make_constructor(atomic.T_UNTYPED))


@_register(FN_NS, "between", 3, 3)
def _fn_between(ctx, args):
    """fn:between($values, $low, $high) — the explicit between the
    paper's Section 4 asks the standards bodies for.

    True iff some *single* value in $values lies within [$low, $high]
    — i.e. both bounds apply to the same item, unlike the existential
    pair ``v > $low and v < $high``.  Untyped values are compared
    numerically when the bounds are numeric; values that fail to cast
    are skipped (consistent with general-comparison behaviour).
    """
    from ..errors import CastError

    low = _optional_atomic(args[1])
    high = _optional_atomic(args[2])
    if low is None or high is None:
        raise XQueryTypeError("fn:between requires singleton bounds")
    for value in atomize(args[0]):
        try:
            at_least = value_compare("ge", [value], [low])
            at_most = value_compare("le", [value], [high])
        except (XQueryTypeError, CastError):
            continue
        if (at_least and at_least[0].value and
                at_most and at_most[0].value):
            return [atomic.TRUE]
    return [atomic.FALSE]


# ---------------------------------------------------------------------------
# db2-fn:
# ---------------------------------------------------------------------------

@_register(DB2FN_NS, "xmlcolumn", 1, 1)
def _db2_xmlcolumn(ctx: DynamicContext, args):
    """Import an entire XML column as a sequence of document nodes."""
    reference = _one_string(args)
    if ctx.database is None:
        raise XQueryDynamicError(
            "db2-fn:xmlcolumn requires a database-bound context")
    return ctx.database.xmlcolumn(reference, stats=ctx.stats)


@_register(DB2FN_NS, "sqlquery", 1, 1)
def _db2_sqlquery(ctx: DynamicContext, args):
    """Run an SQL fullselect returning one XML column; yields its items."""
    statement = _one_string(args)
    if ctx.database is None:
        raise XQueryDynamicError(
            "db2-fn:sqlquery requires a database-bound context")
    return ctx.database.sqlquery_items(statement)
