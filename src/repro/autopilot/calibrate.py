"""Cost-model calibration: EXPLAIN ANALYZE q-errors close the loop.

The planner's probe estimates (``repro.planner.cost``) rest on an
independence assumption — key selectivity × structural coverage — that
real data routinely violates.  EXPLAIN ANALYZE already measures the
violation: every index-scan operator carries ``estimated_rows`` and
``actual_rows``, and their ratio (the q-error) says exactly how far off
the model was.  Before this module those samples were printed and
thrown away.

:class:`CostCalibration` keeps them.  Each observation nudges a single
multiplicative correction ``factor`` toward the value that would have
made past estimates exact, with a damped update so one outlier cannot
whipsaw the model::

    factor *= (actual / estimated) ** DAMPING      # clamped [0.1, 10]

:class:`repro.planner.cost.CostModel` folds ``factor`` into the
independence part of its estimate (the exact structural coverage cap
stays uncalibrated).  On a :class:`~repro.durability.engine.
DurableDatabase` the calibration is persisted in the data directory
(``calibration.json``) on close and loaded on open, so the model keeps
learning across restarts; in-memory databases calibrate for the life
of the process.

File I/O goes through :mod:`repro.durability.fsio` (temp + atomic
replace): the file is advisory — a torn or corrupt file just means the
model restarts uncalibrated — but readers must never see half a write.
"""

from __future__ import annotations

import json
import threading
from collections import deque

from ..durability import fsio

__all__ = ["CostCalibration"]

#: Exponent of the multiplicative update: 1.0 would jump straight to
#: the last observed ratio, 0.0 would never move.  0.25 converges in a
#: handful of observations while averaging out per-query noise.
DAMPING = 0.25
#: Clamp range for the correction factor (matches CostModel's belt).
FACTOR_MIN = 0.1
FACTOR_MAX = 10.0
#: Ring-buffer bound on retained (estimated, actual) samples.
MAX_SAMPLES = 256


class CostCalibration:
    """Damped online correction factor fed by q-error observations.

    Thread-safe: EXPLAIN ANALYZE may run concurrently from several
    sessions, and the planner reads :attr:`factor` without the lock
    (a stale read is one observation behind — harmless).
    """

    #: File name under a DurableDatabase's data directory.
    FILENAME = "calibration.json"

    def __init__(self, path=None, factor: float = 1.0, samples=None):
        self.path = path
        self.factor = min(FACTOR_MAX, max(FACTOR_MIN, float(factor)))
        self.samples: deque = deque(samples or (), maxlen=MAX_SAMPLES)
        self._lock = threading.Lock()

    # -- feedback -------------------------------------------------------

    def observe(self, estimated: float, actual: float) -> float:
        """Record one (estimated, actual) cardinality pair.

        Returns the sample's q-error ``max(actual/est, est/actual)``.
        Cardinalities are floored at 1 (the usual q-error convention):
        a zero-result query says nothing a ratio can express, and
        without the floor a single empty result would slam the factor
        to its clamp.
        """
        estimated = max(float(estimated), 1.0)
        actual = max(float(actual), 1.0)
        ratio = actual / estimated
        q_error = max(ratio, 1.0 / ratio)
        with self._lock:
            self.samples.append({
                "estimated": round(estimated, 4),
                "actual": round(actual, 4),
                "q_error": round(q_error, 4),
            })
            self.factor = min(FACTOR_MAX, max(
                FACTOR_MIN, self.factor * ratio ** DAMPING))
        return q_error

    def median_q_error(self) -> float:
        """Median q-error over retained samples (1.0 when empty)."""
        with self._lock:
            errors = sorted(sample["q_error"] for sample in self.samples)
        if not errors:
            return 1.0
        return errors[len(errors) // 2]

    # -- persistence ----------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            factor = self.factor
            samples = list(self.samples)
        errors = sorted(sample["q_error"] for sample in samples)
        median = errors[len(errors) // 2] if errors else 1.0
        return {"factor": round(factor, 4),
                "samples": len(samples),
                "median_q_error": round(median, 4)}

    @classmethod
    def load(cls, path) -> "CostCalibration":
        """Load persisted calibration; missing/corrupt files start
        fresh (the file is an advisory cache, never authoritative)."""
        try:
            raw = json.loads(fsio.read_bytes(path).decode("utf-8"))
            factor = float(raw["factor"])
            samples = [sample for sample in raw.get("samples", [])
                       if isinstance(sample, dict)][-MAX_SAMPLES:]
        except (OSError, ValueError, KeyError, TypeError):
            return cls(path=path)
        return cls(path=path, factor=factor, samples=samples)

    def save(self) -> None:
        """Persist atomically (temp + rename) under ``self.path``."""
        if self.path is None:
            return
        with self._lock:
            payload = {"factor": self.factor,
                       "samples": list(self.samples)}
        data = json.dumps(payload, indent=1).encode("utf-8")
        temp = str(self.path) + ".tmp"
        fsio.write_bytes(temp, data)
        fsio.fsync_path(temp)
        fsio.replace(temp, self.path)

    def __repr__(self) -> str:
        return (f"CostCalibration(factor={self.factor:.3f}, "
                f"samples={len(self.samples)})")
