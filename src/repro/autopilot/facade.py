"""The autopilot facade: observe → advise → apply → calibrate.

:class:`Autopilot` ties the self-driving loop together on top of one
database:

* attaching it installs a :class:`~repro.autopilot.profiler.
  WorkloadProfiler` on the database (``database.workload_profiler``),
  which the executors feed on every statement, and guarantees a
  :class:`~repro.autopilot.calibrate.CostCalibration` exists
  (durable databases load theirs from the data directory);
* :meth:`advise` turns the accumulated profile into ranked CREATE
  INDEX candidates (:mod:`repro.autopilot.candidates`);
* :meth:`apply` executes the top candidates through the **online**
  build path (:meth:`Database.create_xml_index_online`), so running
  queries and writers proceed while the index backfills;
* :meth:`calibrate` replays hot statements under EXPLAIN ANALYZE,
  feeding index-scan q-errors back into the cost model.

:class:`AutoIndexPolicy` runs the advise→apply half on a background
daemon thread — the opt-in ``--auto-index`` mode of the CLI and
server.

Metrics (``autopilot.*``) follow the registry discipline: every
recording site is guarded by ``METRICS.enabled``.
"""

from __future__ import annotations

import threading

from ..obs.metrics import METRICS
from .calibrate import CostCalibration
from .candidates import generate_candidates
from .profiler import WorkloadProfiler

__all__ = ["Autopilot", "AutoIndexPolicy"]


class Autopilot:
    """Workload-driven index selection for one database."""

    def __init__(self, database, *, min_benefit: float = 0.0,
                 max_statements: int | None = None):
        self.database = database
        self.min_benefit = min_benefit
        profiler = getattr(database, "workload_profiler", None)
        if profiler is None:
            kwargs = ({"max_statements": max_statements}
                      if max_statements else {})
            profiler = WorkloadProfiler(**kwargs)
            database.workload_profiler = profiler
        self.profiler = profiler
        if getattr(database, "cost_calibration", None) is None:
            database.cost_calibration = CostCalibration()
        self.calibration = database.cost_calibration
        self.applied: list[str] = []    # DDL texts, in apply order
        self.last_advice: list = []

    # -- the loop -------------------------------------------------------

    def observe(self, statements) -> int:
        """Run a batch of statements so the profiler sees them.

        Convenience for replaying a captured workload; live traffic is
        profiled automatically once the autopilot is attached."""
        count = 0
        for statement in statements:
            self.database.execute_any(statement)
            count += 1
        return count

    def advise(self, tracer=None) -> list:
        """Ranked :class:`IndexCandidate` list for the observed load."""
        if tracer is not None:
            with tracer.span("autopilot.advise"):
                advice = generate_candidates(self.database, self.profiler)
        else:
            advice = generate_candidates(self.database, self.profiler)
        advice = [candidate for candidate in advice
                  if candidate.benefit > self.min_benefit]
        self.last_advice = advice
        if METRICS.enabled:
            METRICS.set_gauge("autopilot.candidates", len(advice))
        return advice

    def apply(self, limit: int | None = None, tracer=None) -> list:
        """Build the top ``limit`` advised indexes online.

        Returns the candidates actually built.  A candidate that lost
        a race with concurrent DDL is skipped, not fatal."""
        from ..errors import CatalogError
        built = []
        for candidate in self.advise(tracer=tracer)[:limit]:
            try:
                if tracer is not None:
                    with tracer.span("autopilot.build",
                                     index=candidate.name):
                        self.database.create_xml_index_online(
                            candidate.name, candidate.table,
                            candidate.column, candidate.pattern,
                            candidate.index_type)
                else:
                    self.database.create_xml_index_online(
                        candidate.name, candidate.table,
                        candidate.column, candidate.pattern,
                        candidate.index_type)
            except CatalogError:
                continue  # concurrent DDL won; advice is stale
            built.append(candidate)
            self.applied.append(candidate.ddl)
            if METRICS.enabled:
                METRICS.inc("autopilot.builds")
        return built

    def calibrate(self, statements=None, limit: int = 8) -> dict:
        """EXPLAIN ANALYZE hot statements; q-errors feed the model."""
        if statements is None:
            statements = [profile.exemplar for profile
                          in self.profiler.statements()[:limit]]
        for statement in statements:
            self.database.explain_analyze(statement)
        if METRICS.enabled:
            METRICS.set_gauge("autopilot.calibration_factor",
                              self.calibration.factor)
        return self.calibration.to_dict()

    # -- reporting ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "profile": self.profiler.to_dict(),
            "advice": [candidate.to_dict()
                       for candidate in self.last_advice],
            "applied": list(self.applied),
            "calibration": self.calibration.to_dict(),
        }

    def report(self) -> str:
        profile = self.profiler.to_dict()
        lines = [
            "autopilot:",
            f"  observed queries: {profile['queries_observed']}"
            f"  writes: {profile['writes_observed']}",
        ]
        for entry in profile["statements"][:10]:
            lines.append(
                f"  [{entry['count']}x {entry['language']}] "
                f"docs/query={entry['mean_docs_scanned']} "
                f"{entry['fingerprint'][:70]}")
        if self.last_advice:
            lines.append("  advice:")
            for candidate in self.last_advice:
                lines.append(f"    benefit={candidate.benefit:.0f} "
                             f"{candidate.ddl}")
        else:
            lines.append("  advice: (none)")
        for ddl in self.applied:
            lines.append(f"  applied: {ddl}")
        calibration = self.calibration.to_dict()
        lines.append(
            f"  calibration: factor={calibration['factor']} "
            f"median_q_error={calibration['median_q_error']} "
            f"samples={calibration['samples']}")
        return "\n".join(lines)


class AutoIndexPolicy:
    """Background advise→apply loop (the ``--auto-index`` mode).

    A daemon thread wakes every ``interval`` seconds, asks the
    autopilot for advice, and builds at most ``max_builds_per_cycle``
    indexes online.  Stopping is cooperative and bounded by one build.
    """

    def __init__(self, autopilot: Autopilot, interval: float = 1.0,
                 max_builds_per_cycle: int = 1):
        self.autopilot = autopilot
        self.interval = interval
        self.max_builds_per_cycle = max_builds_per_cycle
        self.cycles = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "AutoIndexPolicy":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-auto-index", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.run_once()

    def run_once(self) -> int:
        """One advise→apply cycle; returns how many indexes it built."""
        self.cycles += 1
        try:
            built = self.autopilot.apply(limit=self.max_builds_per_cycle)
        except Exception:  # lint: broad-except-ok (a background policy thread must never die and take auto-indexing with it; the cycle is retried at the next tick)
            self.errors += 1
            if METRICS.enabled:
                METRICS.inc("autopilot.policy_errors")
            return 0
        if METRICS.enabled:
            METRICS.inc("autopilot.policy_cycles")
        return len(built)

    def __enter__(self) -> "AutoIndexPolicy":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False
