"""Workload profiler: the autopilot's observation layer.

Every statement execution (``repro.planner.plan.execute_xquery`` and
``repro.sql.executor.execute_sql``) reports its text, its
:class:`~repro.planner.stats.ExecutionStats` and its wall time here
when a profiler is installed on the database
(``database.workload_profiler``); writers
(:meth:`Database.insert` / row deletion) report per-table write
counts.  The hook is the same cheap-guard shape as the metrics
discipline — an attribute load and a ``None`` check when profiling is
off.

Statements are aggregated by **fingerprint**: whitespace collapsed and
numeric literals masked to ``?``, so ``@price > 100`` and
``@price > 250`` are one workload entry.  String literals are *not*
masked — ``db2-fn:xmlcolumn('ORDERS.ORDDOC')`` vs
``('CUSTOMER.CDOC')`` are different collections and must profile
separately.

The profile is bounded on both axes: at most :data:`MAX_STATEMENTS`
distinct fingerprints (least-frequent evicted first) and a ring buffer
of the most recent raw observations for inspection.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..obs.metrics import METRICS

__all__ = ["StatementProfile", "WorkloadProfiler"]

#: Bound on distinct statement fingerprints retained.
MAX_STATEMENTS = 256
#: Bound on the raw-observation ring buffer.
RING_SIZE = 512

#: A numeric literal not embedded in an identifier (``db2-fn`` and
#: ``q12`` survive; ``> 100`` and ``1.5e3`` are masked).
_NUMBER_RE = re.compile(r"(?<![\w.])\d+(?:\.\d+)?(?:[eE][+-]?\d+)?(?!\w)")
_SPACE_RE = re.compile(r"\s+")


def fingerprint(statement: str) -> str:
    """Normalize a statement for workload aggregation."""
    masked = _NUMBER_RE.sub("?", statement)
    return _SPACE_RE.sub(" ", masked).strip()


@dataclass
class StatementProfile:
    """Aggregate behaviour of one normalized statement."""

    fingerprint: str
    exemplar: str                 # last raw text seen for this shape
    language: str                 # 'xquery' | 'sql'
    count: int = 0
    seconds_total: float = 0.0
    docs_scanned_total: int = 0
    rows_scanned_total: int = 0
    index_scans_total: int = 0
    indexes_used: set = field(default_factory=set)
    last_seen: float = 0.0

    @property
    def mean_docs_scanned(self) -> float:
        return self.docs_scanned_total / self.count if self.count else 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds_total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "language": self.language,
            "count": self.count,
            "mean_seconds": round(self.mean_seconds, 6),
            "mean_docs_scanned": round(self.mean_docs_scanned, 2),
            "index_scans": self.index_scans_total,
            "indexes_used": sorted(self.indexes_used),
        }


class WorkloadProfiler:
    """Bounded, thread-safe profile of observed statements and writes.

    Takes its own lock (never the database's): observation happens on
    the query path after the engine released its read lock, and must
    not serialize readers against each other beyond a dict update.
    """

    def __init__(self, max_statements: int = MAX_STATEMENTS,
                 ring_size: int = RING_SIZE):
        self.max_statements = max_statements
        self._lock = threading.Lock()
        self.profiles: dict[str, StatementProfile] = {}
        self.recent: deque = deque(maxlen=ring_size)
        self.write_counts: dict[str, int] = {}
        self.total_queries = 0
        self.total_writes = 0

    # -- observation hooks ---------------------------------------------

    def observe_query(self, statement: str, language: str, stats,
                      seconds: float) -> None:
        """Called by the executors after every successful statement."""
        key = fingerprint(statement)
        now = time.monotonic()
        with self._lock:
            profile = self.profiles.get(key)
            if profile is None:
                if len(self.profiles) >= self.max_statements:
                    self._evict_least_frequent()
                profile = StatementProfile(key, statement, language)
                self.profiles[key] = profile
            profile.exemplar = statement
            profile.count += 1
            profile.seconds_total += seconds
            profile.docs_scanned_total += getattr(stats, "docs_scanned", 0)
            profile.rows_scanned_total += getattr(stats, "rows_scanned", 0)
            profile.index_scans_total += getattr(stats, "index_scans", 0)
            profile.indexes_used.update(
                getattr(stats, "indexes_used", ()) or ())
            profile.last_seen = now
            self.total_queries += 1
            self.recent.append((key, language, seconds))
        if METRICS.enabled:
            METRICS.inc("autopilot.observations")

    def observe_write(self, table: str, count: int = 1) -> None:
        """Called by the catalog after inserts/deletes commit."""
        with self._lock:
            self.write_counts[table] = \
                self.write_counts.get(table, 0) + count
            self.total_writes += count

    def _evict_least_frequent(self) -> None:
        victim = min(self.profiles.values(),
                     key=lambda profile: (profile.count,
                                          profile.last_seen))
        del self.profiles[victim.fingerprint]

    # -- reading --------------------------------------------------------

    def statements(self) -> list[StatementProfile]:
        """Profiles ordered by observed frequency (hottest first)."""
        with self._lock:
            profiles = list(self.profiles.values())
        return sorted(profiles, key=lambda profile: -profile.count)

    def write_rate(self, table: str) -> int:
        with self._lock:
            return self.write_counts.get(table, 0)

    def to_dict(self) -> dict:
        with self._lock:
            writes = dict(self.write_counts)
            totals = (self.total_queries, self.total_writes)
        return {
            "queries_observed": totals[0],
            "writes_observed": totals[1],
            "write_counts": writes,
            "statements": [profile.to_dict()
                           for profile in self.statements()],
        }
