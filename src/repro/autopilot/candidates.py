"""Candidate index generation + benefit estimation.

The advisor (:mod:`repro.core.advisor`) explains *why* a query's
predicates cannot use the indexes that exist; this module takes the
next step and proposes the indexes that *should* exist.  For every
profiled statement it re-extracts the predicate candidates the
eligibility checker works from, keeps the ones that are filtering and
typed (i.e. an index could legally answer them — Definition 1's
context and type legs), renders the predicate's root-to-node path back
into CREATE INDEX XMLPATTERN DDL, and — crucially — closes the loop by
running the rendered index through :func:`repro.core.eligibility.
check_index` against the very predicate that motivated it.  A
recommendation that fails its own eligibility check is discarded, so
the autopilot can never advise DDL it would refuse to use.

Benefit is estimated from *observed* workload numbers, not guesses::

    benefit = frequency × (mean docs scanned  −  estimated probe docs)
              − maintenance_weight × observed writes to the table

where the probe estimate is the path-summary document count
(``docs_with_path``) scaled by a default key selectivity — the same
structural statistic the cost model uses, so advisor and planner agree
about what an index is worth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.eligibility import check_index
from ..core.predicates import FILTERING_CONTEXTS
from ..errors import ReproError
from ..storage.xmlindex import INDEX_TYPE_TO_XDM, XmlIndex

__all__ = ["IndexCandidate", "generate_candidates", "render_xmlpattern"]

#: Assumed key selectivity of a typed probe when no histogram exists
#: yet (the index is hypothetical, so it cannot have one).
DEFAULT_SELECTIVITY = 0.25
#: One maintained index entry costs about as much as scanning one
#: document during a bulk write — the units both sides of the benefit
#: subtraction are expressed in.
MAINTENANCE_WEIGHT = 1.0


@dataclass
class IndexCandidate:
    """One recommended CREATE INDEX, with its evidence."""

    name: str
    table: str
    column: str
    pattern: str
    index_type: str
    benefit: float = 0.0
    frequency: int = 0
    statements: list = field(default_factory=list)  # fingerprints

    @property
    def ddl(self) -> str:
        pattern = self.pattern.replace("'", "''")
        return (f"CREATE INDEX {self.name} ON {self.table}"
                f"({self.column}) USING XMLPATTERN '{pattern}' "
                f"AS SQL {self.index_type}")

    def to_dict(self) -> dict:
        return {
            "name": self.name, "table": self.table,
            "column": self.column, "pattern": self.pattern,
            "type": self.index_type, "ddl": self.ddl,
            "benefit": round(self.benefit, 2),
            "frequency": self.frequency,
            "statements": list(self.statements),
        }


# ---------------------------------------------------------------------------
# PathPattern -> XMLPATTERN rendering
# ---------------------------------------------------------------------------

def _render_test(test, namespaces: dict[str, str]) -> str | None:
    """Render one StepTest, registering namespace prefixes as needed."""
    if test.kind == "text":
        return "text()"
    if test.kind not in ("element", "attribute"):
        return None  # comment()/PI/node() predicates are not worth DDL
    prefix = "@" if test.kind == "attribute" else ""
    if test.local is None:
        if test.uri:  # ns:* needs a declared prefix
            return f"{prefix}{_prefix_for(test.uri, namespaces)}:*"
        return None  # bare wildcard step: too broad to recommend
    if test.uri is None:
        return f"{prefix}*:{test.local}"
    if test.uri == "":
        return f"{prefix}{test.local}"
    return f"{prefix}{_prefix_for(test.uri, namespaces)}:{test.local}"


def _prefix_for(uri: str, namespaces: dict[str, str]) -> str:
    prefix = namespaces.get(uri)
    if prefix is None:
        prefix = f"p{len(namespaces) + 1}"
        namespaces[uri] = prefix
    return prefix


def render_xmlpattern(path) -> str | None:
    """Render a predicate's PathPattern as XMLPATTERN DDL text.

    A single linear alternative without self-tests renders exactly;
    otherwise fall back to ``//<final test>`` when every alternative
    ends in the same renderable test (less restrictive than the
    predicate path, hence still containing — the caller re-verifies
    with :func:`check_index` regardless).  Returns None when nothing
    sensible can be rendered.
    """
    namespaces: dict[str, str] = {}
    body = None
    if len(path.alternatives) == 1:
        body = _render_linear(path.alternatives[0], namespaces)
    if body is None:
        namespaces = {}
        finals = {
            _render_test(alternative.final_test, namespaces)
            for alternative in path.alternatives}
        if len(finals) == 1:
            final = finals.pop()
            if final is not None:
                body = f"//{final}"
    if body is None:
        return None
    declarations = "".join(
        f'declare namespace {prefix}="{uri}"; '
        for uri, prefix in namespaces.items())
    return declarations + body


def _render_linear(alternative, namespaces: dict[str, str]) -> str | None:
    parts = []
    for step in alternative.steps:
        if step.extra_tests:
            return None  # self:: refinements: use the // fallback
        rendered = _render_test(step.test, namespaces)
        if rendered is None:
            return None
        parts.append(("//" if step.gap else "/") + rendered)
    return "".join(parts) if parts else None


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def _statement_candidates(database, profile):
    """The predicate candidates of one profiled statement."""
    if profile.language == "sql":
        from ..sql.analyzer import extract_sql_candidates
        return extract_sql_candidates(database, profile.exemplar)
    from ..core.querycache import compile_query
    return list(compile_query(profile.exemplar).candidates)


def _wanted_type(candidate) -> str | None:
    """The index type that could serve this predicate, or None."""
    if candidate.op == "exists":
        return "VARCHAR"        # §2.1: every node appears in VARCHAR
    if candidate.operand_type in INDEX_TYPE_TO_XDM:
        return candidate.operand_type
    return None                 # TYPE_UNKNOWN — Tip 1, nothing helps


def _already_served(database, candidate) -> bool:
    table, _sep, column = candidate.column.partition(".")
    try:
        indexes = database.xml_indexes_on(table, column)
    except ReproError:
        return False
    return any(check_index(index, candidate).eligible
               for index in indexes)


def _unique_name(database, base: str, pending: set) -> str:
    taken = set(database.xml_indexes) | set(
        getattr(database, "rel_indexes", ()) or ()) | pending
    name = base
    suffix = 2
    while name.lower() in taken:
        name = f"{base}_{suffix}"
        suffix += 1
    pending.add(name.lower())
    return name


def generate_candidates(database, profiler,
                        maintenance_weight: float = MAINTENANCE_WEIGHT
                        ) -> list[IndexCandidate]:
    """Recommend CREATE INDEX DDL for the observed workload.

    Returns candidates with positive estimated benefit, ranked best
    first.  Every returned candidate has passed :func:`check_index`
    against the predicate that motivated it.
    """
    merged: dict[tuple, IndexCandidate] = {}
    pending_names: set = set()
    for profile in profiler.statements():
        try:
            candidates = _statement_candidates(database, profile)
        except ReproError:
            continue  # e.g. statement references a dropped table
        for candidate in candidates:
            wanted = _wanted_type(candidate)
            if wanted is None:
                continue
            if candidate.negated or candidate.uses_sql_comparison:
                continue
            if candidate.context not in FILTERING_CONTEXTS:
                continue
            if _already_served(database, candidate):
                continue
            pattern = render_xmlpattern(candidate.path)
            if pattern is None:
                continue
            table, _sep, column = candidate.column.partition(".")
            key = (table, column, pattern, wanted)
            entry = merged.get(key)
            if entry is None:
                # The prospective index must pass the same Definition-1
                # check the planner will apply — never advise DDL that
                # would be ineligible for its own motivating predicate.
                local = candidate.path.final_tests()[0].local or "node"
                base = f"auto_{table}_{local}_{wanted.lower()}"
                try:
                    prospective = XmlIndex(base, table, column,
                                           pattern, wanted)
                except ReproError:
                    continue
                if not check_index(prospective, candidate).eligible:
                    continue
                entry = IndexCandidate(
                    _unique_name(database, base, pending_names),
                    table, column, pattern, wanted)
                merged[key] = entry
            entry.frequency += profile.count
            entry.benefit += profile.count * _per_query_savings(
                database, profile, candidate, table, column)
            if profile.fingerprint not in entry.statements:
                entry.statements.append(profile.fingerprint)

    ranked = []
    for entry in merged.values():
        entry.benefit -= maintenance_weight * profiler.write_rate(
            entry.table)
        if entry.benefit > 0:
            ranked.append(entry)
    ranked.sort(key=lambda entry: (-entry.benefit, entry.name))
    return _dedupe_by_containment(ranked)


def _dedupe_by_containment(ranked: list[IndexCandidate]
                           ) -> list[IndexCandidate]:
    """Drop a candidate whose pattern a higher-ranked same-typed
    candidate already contains — the broader index serves every
    predicate the narrower one would (§2.2), so the narrower DDL is
    pure maintenance overhead.  Its evidence folds into the keeper."""
    from ..core.patterns import parse_xmlpattern, pattern_contains
    kept: list[IndexCandidate] = []
    for entry in ranked:
        keeper = None
        for other in kept:
            if (other.table, other.column, other.index_type) != \
                    (entry.table, entry.column, entry.index_type):
                continue
            if pattern_contains(parse_xmlpattern(other.pattern),
                                parse_xmlpattern(entry.pattern)):
                keeper = other
                break
        if keeper is None:
            kept.append(entry)
            continue
        keeper.frequency += entry.frequency
        for fingerprint in entry.statements:
            if fingerprint not in keeper.statements:
                keeper.statements.append(fingerprint)
    return kept


def _per_query_savings(database, profile, candidate,
                       table: str, column: str) -> float:
    """Docs a probe would save one execution, from observed scan cost
    and the path summary's structural document count."""
    scanned = profile.mean_docs_scanned
    if scanned <= 0:
        # SQL paths may not materialize documents; fall back to rows.
        scanned = (profile.rows_scanned_total / profile.count
                   if profile.count else 0.0)
    try:
        covered = database.docs_with_path(table, column, candidate.path)
    except ReproError:
        covered = 0
    probe_docs = covered * DEFAULT_SELECTIVITY
    return max(0.0, scanned - probe_docs)
