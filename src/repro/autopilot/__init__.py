"""Self-driving indexing: observe the workload, advise DDL, build
online, calibrate the cost model.

The package closes the loop the rest of the engine leaves open: the
eligibility checker says whether an index *can* serve a query, the
advisor says *why not* — the autopilot watches what actually runs
(:mod:`.profiler`), proposes the indexes the workload deserves
(:mod:`.candidates`), builds them without stopping writers
(:meth:`repro.storage.catalog.Database.create_xml_index_online`), and
feeds EXPLAIN ANALYZE estimation errors back into the planner's cost
model (:mod:`.calibrate`).

Entry points: ``database.autopilot()``, the ``repro autopilot`` CLI
command, and ``repro serve --auto-index``.
"""

from .calibrate import CostCalibration
from .candidates import IndexCandidate, generate_candidates
from .facade import AutoIndexPolicy, Autopilot
from .profiler import WorkloadProfiler

__all__ = [
    "Autopilot", "AutoIndexPolicy", "CostCalibration",
    "IndexCandidate", "WorkloadProfiler", "generate_candidates",
]
