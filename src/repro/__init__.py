"""repro — a reproduction of "On the Path to Efficient XML Queries"
(Balmin, Beyer, Özcan, Nicola; VLDB 2006).

The package implements a DB2-Viper-style XML database in pure Python:

* an XQuery Data Model substrate (:mod:`repro.xdm`),
* a namespace-aware XML parser and serializer (:mod:`repro.xmlio`),
* per-document schema-lite validation (:mod:`repro.schema`),
* an XQuery engine (:mod:`repro.xquery`),
* an SQL/XML engine with XMLQUERY / XMLEXISTS / XMLTABLE / XMLCAST
  (:mod:`repro.sql`),
* B+Tree-backed, path-typed XML value indexes (:mod:`repro.storage`),
* the paper's core contribution — an index **eligibility analyzer** and
  pitfall **advisor** (:mod:`repro.core`), and
* a planner that turns eligibility verdicts into index-prefilter plans
  (:mod:`repro.planner`).

Quickstart::

    from repro import Database

    db = Database()
    db.create_table("orders", [("ordid", "INTEGER"), ("orddoc", "XML")])
    db.insert("orders", {"ordid": 1, "orddoc": "<order><lineitem "
                         "price='120.0'/></order>"})
    db.execute("CREATE INDEX li_price ON orders(orddoc) "
               "USING XMLPATTERN '//lineitem/@price' AS DOUBLE")
    result = db.xquery(
        "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100]")
"""

from .analysis.sanitizer import install_from_env as _install_sanitizer
from .errors import ReproError, SQLError, XMLParseError, XQueryError
from .xmlio import parse_document as parse_xml
from .xmlio import serialize, serialize_sequence

__version__ = "1.0.0"

# REPRO_SANITIZE=1 turns on the runtime concurrency sanitizer for the
# whole process (see repro/analysis/sanitizer.py); off by default and
# a single `is None` test per lock operation when off.
_install_sanitizer()

__all__ = [
    "Database", "DurableDatabase", "ReproError", "SQLError",
    "XMLParseError", "XQueryError", "advise", "analyze_eligibility",
    "parse_xml", "serialize", "serialize_sequence", "__version__",
]


def __getattr__(name: str):
    # Late imports keep `import repro` cheap and avoid import cycles
    # while the heavier engine modules are loaded on first use.
    if name == "Database":
        from .storage.catalog import Database
        return Database
    if name == "DurableDatabase":
        from .durability.engine import DurableDatabase
        return DurableDatabase
    if name == "analyze_eligibility":
        from .core.eligibility import analyze_eligibility
        return analyze_eligibility
    if name == "advise":
        from .core.advisor import advise
        return advise
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
