"""Expanded qualified names and well-known namespace URIs.

An expanded QName is a (namespace-uri, local-name) pair; the prefix is
presentation only.  Namespace handling is central to the paper's Section
3.7: an index defined without a namespace stores only nodes in the empty
namespace, and default element namespaces do not apply to attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Well-known namespace URIs.
XS_NS = "http://www.w3.org/2001/XMLSchema"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
FN_NS = "http://www.w3.org/2005/xpath-functions"
XDT_NS = "http://www.w3.org/2005/xpath-datatypes"
XML_NS = "http://www.w3.org/XML/1998/namespace"
XMLNS_NS = "http://www.w3.org/2000/xmlns/"
DB2FN_NS = "http://www.ibm.com/xmlns/prod/db2/functions"

#: Prefixes predeclared in every XQuery static context.
DEFAULT_PREFIXES = {
    "xs": XS_NS,
    "xsi": XSI_NS,
    "fn": FN_NS,
    "xdt": XDT_NS,
    "xml": XML_NS,
    "db2-fn": DB2FN_NS,
    "local": "http://www.w3.org/2005/xquery-local-functions",
}


@dataclass(frozen=True, slots=True)
class QName:
    """An expanded QName.

    ``uri`` is ``""`` for names in no namespace.  ``prefix`` is retained
    for serialization but ignored by equality and hashing.
    """

    uri: str
    local: str
    prefix: str = ""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QName):
            return NotImplemented
        return self.uri == other.uri and self.local == other.local

    def __hash__(self) -> int:
        return hash((self.uri, self.local))

    def __str__(self) -> str:
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        if self.uri:
            return f"{{{self.uri}}}{self.local}"
        return self.local

    @property
    def lexical(self) -> str:
        """Prefixed lexical form (``prefix:local`` or ``local``)."""
        return f"{self.prefix}:{self.local}" if self.prefix else self.local

    def clark(self) -> str:
        """Clark notation: ``{uri}local``."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local


def parse_lexical_qname(text: str, namespaces: dict[str, str],
                        default_ns: str = "") -> QName:
    """Resolve a lexical QName against in-scope namespace bindings.

    ``default_ns`` is applied to unprefixed names (use ``""`` for
    attribute names, which never take the default element namespace).
    """
    from ..errors import XQueryStaticError

    if ":" in text:
        prefix, local = text.split(":", 1)
        if prefix not in namespaces:
            raise XQueryStaticError(
                f"undeclared namespace prefix {prefix!r}", code="XPST0081")
        return QName(namespaces[prefix], local, prefix)
    return QName(default_ns, text)
