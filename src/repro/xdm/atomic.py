"""Atomic values of the XQuery Data Model and the casting lattice.

The repertoire covers every type the paper exercises:

* ``xs:string`` and ``xdt:untypedAtomic`` — the §3.1 distinction between
  string predicates (``"100"``) and numeric ones (``100``);
* ``xs:double``, ``xs:decimal``, ``xs:integer``, ``xs:long`` — the §3.6
  long-integer pitfall relies on xs:long comparing exactly while
  untypedAtomic operands are converted to double and lose precision;
* ``xs:boolean`` — the XMLEXISTS pitfall of Query 9;
* ``xs:date`` / ``xs:dateTime`` — the two temporal index types of §2.1.

Casting follows the XPath 2.0 casting table restricted to these types.
"""

from __future__ import annotations

import datetime as _dt
import math
import re
from decimal import Decimal, InvalidOperation

from ..errors import CastError, XQueryTypeError

# Canonical type names, used as dictionary keys throughout the engine.
T_STRING = "xs:string"
T_UNTYPED = "xdt:untypedAtomic"
T_DOUBLE = "xs:double"
T_DECIMAL = "xs:decimal"
T_INTEGER = "xs:integer"
T_LONG = "xs:long"
T_BOOLEAN = "xs:boolean"
T_DATE = "xs:date"
T_DATETIME = "xs:dateTime"
T_QNAME = "xs:QName"
T_ANY_ATOMIC = "xdt:anyAtomicType"

#: Numeric types ordered by promotion priority (integer < decimal < double).
NUMERIC_TYPES = (T_INTEGER, T_LONG, T_DECIMAL, T_DOUBLE)

#: type -> base type, for subtype checks (integer ⊆ decimal, etc.).
_BASE_TYPE = {
    T_LONG: T_INTEGER,
    T_INTEGER: T_DECIMAL,
    T_DECIMAL: T_ANY_ATOMIC,
    T_DOUBLE: T_ANY_ATOMIC,
    T_STRING: T_ANY_ATOMIC,
    T_UNTYPED: T_ANY_ATOMIC,
    T_BOOLEAN: T_ANY_ATOMIC,
    T_DATE: T_ANY_ATOMIC,
    T_DATETIME: T_ANY_ATOMIC,
    T_QNAME: T_ANY_ATOMIC,
}


def is_subtype(type_name: str, of: str) -> bool:
    """True when ``type_name`` equals ``of`` or derives from it."""
    current: str | None = type_name
    while current is not None:
        if current == of:
            return True
        current = _BASE_TYPE.get(current)
    return of == T_ANY_ATOMIC and type_name in _BASE_TYPE


class AtomicValue:
    """An immutable atomic value with a type annotation.

    ``value`` holds the Python-native representation:

    =================  =======================================
    xs:string/untyped  str
    xs:double          float
    xs:decimal         decimal.Decimal
    xs:integer/long    int
    xs:boolean         bool
    xs:date            datetime.date
    xs:dateTime        datetime.datetime
    =================  =======================================
    """

    __slots__ = ("type_name", "value")

    def __init__(self, type_name: str, value):
        object.__setattr__(self, "type_name", type_name)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("AtomicValue is immutable")

    def __copy__(self) -> "AtomicValue":
        return self  # immutable

    def __deepcopy__(self, memo) -> "AtomicValue":
        return self  # immutable

    def __repr__(self) -> str:
        return f"{self.type_name}({self.string_value()!r})"

    def __eq__(self, other: object) -> bool:
        """Structural (Python-level) equality used by tests and dedup.

        XQuery comparison semantics live in :mod:`repro.xdm.compare`;
        this is deliberately strict: same type annotation, same value.
        """
        if not isinstance(other, AtomicValue):
            return NotImplemented
        return self.type_name == other.type_name and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.type_name, str(self.value)))

    # -- accessors ---------------------------------------------------

    def string_value(self) -> str:
        """The lexical (canonical-ish) string form of the value."""
        name = self.type_name
        if name in (T_STRING, T_UNTYPED):
            return self.value
        if name == T_BOOLEAN:
            return "true" if self.value else "false"
        if name == T_DOUBLE:
            return format_double(self.value)
        if name == T_DECIMAL:
            return format_decimal(self.value)
        if name in (T_INTEGER, T_LONG):
            return str(self.value)
        if name == T_DATE:
            return self.value.isoformat()
        if name == T_DATETIME:
            return format_datetime(self.value)
        if name == T_QNAME:
            return str(self.value)
        raise XQueryTypeError(f"no string value for {name}")

    @property
    def is_numeric(self) -> bool:
        return self.type_name in NUMERIC_TYPES

    @property
    def is_untyped(self) -> bool:
        return self.type_name == T_UNTYPED


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def string(value: str) -> AtomicValue:
    return AtomicValue(T_STRING, value)


def untyped(value: str) -> AtomicValue:
    return AtomicValue(T_UNTYPED, value)


def double(value: float) -> AtomicValue:
    return AtomicValue(T_DOUBLE, float(value))


def decimal(value) -> AtomicValue:
    return AtomicValue(T_DECIMAL, Decimal(value))


def integer(value: int) -> AtomicValue:
    return AtomicValue(T_INTEGER, int(value))


def long_integer(value: int) -> AtomicValue:
    return AtomicValue(T_LONG, int(value))


def boolean(value: bool) -> AtomicValue:
    return AtomicValue(T_BOOLEAN, bool(value))


def date(value: _dt.date) -> AtomicValue:
    return AtomicValue(T_DATE, value)


def date_time(value: _dt.datetime) -> AtomicValue:
    return AtomicValue(T_DATETIME, value)


TRUE = boolean(True)
FALSE = boolean(False)


# ---------------------------------------------------------------------------
# Lexical parsing / formatting
# ---------------------------------------------------------------------------

_DOUBLE_RE = re.compile(
    r"^[+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?$|^[+-]?INF$|^NaN$")
_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+(\.\d*)?|\.\d+)$")
_DATE_RE = re.compile(r"^(-?\d{4,})-(\d{2})-(\d{2})(Z|[+-]\d{2}:\d{2})?$")
_DATETIME_RE = re.compile(
    r"^(-?\d{4,})-(\d{2})-(\d{2})T(\d{2}):(\d{2}):(\d{2})(\.\d+)?"
    r"(Z|[+-]\d{2}:\d{2})?$")


def format_double(value: float) -> str:
    """Serialize a double roughly per the XML Schema canonical form."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def format_decimal(value: Decimal) -> str:
    text = format(value, "f")
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def format_datetime(value: _dt.datetime) -> str:
    text = value.isoformat()
    return text.replace("+00:00", "Z")


def _parse_timezone(token: str | None) -> _dt.tzinfo | None:
    if not token:
        return None
    if token == "Z":
        return _dt.timezone.utc
    sign = 1 if token[0] == "+" else -1
    hours, minutes = int(token[1:3]), int(token[4:6])
    return _dt.timezone(sign * _dt.timedelta(hours=hours, minutes=minutes))


def parse_date(text: str) -> _dt.date:
    match = _DATE_RE.match(text.strip())
    if not match:
        raise CastError(f"invalid xs:date literal {text!r}")
    year, month, day = int(match.group(1)), int(match.group(2)), int(match.group(3))
    try:
        return _dt.date(year, month, day)
    except ValueError as exc:
        raise CastError(f"invalid xs:date literal {text!r}: {exc}") from exc


def parse_date_time(text: str) -> _dt.datetime:
    match = _DATETIME_RE.match(text.strip())
    if not match:
        raise CastError(f"invalid xs:dateTime literal {text!r}")
    year, month, day = int(match.group(1)), int(match.group(2)), int(match.group(3))
    hour, minute, second = int(match.group(4)), int(match.group(5)), int(match.group(6))
    fraction = match.group(7)
    microsecond = int(round(float(fraction) * 1_000_000)) if fraction else 0
    tz = _parse_timezone(match.group(8))
    try:
        return _dt.datetime(year, month, day, hour, minute, second,
                            microsecond, tzinfo=tz)
    except ValueError as exc:
        raise CastError(f"invalid xs:dateTime literal {text!r}: {exc}") from exc


def parse_double(text: str) -> float:
    stripped = text.strip()
    if not _DOUBLE_RE.match(stripped):
        raise CastError(f"cannot cast {text!r} to xs:double")
    if stripped == "NaN":
        return math.nan
    if stripped.endswith("INF"):
        return math.inf if not stripped.startswith("-") else -math.inf
    return float(stripped)


def parse_boolean(text: str) -> bool:
    stripped = text.strip()
    if stripped in ("true", "1"):
        return True
    if stripped in ("false", "0"):
        return False
    raise CastError(f"cannot cast {text!r} to xs:boolean")


# ---------------------------------------------------------------------------
# Casting
# ---------------------------------------------------------------------------

#: Long range per XML Schema.
LONG_MIN, LONG_MAX = -(2 ** 63), 2 ** 63 - 1


def cast(value: AtomicValue, target: str) -> AtomicValue:
    """Cast ``value`` to atomic type ``target`` (raises CastError)."""
    source = value.type_name
    if source == target:
        return value

    # Everything casts to string / untypedAtomic via the string value.
    if target == T_STRING:
        return string(value.string_value())
    if target == T_UNTYPED:
        return untyped(value.string_value())

    # From string-ish sources: parse the lexical form.
    if source in (T_STRING, T_UNTYPED):
        return _cast_from_text(value.value, target)

    if target == T_DOUBLE:
        if value.is_numeric:
            return double(float(value.value))
        if source == T_BOOLEAN:
            return double(1.0 if value.value else 0.0)
        raise CastError(f"cannot cast {source} to xs:double")
    if target == T_DECIMAL:
        if source == T_DOUBLE:
            if math.isnan(value.value) or math.isinf(value.value):
                raise CastError("cannot cast NaN/INF to xs:decimal")
            return decimal(Decimal(repr(value.value)))
        if value.is_numeric:
            return decimal(Decimal(value.value))
        if source == T_BOOLEAN:
            return decimal(1 if value.value else 0)
        raise CastError(f"cannot cast {source} to xs:decimal")
    if target in (T_INTEGER, T_LONG):
        if source == T_DOUBLE:
            if math.isnan(value.value) or math.isinf(value.value):
                raise CastError("cannot cast NaN/INF to xs:integer")
            result = int(value.value)
        elif value.is_numeric:
            result = int(value.value)
        elif source == T_BOOLEAN:
            result = 1 if value.value else 0
        else:
            raise CastError(f"cannot cast {source} to {target}")
        if target == T_LONG and not LONG_MIN <= result <= LONG_MAX:
            raise CastError(f"{result} out of xs:long range")
        return AtomicValue(target, result)
    if target == T_BOOLEAN:
        if value.is_numeric:
            number = float(value.value)
            return boolean(not (number == 0 or math.isnan(number)))
        raise CastError(f"cannot cast {source} to xs:boolean")
    if target == T_DATETIME and source == T_DATE:
        base = value.value
        return date_time(_dt.datetime(base.year, base.month, base.day))
    if target == T_DATE and source == T_DATETIME:
        return date(value.value.date())
    raise CastError(f"cannot cast {source} to {target}")


def _cast_from_text(text: str, target: str) -> AtomicValue:
    stripped = text.strip()
    if target == T_DOUBLE:
        return double(parse_double(stripped))
    if target == T_DECIMAL:
        if not _DECIMAL_RE.match(stripped):
            raise CastError(f"cannot cast {text!r} to xs:decimal")
        try:
            return decimal(Decimal(stripped))
        except InvalidOperation as exc:
            raise CastError(f"cannot cast {text!r} to xs:decimal") from exc
    if target in (T_INTEGER, T_LONG):
        if not _INTEGER_RE.match(stripped):
            raise CastError(f"cannot cast {text!r} to {target}")
        result = int(stripped)
        if target == T_LONG and not LONG_MIN <= result <= LONG_MAX:
            raise CastError(f"{result} out of xs:long range")
        return AtomicValue(target, result)
    if target == T_BOOLEAN:
        return boolean(parse_boolean(stripped))
    if target == T_DATE:
        return date(parse_date(stripped))
    if target == T_DATETIME:
        return date_time(parse_date_time(stripped))
    raise CastError(f"cannot cast to unknown type {target}")


def castable(value: AtomicValue, target: str) -> bool:
    try:
        cast(value, target)
    except CastError:
        return False
    return True


def promote_numeric_pair(left: AtomicValue, right: AtomicValue
                         ) -> tuple[AtomicValue, AtomicValue]:
    """Promote two numeric values to their least common numeric type.

    xs:long pairs compare exactly as integers; mixing with xs:double
    converts both to double — the precision-loss behaviour Section 3.6
    (item 2) warns about.
    """
    if not (left.is_numeric and right.is_numeric):
        raise XQueryTypeError(
            f"numeric operation on {left.type_name} and {right.type_name}")
    if T_DOUBLE in (left.type_name, right.type_name):
        return cast(left, T_DOUBLE), cast(right, T_DOUBLE)
    if T_DECIMAL in (left.type_name, right.type_name):
        return cast(left, T_DECIMAL), cast(right, T_DECIMAL)
    return left, right
