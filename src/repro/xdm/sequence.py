"""Sequence operations: atomization, effective boolean value, dedup.

XDM sequences are flat (no nesting — the property Section 3.4 uses:
"sequence concatenation also discards empty sequences").  We represent a
sequence as a plain Python ``list`` of items, where an item is either a
:class:`~repro.xdm.nodes.Node` or an
:class:`~repro.xdm.atomic.AtomicValue`.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

from ..errors import XQueryTypeError
from .atomic import (AtomicValue, T_BOOLEAN, T_STRING, T_UNTYPED,
                     boolean)
from .nodes import Node

Item = Union[Node, AtomicValue]
Sequence = list  # list[Item]


def is_node(item: Item) -> bool:
    return isinstance(item, Node)


def atomize(items: Iterable[Item]) -> list[AtomicValue]:
    """fn:data() — replace each node by its typed value.

    A list-typed node contributes several atomics, which is why a
    "singleton" path can still atomize to more than one value (the
    §3.10 list-type caveat).
    """
    result: list[AtomicValue] = []
    for item in items:
        if isinstance(item, Node):
            result.extend(item.typed_value())
        else:
            result.append(item)
    return result


def effective_boolean_value(items: list[Item]) -> bool:
    """fn:boolean() — the EBV rules of XPath 2.0.

    Crucially for Query 9: a singleton ``xs:boolean`` sequence has its
    own value as EBV, but *any* non-empty sequence starting with a node
    is true — and XMLEXISTS tests non-emptiness, not EBV, so a boolean
    ``false`` inside XMLEXISTS still counts as "exists".
    """
    if not items:
        return False
    first = items[0]
    if isinstance(first, Node):
        return True
    if len(items) > 1:
        raise XQueryTypeError(
            "effective boolean value of multi-item atomic sequence",
            code="FORG0006")
    if first.type_name == T_BOOLEAN:
        return bool(first.value)
    if first.type_name in (T_STRING, T_UNTYPED):
        return len(first.value) > 0
    if first.is_numeric:
        number = float(first.value)
        return not (number == 0 or math.isnan(number))
    raise XQueryTypeError(
        f"no effective boolean value for {first.type_name}", code="FORG0006")


def document_order(nodes: Iterable[Node]) -> list[Node]:
    """Sort nodes by document order and remove duplicates by identity.

    This is the implicit behaviour of path expressions and the explicit
    behaviour of ``union``/``intersect``/``except``.
    """
    materialized = nodes if isinstance(nodes, list) else list(nodes)
    # Fast path: strictly increasing document-order keys mean the
    # sequence is already sorted and duplicate-free — O(n) key reads
    # (cached after the tree is numbered), no set, no sort.
    previous: tuple[int, int] | None = None
    for node in materialized:
        key = node.document_order_key()
        if previous is not None and key <= previous:
            break
        previous = key
    else:
        return list(materialized)
    seen: set[int] = set()
    unique: list[Node] = []
    for node in materialized:
        if node.node_id not in seen:
            seen.add(node.node_id)
            unique.append(node)
    unique.sort(key=lambda node: node.document_order_key())
    return unique


def require_nodes(items: list[Item], operation: str) -> list[Node]:
    for item in items:
        if not isinstance(item, Node):
            raise XQueryTypeError(
                f"{operation} requires nodes, got {item!r}", code="XPTY0004")
    return items  # type: ignore[return-value]


def singleton(items: list[Item], operation: str) -> Item:
    if len(items) != 1:
        raise XQueryTypeError(
            f"{operation} requires a singleton sequence, got "
            f"{len(items)} items", code="XPTY0004")
    return items[0]


def string_join_values(values: list[AtomicValue], separator: str = " ") -> str:
    return separator.join(value.string_value() for value in values)


def as_boolean_item(value: bool) -> AtomicValue:
    return boolean(value)
