"""XQuery Data Model (XDM) substrate.

Exports the node classes, atomic values, and comparison semantics that
the parser, XQuery engine, SQL/XML engine, and indexes all share.
"""

from .atomic import (AtomicValue, T_BOOLEAN, T_DATE, T_DATETIME, T_DECIMAL,
                     T_DOUBLE, T_INTEGER, T_LONG, T_STRING, T_UNTYPED,
                     boolean, cast, castable, date, date_time, decimal,
                     double, integer, long_integer, string, untyped)
from .compare import general_compare, node_compare, value_compare
from .nodes import (AttributeNode, CommentNode, DocumentNode, ElementNode,
                    Node, ProcessingInstructionNode, TextNode, UNTYPED_ELEMENT,
                    copy_node)
from .qname import QName
from .sequence import (Item, atomize, document_order,
                       effective_boolean_value, is_node, singleton)

__all__ = [
    "AtomicValue", "AttributeNode", "CommentNode", "DocumentNode",
    "ElementNode", "Item", "Node", "ProcessingInstructionNode", "QName",
    "TextNode", "UNTYPED_ELEMENT",
    "T_BOOLEAN", "T_DATE", "T_DATETIME", "T_DECIMAL", "T_DOUBLE",
    "T_INTEGER", "T_LONG", "T_STRING", "T_UNTYPED",
    "atomize", "boolean", "cast", "castable", "copy_node", "date",
    "date_time", "decimal", "document_order", "double",
    "effective_boolean_value", "general_compare", "integer", "is_node",
    "long_integer", "node_compare", "singleton", "string", "untyped",
    "value_compare",
]
