"""XQuery comparison semantics: value, general, and node comparisons.

Two rule sets matter enormously for index eligibility (Section 3.1):

* **Value comparisons** (``eq ne lt le gt ge``) require singleton
  operands and treat ``xdt:untypedAtomic`` as ``xs:string``.  Their
  singleton requirement is what makes them safe "between" building
  blocks (Section 3.10).
* **General comparisons** (``= != < <= > >=``) are *existential* over
  the two atomized sequences, and convert untyped operands to the type
  of the other side (``double`` for numerics) — so ``@price > 100``
  is a numeric comparison, while ``@price > "100"`` is a string one
  (Query 3).

Unlike SQL (Section 3.3), trailing blanks are significant in string
comparisons, and there is no NULL: empty sequences make value
comparisons return the empty sequence and general comparisons false.
"""

from __future__ import annotations

from typing import Callable

from ..errors import XQueryTypeError
from .atomic import (AtomicValue, T_BOOLEAN, T_DATE, T_DATETIME, T_DOUBLE,
                     T_STRING, T_UNTYPED, cast, promote_numeric_pair)
from .nodes import Node
from .sequence import Item, atomize

_OPS: dict[str, Callable[[object, object], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

#: general-comparison symbol -> value-comparison operator name
GENERAL_TO_VALUE = {
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}


def _align_for_value_comparison(left: AtomicValue, right: AtomicValue
                                ) -> tuple[AtomicValue, AtomicValue]:
    """Value-comparison typing for untyped operands.

    We follow DB2's documented behaviour (which the paper's examples
    assume): an untypedAtomic operand is cast to the *other* operand's
    type — ``price gt 100`` is numeric on untyped data, and
    ``id eq $pid`` with a VARCHAR-passed $pid is a string comparison
    (Query 13).  When both operands are untyped they compare as
    strings.  A failed cast raises err:FORG0001 — unlike general
    comparisons, value comparisons stay strict.
    """
    if left.type_name == T_UNTYPED and right.type_name == T_UNTYPED:
        return cast(left, T_STRING), cast(right, T_STRING)
    if left.type_name == T_UNTYPED:
        target = T_DOUBLE if right.is_numeric else right.type_name
        return cast(left, target), right
    if right.type_name == T_UNTYPED:
        target = T_DOUBLE if left.is_numeric else left.type_name
        return left, cast(right, target)
    return _align_typed_pair(left, right)


def _align_typed_pair(left: AtomicValue, right: AtomicValue
                      ) -> tuple[AtomicValue, AtomicValue]:
    if left.is_numeric and right.is_numeric:
        if T_DOUBLE in (left.type_name, right.type_name):
            # Do NOT promote the other operand to double for a
            # *comparison*: float(2**53 + 1) == float(2**53), so the
            # cast collapses distinct integers above 2**53.  Python
            # compares int/Decimal against float exactly, so keeping
            # the non-double side in its own type is both correct and
            # cheaper.  (Arithmetic still promotes — §3.6's documented
            # precision loss applies to computation, not comparison.)
            return left, right
        return promote_numeric_pair(left, right)
    if left.type_name == right.type_name:
        return left, right
    # xs:date vs xs:dateTime: promote the date.
    pair = {left.type_name, right.type_name}
    if pair == {T_DATE, T_DATETIME}:
        return cast(left, T_DATETIME), cast(right, T_DATETIME)
    raise XQueryTypeError(
        f"cannot compare {left.type_name} with {right.type_name}",
        code="XPTY0004")


def _compare_aligned(op: str, left: AtomicValue, right: AtomicValue) -> bool:
    compare = _OPS[op]
    left_value, right_value = left.value, right.value
    if left.type_name == T_DOUBLE or right.type_name == T_DOUBLE:
        # ``x != x`` is the NaN test that works for float and Decimal
        # alike — no ``float()`` coercion, so an exact integer operand
        # stays exact (values straddling 2**53 compare correctly).
        if left_value != left_value or right_value != right_value:
            return op == "ne"
        return compare(left_value, right_value)
    if left.type_name == T_BOOLEAN:
        return compare(bool(left_value), bool(right_value))
    if left.type_name in (T_DATE, T_DATETIME):
        try:
            return compare(left_value, right_value)
        except TypeError as exc:  # naive vs aware datetimes
            raise XQueryTypeError(
                f"cannot compare {left_value} with {right_value}: {exc}"
            ) from exc
    return compare(left_value, right_value)


def value_compare(op: str, left: list[Item], right: list[Item]
                  ) -> list[AtomicValue]:
    """``eq ne lt le gt ge`` — empty-propagating, singleton-requiring."""
    left_atoms = atomize(left)
    right_atoms = atomize(right)
    if not left_atoms or not right_atoms:
        return []
    if len(left_atoms) > 1 or len(right_atoms) > 1:
        raise XQueryTypeError(
            f"value comparison '{op}' requires singleton operands "
            f"({len(left_atoms)} vs {len(right_atoms)} items)",
            code="XPTY0004")
    aligned_left, aligned_right = _align_for_value_comparison(
        left_atoms[0], right_atoms[0])
    from .atomic import boolean
    return [boolean(_compare_aligned(op, aligned_left, aligned_right))]


def _align_for_general_comparison(left: AtomicValue, right: AtomicValue
                                  ) -> tuple[AtomicValue, AtomicValue]:
    """General-comparison typing for untyped operands (XPath 2.0 3.5.2)."""
    if left.type_name == T_UNTYPED and right.type_name == T_UNTYPED:
        return cast(left, T_STRING), cast(right, T_STRING)
    if left.type_name == T_UNTYPED:
        target = T_DOUBLE if right.is_numeric else (
            T_STRING if right.type_name == T_STRING else right.type_name)
        return cast(left, target), right
    if right.type_name == T_UNTYPED:
        target = T_DOUBLE if left.is_numeric else (
            T_STRING if left.type_name == T_STRING else left.type_name)
        return left, cast(right, target)
    return _align_typed_pair(left, right)


def general_compare(symbol: str, left: list[Item], right: list[Item]) -> bool:
    """``= != < <= > >=`` — existentially quantified (Section 3.10).

    A pair whose *untyped* operand fails to cast to the comparison type
    (e.g. ``"20 USD" > 100``) counts as a non-match instead of raising.
    XQuery 1.0 §2.3.4 ("Errors and Optimization") explicitly permits
    this, and it is what makes numeric predicates usable over
    schema-flexible collections — precisely the behaviour the paper's
    Query 1/Query 3 discussion assumes: documents with non-numeric
    prices are silently not returned by a numeric predicate, and are
    absent from a DOUBLE index.  Pairs of *typed* incompatible values
    (string vs number) still raise XPTY0004.
    """
    from ..errors import CastError

    op = GENERAL_TO_VALUE[symbol]
    left_atoms = atomize(left)
    right_atoms = atomize(right)
    for left_atom in left_atoms:
        for right_atom in right_atoms:
            try:
                aligned = _align_for_general_comparison(left_atom,
                                                        right_atom)
            except CastError:
                if (left_atom.type_name == T_UNTYPED or
                        right_atom.type_name == T_UNTYPED):
                    continue
                raise
            if _compare_aligned(op, *aligned):
                return True
    return False


def node_compare(op: str, left: list[Item], right: list[Item]
                 ) -> list[AtomicValue]:
    """``is``, ``<<``, ``>>`` — identity and document order."""
    from .atomic import boolean
    if not left or not right:
        return []
    if len(left) != 1 or len(right) != 1:
        raise XQueryTypeError(
            f"node comparison '{op}' requires singleton operands")
    left_item, right_item = left[0], right[0]
    if not isinstance(left_item, Node) or not isinstance(right_item, Node):
        raise XQueryTypeError(f"node comparison '{op}' requires nodes")
    if op == "is":
        return [boolean(left_item.is_same_node(right_item))]
    left_key = left_item.document_order_key()
    right_key = right_item.document_order_key()
    if op == "<<":
        return [boolean(left_key < right_key)]
    if op == ">>":
        return [boolean(left_key > right_key)]
    raise XQueryTypeError(f"unknown node comparison {op!r}")
