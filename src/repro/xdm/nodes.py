"""XDM node hierarchy: document, element, attribute, text, comment, PI.

Three properties of nodes drive most of the paper's pitfalls and are
modelled exactly:

* **Node identity** (Section 3.6): every node carries a unique id
  assigned at construction; copying a node (as element constructors do)
  yields fresh identities, so ``$view/@price except .../@price`` keeps
  all nodes instead of cancelling out.
* **Document order**: a stable total order, per tree, used for path
  expression deduplication and the ``<<``/``>>`` comparisons.
* **Type annotations** (Sections 3.1, 3.6, 3.8): unvalidated elements
  are ``xdt:untyped`` and attributes ``xdt:untypedAtomic``; validation
  may attach schema types, including *list* types whose typed value is a
  sequence of atomics (the §3.10 footnote).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..errors import XQueryTypeError
from .atomic import AtomicValue, T_UNTYPED, cast, untyped
from .qname import QName

_NODE_IDS = itertools.count(1)

#: Element type annotation meaning "no schema validation applied".
UNTYPED_ELEMENT = "xdt:untyped"


class Node:
    """Abstract base of all seven XDM node kinds (we omit namespace nodes)."""

    kind = "node"

    __slots__ = ("node_id", "parent", "_order")

    def __init__(self):
        self.node_id = next(_NODE_IDS)
        self.parent: Node | None = None
        self._order: tuple[int, int] | None = None

    # -- identity & order --------------------------------------------

    def is_same_node(self, other: "Node") -> bool:
        return self.node_id == other.node_id

    @property
    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def document_order_key(self) -> tuple[int, int]:
        """(tree id, position) — comparable within and across trees."""
        if self._order is None:
            _number_tree(self.root)
        assert self._order is not None
        return self._order

    def _invalidate_order(self) -> None:
        root = self.root
        for node in _walk_all(root):
            node._order = None

    # -- values --------------------------------------------------------

    def string_value(self) -> str:
        raise NotImplementedError

    def typed_value(self) -> list[AtomicValue]:
        """Atomization result (a list because of list-typed nodes)."""
        raise NotImplementedError

    @property
    def name(self) -> QName | None:
        return None

    # -- structure -------------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        return []

    @property
    def attributes(self) -> list["AttributeNode"]:
        return []

    def descendants_or_self(self) -> Iterator["Node"]:
        yield self
        for child in self.children:
            yield from child.descendants_or_self()

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_steps(self) -> list[tuple[str, QName | None]]:
        """(kind, name) pairs from the root down to this node.

        The root document node is omitted; this is the representation the
        XML indexes store alongside each entry so an index on a broad
        pattern (e.g. ``//@*``) can still check path restrictions.
        """
        steps: list[tuple[str, QName | None]] = []
        node: Node | None = self
        while node is not None and node.kind != "document":
            steps.append((node.kind, node.name))
            node = node.parent
        steps.reverse()
        return steps

    def __repr__(self) -> str:
        name = self.name
        label = f" {name}" if name is not None else ""
        return f"<{self.kind}{label} #{self.node_id}>"


def _walk_all(node: Node) -> Iterator[Node]:
    yield node
    for attribute in node.attributes:
        yield attribute
    for child in node.children:
        yield from _walk_all(child)


def _number_tree(root: Node) -> None:
    tree_id = root.node_id
    for position, node in enumerate(_walk_all(root)):
        node._order = (tree_id, position)


class DocumentNode(Node):
    """A document node; ``db2-fn:xmlcolumn`` returns these (Section 3.5)."""

    kind = "document"

    __slots__ = ("_children", "document_uri")

    def __init__(self, children: list[Node] | None = None,
                 document_uri: str = ""):
        super().__init__()
        self._children: list[Node] = []
        self.document_uri = document_uri
        for child in children or []:
            self.append_child(child)

    @property
    def children(self) -> list[Node]:
        return self._children

    def append_child(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)
        self._order = None
        child._order = None

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children
                       if child.kind in ("element", "text"))

    def typed_value(self) -> list[AtomicValue]:
        return [untyped(self.string_value())]

    @property
    def root_element(self) -> "ElementNode | None":
        for child in self._children:
            if child.kind == "element":
                return child  # type: ignore[return-value]
        return None


class ElementNode(Node):
    kind = "element"

    __slots__ = ("_name", "_children", "_attributes", "type_annotation",
                 "_typed_values", "in_scope_namespaces")

    def __init__(self, name: QName,
                 attributes: list["AttributeNode"] | None = None,
                 children: list[Node] | None = None,
                 type_annotation: str = UNTYPED_ELEMENT,
                 in_scope_namespaces: dict[str, str] | None = None):
        super().__init__()
        self._name = name
        self._attributes: list[AttributeNode] = []
        self._children: list[Node] = []
        self.type_annotation = type_annotation
        #: Set by schema validation for simple-typed elements.
        self._typed_values: list[AtomicValue] | None = None
        self.in_scope_namespaces = dict(in_scope_namespaces or {})
        for attribute in attributes or []:
            self.add_attribute(attribute)
        for child in children or []:
            self.append_child(child)

    @property
    def name(self) -> QName:
        return self._name

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def attributes(self) -> list["AttributeNode"]:
        return self._attributes

    def add_attribute(self, attribute: "AttributeNode") -> None:
        attribute.parent = self
        self._attributes.append(attribute)
        self._order = None

    def append_child(self, child: Node) -> None:
        if child.kind == "attribute":
            raise XQueryTypeError("attribute node cannot be a child")
        child.parent = self
        self._children.append(child)
        self._order = None
        child._order = None

    def attribute(self, local: str, uri: str = "") -> "AttributeNode | None":
        for attribute in self._attributes:
            if attribute.name.local == local and attribute.name.uri == uri:
                return attribute
        return None

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children
                       if child.kind in ("element", "text"))

    def typed_value(self) -> list[AtomicValue]:
        if self._typed_values is not None:
            return list(self._typed_values)
        if self.type_annotation == UNTYPED_ELEMENT:
            return [untyped(self.string_value())]
        # Simple-typed element validated but values not cached: cast now.
        return [cast(untyped(self.string_value()), self.type_annotation)]

    def set_typed_value(self, type_annotation: str,
                        values: list[AtomicValue]) -> None:
        """Attach a schema type annotation and its typed value."""
        self.type_annotation = type_annotation
        self._typed_values = list(values)


class AttributeNode(Node):
    kind = "attribute"

    __slots__ = ("_name", "_value", "type_annotation", "_typed_values")

    def __init__(self, name: QName, value: str,
                 type_annotation: str = T_UNTYPED):
        super().__init__()
        self._name = name
        self._value = value
        self.type_annotation = type_annotation
        self._typed_values: list[AtomicValue] | None = None

    @property
    def name(self) -> QName:
        return self._name

    def string_value(self) -> str:
        return self._value

    def typed_value(self) -> list[AtomicValue]:
        if self._typed_values is not None:
            return list(self._typed_values)
        if self.type_annotation == T_UNTYPED:
            return [untyped(self._value)]
        return [cast(untyped(self._value), self.type_annotation)]

    def set_typed_value(self, type_annotation: str,
                        values: list[AtomicValue]) -> None:
        self.type_annotation = type_annotation
        self._typed_values = list(values)


class TextNode(Node):
    kind = "text"

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [untyped(self.content)]


class CommentNode(Node):
    kind = "comment"

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [AtomicValue("xs:string", self.content)]


class ProcessingInstructionNode(Node):
    kind = "processing-instruction"

    __slots__ = ("target", "content")

    def __init__(self, target: str, content: str):
        super().__init__()
        self.target = target
        self.content = content

    @property
    def name(self) -> QName:
        return QName("", self.target)

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [AtomicValue("xs:string", self.content)]


# ---------------------------------------------------------------------------
# Copying (element-constructor semantics, Section 3.6)
# ---------------------------------------------------------------------------

def copy_node(node: Node, preserve_types: bool = False) -> Node:
    """Deep-copy ``node`` with fresh node identities.

    With ``preserve_types=False`` (XQuery ``construction strip``, the
    engine default) copied elements become ``xdt:untyped`` and copied
    attributes ``xdt:untypedAtomic`` — one of the §3.6 hazards.
    """
    if node.kind == "document":
        return DocumentNode(
            [copy_node(child, preserve_types) for child in node.children])
    if node.kind == "element":
        assert isinstance(node, ElementNode)
        annotation = node.type_annotation if preserve_types else UNTYPED_ELEMENT
        copied = ElementNode(
            node.name,
            attributes=[copy_node(a, preserve_types)  # type: ignore[misc]
                        for a in node.attributes],
            children=[copy_node(child, preserve_types)
                      for child in node.children],
            type_annotation=annotation,
            in_scope_namespaces=node.in_scope_namespaces)
        if preserve_types and node._typed_values is not None:
            copied._typed_values = list(node._typed_values)
        return copied
    if node.kind == "attribute":
        assert isinstance(node, AttributeNode)
        annotation = node.type_annotation if preserve_types else T_UNTYPED
        copied_attr = AttributeNode(node.name, node.string_value(), annotation)
        if preserve_types and node._typed_values is not None:
            copied_attr._typed_values = list(node._typed_values)
        return copied_attr
    if node.kind == "text":
        return TextNode(node.string_value())
    if node.kind == "comment":
        return CommentNode(node.string_value())
    if node.kind == "processing-instruction":
        assert isinstance(node, ProcessingInstructionNode)
        return ProcessingInstructionNode(node.target, node.content)
    raise XQueryTypeError(f"cannot copy node kind {node.kind}")
