"""XDM node hierarchy: document, element, attribute, text, comment, PI.

Three properties of nodes drive most of the paper's pitfalls and are
modelled exactly:

* **Node identity** (Section 3.6): every node carries a unique id
  assigned at construction; copying a node (as element constructors do)
  yields fresh identities, so ``$view/@price except .../@price`` keeps
  all nodes instead of cancelling out.
* **Document order**: a stable total order, per tree, used for path
  expression deduplication and the ``<<``/``>>`` comparisons.  Every
  node additionally carries a ``(pre, post, level)`` *interval
  encoding* (assigned lazily per tree, eagerly at parse time) so
  descendant/ancestor/following tests are plain integer comparisons
  and document-order sorting is a key sort with no tree walks.
* **Type annotations** (Sections 3.1, 3.6, 3.8): unvalidated elements
  are ``xdt:untyped`` and attributes ``xdt:untypedAtomic``; validation
  may attach schema types, including *list* types whose typed value is a
  sequence of atomics (the §3.10 footnote).
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterator

from ..errors import XQueryTypeError
from .atomic import AtomicValue, T_UNTYPED, cast, untyped
from .qname import QName

_NODE_IDS = itertools.count(1)


def reserve_node_ids(minimum: int) -> None:
    """Ensure future node ids are all greater than ``minimum``.

    Materializing a column store shipped from another process (replica
    bootstrap) restores that process's node ids verbatim; bumping the
    local counter past them keeps ids unique within this process so
    identity-based set operations (``except``/``intersect``, document
    -order keys) never conflate nodes of different trees.  Callers run
    single-threaded (bootstrap/recovery); a concurrent construction
    racing the swap could still draw a low id from the old counter,
    which is why the shipping paths reserve before any local parsing.
    """
    global _NODE_IDS
    with _NUMBER_LOCK:
        current = next(_NODE_IDS)
        _NODE_IDS = itertools.count(max(current, minimum + 1))

#: Serializes lazy renumbering.  Two concurrent readers triggering
#: ``_number_tree`` on the same tree would each mint their own
#: ``_TreeStamp``, leaving the tree with *mixed* stamps — a later
#: mutation's O(1) invalidation would then miss the nodes holding the
#: other stamp.  The lock sits on the slow path only: already-numbered
#: trees never touch it.
_NUMBER_LOCK = threading.Lock()

#: Element type annotation meaning "no schema validation applied".
UNTYPED_ELEMENT = "xdt:untyped"


class _TreeStamp:
    """Shared validity token for one numbering pass over one tree.

    Every node numbered in the same pass holds a reference to the same
    stamp, so invalidating the structure of an entire tree after a
    mutation is a single O(1) write (``stamp.valid = False``) instead
    of a full-tree walk.
    """

    __slots__ = ("valid",)

    def __init__(self):
        self.valid = True


class Node:
    """Abstract base of all seven XDM node kinds (we omit namespace nodes)."""

    kind = "node"

    __slots__ = ("node_id", "parent", "_order", "_post", "_level",
                 "_stamp")

    def __init__(self):
        self.node_id = next(_NODE_IDS)
        self.parent: Node | None = None
        self._order: tuple[int, int] | None = None
        self._post: int = -1
        self._level: int = -1
        self._stamp: _TreeStamp | None = None

    # -- identity & order --------------------------------------------

    def is_same_node(self, other: "Node") -> bool:
        return self.node_id == other.node_id

    @property
    def root(self) -> "Node":
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def _ensure_structure(self) -> None:
        stamp = self._stamp
        if stamp is None or not stamp.valid:
            with _NUMBER_LOCK:
                stamp = self._stamp  # double-check under the lock
                if stamp is None or not stamp.valid:
                    _number_tree(self.root)

    def document_order_key(self) -> tuple[int, int]:
        """(tree id, pre position) — comparable within and across trees."""
        self._ensure_structure()
        assert self._order is not None
        return self._order

    def structure(self) -> tuple[int, int, int, int]:
        """The node's ``(tree_id, pre, post, level)`` interval encoding.

        ``pre`` counts nodes in document order (attributes between
        their element and its children), ``post`` counts completion
        order, ``level`` is the depth below the tree root.  A node
        ``d`` lies in ``a``'s subtree iff ``a.pre < d.pre`` and
        ``d.post < a.post`` — the accelerated axis tests build on this.
        """
        self._ensure_structure()
        assert self._order is not None
        tree_id, pre = self._order
        return tree_id, pre, self._post, self._level

    @property
    def level(self) -> int:
        self._ensure_structure()
        return self._level

    def is_ancestor_of(self, other: "Node") -> bool:
        """Interval containment test — O(1) after numbering."""
        tree, pre, post, _level = self.structure()
        other_tree, other_pre, other_post, _other = other.structure()
        return (tree == other_tree and pre < other_pre
                and other_post < post)

    def is_descendant_of(self, other: "Node") -> bool:
        return other.is_ancestor_of(self)

    def _mark_structure_dirty(self) -> None:
        """Invalidate the cached encoding of this node's whole tree."""
        stamp = self._stamp
        if stamp is not None:
            stamp.valid = False

    # -- values --------------------------------------------------------

    def string_value(self) -> str:
        raise NotImplementedError

    def typed_value(self) -> list[AtomicValue]:
        """Atomization result (a list because of list-typed nodes)."""
        raise NotImplementedError

    @property
    def name(self) -> QName | None:
        return None

    # -- structure -------------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        return []

    @property
    def attributes(self) -> list["AttributeNode"]:
        return []

    def descendants_or_self(self) -> Iterator["Node"]:
        yield self
        for child in self.children:
            yield from child.descendants_or_self()

    def ancestors(self) -> Iterator["Node"]:
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path_steps(self) -> list[tuple[str, QName | None]]:
        """(kind, name) pairs from the root down to this node.

        The root document node is omitted; this is the representation the
        XML indexes store alongside each entry so an index on a broad
        pattern (e.g. ``//@*``) can still check path restrictions.
        """
        steps: list[tuple[str, QName | None]] = []
        node: Node | None = self
        while node is not None and node.kind != "document":
            steps.append((node.kind, node.name))
            node = node.parent
        steps.reverse()
        return steps

    def __repr__(self) -> str:
        name = self.name
        label = f" {name}" if name is not None else ""
        return f"<{self.kind}{label} #{self.node_id}>"


def _walk_all(node: Node) -> Iterator[Node]:
    yield node
    for attribute in node.attributes:
        yield attribute
    for child in node.children:
        yield from _walk_all(child)


def _number_tree(root: Node) -> None:
    """Assign ``(pre, post, level)`` to every node of ``root``'s tree.

    Iterative two-phase DFS: a node receives its ``pre`` number (and
    level) when first visited and its ``post`` number after its whole
    subtree — attributes included — has been numbered.  All nodes get
    the same fresh :class:`_TreeStamp`, making later whole-tree
    invalidation O(1).
    """
    tree_id = root.node_id
    stamp = _TreeStamp()
    pre = 0
    post = 0
    stack: list[tuple[Node, int, bool]] = [(root, 0, False)]
    while stack:
        node, level, finished = stack.pop()
        if finished:
            node._post = post
            post += 1
            continue
        node._order = (tree_id, pre)
        pre += 1
        node._level = level
        node._stamp = stamp
        stack.append((node, level, True))
        for child in reversed(node.children):
            stack.append((child, level + 1, False))
        for attribute in reversed(node.attributes):
            stack.append((attribute, level + 1, False))


class DocumentNode(Node):
    """A document node; ``db2-fn:xmlcolumn`` returns these (Section 3.5)."""

    kind = "document"

    __slots__ = ("_children", "document_uri", "path_summary",
                 "column_store")

    def __init__(self, children: list[Node] | None = None,
                 document_uri: str = ""):
        super().__init__()
        self._children: list[Node] = []
        self.document_uri = document_uri
        #: Set by the storage layer at ingest (see
        #: :mod:`repro.storage.pathsummary`); stamp-validated, so a
        #: stale summary is rebuilt lazily after mutations.
        self.path_summary = None
        #: Columnar accelerator table attached at ingest (see
        #: :mod:`repro.storage.columnar`); stamp-validated like the
        #: path summary, so axis fast paths fall back to object walks
        #: after mutations.
        self.column_store = None
        for child in children or []:
            self.append_child(child)

    @property
    def children(self) -> list[Node]:
        return self._children

    def append_child(self, child: Node) -> None:
        child.parent = self
        self._children.append(child)
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def insert_child(self, position: int, child: Node) -> None:
        """Insert ``child`` at ``position``; invalidates ``(pre, post)``."""
        child.parent = self
        self._children.insert(position, child)
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def remove_child(self, child: Node) -> None:
        """Detach ``child``; invalidates ``(pre, post)`` of the tree."""
        self._children.remove(child)
        child.parent = None
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children
                       if child.kind in ("element", "text"))

    def typed_value(self) -> list[AtomicValue]:
        return [untyped(self.string_value())]

    @property
    def root_element(self) -> "ElementNode | None":
        for child in self._children:
            if child.kind == "element":
                return child  # type: ignore[return-value]
        return None


class ElementNode(Node):
    kind = "element"

    __slots__ = ("_name", "_children", "_attributes", "type_annotation",
                 "_typed_values", "in_scope_namespaces")

    def __init__(self, name: QName,
                 attributes: list["AttributeNode"] | None = None,
                 children: list[Node] | None = None,
                 type_annotation: str = UNTYPED_ELEMENT,
                 in_scope_namespaces: dict[str, str] | None = None):
        super().__init__()
        self._name = name
        self._attributes: list[AttributeNode] = []
        self._children: list[Node] = []
        self.type_annotation = type_annotation
        #: Set by schema validation for simple-typed elements.
        self._typed_values: list[AtomicValue] | None = None
        self.in_scope_namespaces = dict(in_scope_namespaces or {})
        for attribute in attributes or []:
            self.add_attribute(attribute)
        for child in children or []:
            self.append_child(child)

    @property
    def name(self) -> QName:
        return self._name

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def attributes(self) -> list["AttributeNode"]:
        return self._attributes

    def add_attribute(self, attribute: "AttributeNode") -> None:
        attribute.parent = self
        self._attributes.append(attribute)
        self._mark_structure_dirty()
        attribute._mark_structure_dirty()

    def append_child(self, child: Node) -> None:
        if child.kind == "attribute":
            raise XQueryTypeError("attribute node cannot be a child")
        child.parent = self
        self._children.append(child)
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def insert_child(self, position: int, child: Node) -> None:
        """Insert ``child`` at ``position``; invalidates ``(pre, post)``."""
        if child.kind == "attribute":
            raise XQueryTypeError("attribute node cannot be a child")
        child.parent = self
        self._children.insert(position, child)
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def remove_child(self, child: Node) -> None:
        """Detach ``child``; invalidates ``(pre, post)`` of the tree."""
        self._children.remove(child)
        child.parent = None
        self._mark_structure_dirty()
        child._mark_structure_dirty()

    def remove_attribute(self, attribute: "AttributeNode") -> None:
        self._attributes.remove(attribute)
        attribute.parent = None
        self._mark_structure_dirty()
        attribute._mark_structure_dirty()

    def attribute(self, local: str, uri: str = "") -> "AttributeNode | None":
        for attribute in self._attributes:
            if attribute.name.local == local and attribute.name.uri == uri:
                return attribute
        return None

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self._children
                       if child.kind in ("element", "text"))

    def typed_value(self) -> list[AtomicValue]:
        if self._typed_values is not None:
            return list(self._typed_values)
        if self.type_annotation == UNTYPED_ELEMENT:
            return [untyped(self.string_value())]
        # Simple-typed element validated but values not cached: cast now.
        return [cast(untyped(self.string_value()), self.type_annotation)]

    def set_typed_value(self, type_annotation: str,
                        values: list[AtomicValue]) -> None:
        """Attach a schema type annotation and its typed value."""
        self.type_annotation = type_annotation
        self._typed_values = list(values)


class AttributeNode(Node):
    kind = "attribute"

    __slots__ = ("_name", "_value", "type_annotation", "_typed_values")

    def __init__(self, name: QName, value: str,
                 type_annotation: str = T_UNTYPED):
        super().__init__()
        self._name = name
        self._value = value
        self.type_annotation = type_annotation
        self._typed_values: list[AtomicValue] | None = None

    @property
    def name(self) -> QName:
        return self._name

    def string_value(self) -> str:
        return self._value

    def typed_value(self) -> list[AtomicValue]:
        if self._typed_values is not None:
            return list(self._typed_values)
        if self.type_annotation == T_UNTYPED:
            return [untyped(self._value)]
        return [cast(untyped(self._value), self.type_annotation)]

    def set_typed_value(self, type_annotation: str,
                        values: list[AtomicValue]) -> None:
        self.type_annotation = type_annotation
        self._typed_values = list(values)


class TextNode(Node):
    kind = "text"

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [untyped(self.content)]


class CommentNode(Node):
    kind = "comment"

    __slots__ = ("content",)

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [AtomicValue("xs:string", self.content)]


class ProcessingInstructionNode(Node):
    kind = "processing-instruction"

    __slots__ = ("target", "content")

    def __init__(self, target: str, content: str):
        super().__init__()
        self.target = target
        self.content = content

    @property
    def name(self) -> QName:
        return QName("", self.target)

    def string_value(self) -> str:
        return self.content

    def typed_value(self) -> list[AtomicValue]:
        return [AtomicValue("xs:string", self.content)]


# ---------------------------------------------------------------------------
# Copying (element-constructor semantics, Section 3.6)
# ---------------------------------------------------------------------------

def copy_node(node: Node, preserve_types: bool = False) -> Node:
    """Deep-copy ``node`` with fresh node identities.

    With ``preserve_types=False`` (XQuery ``construction strip``, the
    engine default) copied elements become ``xdt:untyped`` and copied
    attributes ``xdt:untypedAtomic`` — one of the §3.6 hazards.
    """
    if node.kind == "document":
        return DocumentNode(
            [copy_node(child, preserve_types) for child in node.children])
    if node.kind == "element":
        assert isinstance(node, ElementNode)
        annotation = node.type_annotation if preserve_types else UNTYPED_ELEMENT
        copied = ElementNode(
            node.name,
            attributes=[copy_node(a, preserve_types)  # type: ignore[misc]
                        for a in node.attributes],
            children=[copy_node(child, preserve_types)
                      for child in node.children],
            type_annotation=annotation,
            in_scope_namespaces=node.in_scope_namespaces)
        if preserve_types and node._typed_values is not None:
            copied._typed_values = list(node._typed_values)
        return copied
    if node.kind == "attribute":
        assert isinstance(node, AttributeNode)
        annotation = node.type_annotation if preserve_types else T_UNTYPED
        copied_attr = AttributeNode(node.name, node.string_value(), annotation)
        if preserve_types and node._typed_values is not None:
            copied_attr._typed_values = list(node._typed_values)
        return copied_attr
    if node.kind == "text":
        return TextNode(node.string_value())
    if node.kind == "comment":
        return CommentNode(node.string_value())
    if node.kind == "processing-instruction":
        assert isinstance(node, ProcessingInstructionNode)
        return ProcessingInstructionNode(node.target, node.content)
    raise XQueryTypeError(f"cannot copy node kind {node.kind}")
