"""XML text I/O: parsing to XDM trees and serialization back to text."""

from .parser import parse_document, parse_fragment
from .serializer import serialize, serialize_sequence

__all__ = ["parse_document", "parse_fragment", "serialize",
           "serialize_sequence"]
