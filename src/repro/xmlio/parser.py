"""A from-scratch, namespace-aware XML parser producing XDM trees.

The parser preserves everything the XQuery data model needs and the
paper's pitfalls depend on: text nodes distinct from their parent
elements (Section 3.8's ``99.50USD`` mixed-content example), comments,
processing instructions, attribute vs element nodes (Section 3.9), and
per-element in-scope namespace bindings (Section 3.7).

Supported syntax: the XML 1.0 core — prolog, elements, attributes,
namespace declarations (``xmlns`` / ``xmlns:p``), character data with
the five predefined entities plus numeric character references, CDATA
sections, comments, and processing instructions.  DTDs are tolerated
and skipped.
"""

from __future__ import annotations

import re

from ..errors import XMLParseError
from ..xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                         ElementNode, Node, ProcessingInstructionNode,
                         TextNode)
from ..xdm.qname import QName, XML_NS

_NAME_START = re.compile(r"[A-Za-z_:À-￿]")
_NAME_RE = re.compile(r"[A-Za-z_:][\w.\-:À-￿]*")

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class _Cursor:
    """Character cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def location(self) -> tuple[int, int]:
        consumed = self.text[:self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XMLParseError:
        line, column = self.location()
        return XMLParseError(message, line, column)


def parse_document(text: str, document_uri: str = "") -> DocumentNode:
    """Parse an XML document string into a :class:`DocumentNode`."""
    cursor = _Cursor(text)
    document = DocumentNode(document_uri=document_uri)
    _skip_prolog(cursor)
    saw_root = False
    while cursor.pos < cursor.length:
        _skip_whitespace(cursor)
        if cursor.pos >= cursor.length:
            break
        if cursor.startswith("<!--"):
            document.append_child(_parse_comment(cursor))
        elif cursor.startswith("<?"):
            document.append_child(_parse_pi(cursor))
        elif cursor.peek() == "<":
            if saw_root:
                raise cursor.error("multiple root elements")
            namespaces = {"xml": XML_NS}
            document.append_child(_parse_element(cursor, namespaces))
            saw_root = True
        else:
            raise cursor.error(
                f"unexpected content outside root element: "
                f"{cursor.peek()!r}")
    if not saw_root:
        raise cursor.error("document has no root element")
    # Assign the (pre, post, level) interval encoding eagerly: freshly
    # parsed documents are immediately usable for accelerated axis
    # tests and O(1) document-order keys without a lazy numbering walk
    # on the first query.
    document.structure()
    return document


def parse_fragment(text: str) -> list[Node]:
    """Parse a sequence of elements/text (used by direct constructors)."""
    wrapped = parse_document(f"<repro-fragment-wrapper>{text}"
                             f"</repro-fragment-wrapper>")
    root = wrapped.root_element
    assert root is not None
    children = list(root.children)
    for child in children:
        root.remove_child(child)
    return children


def _skip_whitespace(cursor: _Cursor) -> None:
    while cursor.peek() in (" ", "\t", "\r", "\n"):
        cursor.advance()


def _skip_prolog(cursor: _Cursor) -> None:
    _skip_whitespace(cursor)
    if cursor.startswith("<?xml"):
        end = cursor.text.find("?>", cursor.pos)
        if end < 0:
            raise cursor.error("unterminated XML declaration")
        cursor.pos = end + 2
    _skip_whitespace(cursor)
    if cursor.startswith("<!DOCTYPE"):
        depth = 0
        while cursor.pos < cursor.length:
            char = cursor.peek()
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
                if depth == 0:
                    cursor.advance()
                    return
            cursor.advance()
        raise cursor.error("unterminated DOCTYPE")


def _parse_name(cursor: _Cursor) -> str:
    match = _NAME_RE.match(cursor.text, cursor.pos)
    if not match:
        raise cursor.error(f"expected a name, got {cursor.peek()!r}")
    cursor.pos = match.end()
    return match.group()


def _resolve_entity(cursor: _Cursor, reference: str) -> str:
    if reference.startswith("#x") or reference.startswith("#X"):
        return chr(int(reference[2:], 16))
    if reference.startswith("#"):
        return chr(int(reference[1:]))
    if reference in _ENTITIES:
        return _ENTITIES[reference]
    raise cursor.error(f"unknown entity &{reference};")


def _parse_reference(cursor: _Cursor) -> str:
    end = cursor.text.find(";", cursor.pos)
    if end < 0 or end - cursor.pos > 12:
        raise cursor.error("malformed entity reference")
    reference = cursor.text[cursor.pos + 1:end]
    cursor.pos = end + 1
    return _resolve_entity(cursor, reference)


def _parse_attribute_value(cursor: _Cursor) -> str:
    quote = cursor.peek()
    if quote not in ("'", '"'):
        raise cursor.error("attribute value must be quoted")
    cursor.advance()
    parts: list[str] = []
    while True:
        char = cursor.peek()
        if char == "":
            raise cursor.error("unterminated attribute value")
        if char == quote:
            cursor.advance()
            break
        if char == "&":
            parts.append(_parse_reference(cursor))
        elif char == "<":
            raise cursor.error("'<' not allowed in attribute value")
        else:
            parts.append(char)
            cursor.advance()
    return "".join(parts)


def _split_qname(cursor: _Cursor, name: str) -> tuple[str, str]:
    if ":" in name:
        prefix, local = name.split(":", 1)
        if not prefix or not local or ":" in local:
            raise cursor.error(f"malformed QName {name!r}")
        return prefix, local
    return "", name


def _parse_element(cursor: _Cursor, namespaces: dict[str, str]) -> ElementNode:
    assert cursor.peek() == "<"
    cursor.advance()
    name = _parse_name(cursor)

    raw_attributes: list[tuple[str, str]] = []
    scope = dict(namespaces)
    default_ns = scope.get("", "")

    while True:
        _skip_whitespace(cursor)
        char = cursor.peek()
        if char in (">", "/"):
            break
        attribute_name = _parse_name(cursor)
        _skip_whitespace(cursor)
        if cursor.peek() != "=":
            raise cursor.error(f"expected '=' after attribute "
                               f"{attribute_name!r}")
        cursor.advance()
        _skip_whitespace(cursor)
        value = _parse_attribute_value(cursor)
        if attribute_name == "xmlns":
            scope[""] = value
            default_ns = value
        elif attribute_name.startswith("xmlns:"):
            scope[attribute_name[6:]] = value
        else:
            raw_attributes.append((attribute_name, value))

    prefix, local = _split_qname(cursor, name)
    if prefix:
        if prefix not in scope:
            raise cursor.error(f"undeclared namespace prefix {prefix!r}")
        element_qname = QName(scope[prefix], local, prefix)
    else:
        element_qname = QName(default_ns, local)

    attributes: list[AttributeNode] = []
    seen_names: set[QName] = set()
    for attribute_name, value in raw_attributes:
        attr_prefix, attr_local = _split_qname(cursor, attribute_name)
        if attr_prefix:
            if attr_prefix not in scope:
                raise cursor.error(
                    f"undeclared namespace prefix {attr_prefix!r}")
            attr_qname = QName(scope[attr_prefix], attr_local, attr_prefix)
        else:
            # Default namespaces never apply to attributes (Section 3.7).
            attr_qname = QName("", attr_local)
        if attr_qname in seen_names:
            raise cursor.error(f"duplicate attribute {attribute_name!r}")
        seen_names.add(attr_qname)
        attributes.append(AttributeNode(attr_qname, value))

    element = ElementNode(element_qname, attributes=attributes,
                          in_scope_namespaces=scope)

    if cursor.peek() == "/":
        cursor.advance()
        if cursor.peek() != ">":
            raise cursor.error("expected '>' after '/'")
        cursor.advance()
        return element
    cursor.advance()  # consume '>'

    _parse_content(cursor, element, scope)

    # Closing tag.
    closing = _parse_name(cursor)
    if closing != name:
        raise cursor.error(
            f"mismatched closing tag </{closing}> for <{name}>")
    _skip_whitespace(cursor)
    if cursor.peek() != ">":
        raise cursor.error("expected '>' in closing tag")
    cursor.advance()
    return element


def _parse_content(cursor: _Cursor, element: ElementNode,
                   namespaces: dict[str, str]) -> None:
    text_parts: list[str] = []

    def flush_text() -> None:
        if text_parts:
            element.append_child(TextNode("".join(text_parts)))
            text_parts.clear()

    while True:
        char = cursor.peek()
        if char == "":
            raise cursor.error(f"unterminated element <{element.name}>")
        if char == "<":
            if cursor.startswith("</"):
                flush_text()
                cursor.advance(2)
                return
            if cursor.startswith("<!--"):
                flush_text()
                element.append_child(_parse_comment(cursor))
            elif cursor.startswith("<![CDATA["):
                end = cursor.text.find("]]>", cursor.pos)
                if end < 0:
                    raise cursor.error("unterminated CDATA section")
                text_parts.append(cursor.text[cursor.pos + 9:end])
                cursor.pos = end + 3
            elif cursor.startswith("<?"):
                flush_text()
                element.append_child(_parse_pi(cursor))
            else:
                flush_text()
                element.append_child(_parse_element(cursor, namespaces))
        elif char == "&":
            text_parts.append(_parse_reference(cursor))
        else:
            text_parts.append(char)
            cursor.advance()


def _parse_comment(cursor: _Cursor) -> CommentNode:
    end = cursor.text.find("-->", cursor.pos + 4)
    if end < 0:
        raise cursor.error("unterminated comment")
    content = cursor.text[cursor.pos + 4:end]
    cursor.pos = end + 3
    return CommentNode(content)


def _parse_pi(cursor: _Cursor) -> ProcessingInstructionNode:
    cursor.advance(2)
    target = _parse_name(cursor)
    if target.lower() == "xml":
        raise cursor.error("'xml' is a reserved PI target")
    end = cursor.text.find("?>", cursor.pos)
    if end < 0:
        raise cursor.error("unterminated processing instruction")
    content = cursor.text[cursor.pos:end].lstrip()
    cursor.pos = end + 2
    return ProcessingInstructionNode(target, content)
