"""XDM → XML text serialization.

Serialization is namespace-faithful: an element emits ``xmlns``
declarations for every binding in its in-scope namespaces that its
parent did not already declare, so round-tripping a parsed document
reproduces an equivalent (prefix-preserving) serialization.
"""

from __future__ import annotations

from ..xdm.atomic import AtomicValue
from ..xdm.nodes import (AttributeNode, DocumentNode, ElementNode, Node)
from ..xdm.sequence import Item


def _escape_text(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _escape_attribute(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def serialize(item: Item, indent: bool = False) -> str:
    """Serialize one item (node or atomic value) to text.

    With ``indent=True``, element-only content is pretty-printed with
    two-space indentation; mixed content (any text child) is left
    untouched so whitespace-significant values never change.
    """
    if isinstance(item, AtomicValue):
        return item.string_value()
    if indent:
        return _pretty_node(item, inherited={}, depth=0)
    return _serialize_node(item, inherited={})


def _pretty_node(node: Node, inherited: dict[str, str],
                 depth: int) -> str:
    pad = "  " * depth
    if isinstance(node, DocumentNode):
        return "\n".join(_pretty_node(child, inherited, depth)
                         for child in node.children)
    if not isinstance(node, ElementNode):
        return pad + _serialize_node(node, inherited)
    has_text = any(child.kind == "text" for child in node.children)
    if has_text or not node.children:
        return pad + _serialize_node(node, inherited)
    flat = _serialize_node(node, dict(inherited))
    open_tag = flat[:flat.index(">") + 1]
    lines = [pad + open_tag]
    scope = dict(inherited)
    name = node.name
    if name.prefix:
        scope[name.prefix] = name.uri
    else:
        scope[""] = name.uri
    for child in node.children:
        lines.append(_pretty_node(child, scope, depth + 1))
    lines.append(f"{pad}</{_tag_name(node)}>")
    return "\n".join(lines)


def serialize_sequence(items: list[Item]) -> str:
    """Serialize a sequence, space-separating adjacent atomic values."""
    parts: list[str] = []
    previous_atomic = False
    for item in items:
        is_atomic = isinstance(item, AtomicValue)
        if is_atomic and previous_atomic:
            parts.append(" ")
        parts.append(serialize(item))
        previous_atomic = is_atomic
    return "".join(parts)


def _serialize_node(node: Node, inherited: dict[str, str]) -> str:
    if isinstance(node, DocumentNode):
        return "".join(_serialize_node(child, inherited)
                       for child in node.children)
    if isinstance(node, ElementNode):
        return _serialize_element(node, inherited)
    if isinstance(node, AttributeNode):
        return f'{node.name.lexical}="{_escape_attribute(node.string_value())}"'
    if node.kind == "text":
        return _escape_text(node.string_value())
    if node.kind == "comment":
        return f"<!--{node.string_value()}-->"
    if node.kind == "processing-instruction":
        content = node.string_value()
        body = f" {content}" if content else ""
        return f"<?{node.name.local}{body}?>"  # type: ignore[union-attr]
    raise ValueError(f"cannot serialize node kind {node.kind}")


def _tag_name(element: ElementNode) -> str:
    name = element.name
    if name.prefix:
        return f"{name.prefix}:{name.local}"
    return name.local


def _serialize_element(element: ElementNode,
                       inherited: dict[str, str]) -> str:
    parts = [f"<{_tag_name(element)}"]

    scope = dict(inherited)
    declarations: list[tuple[str, str]] = []
    name = element.name
    # Declare the element's own namespace if needed.
    if name.prefix:
        if scope.get(name.prefix) != name.uri:
            declarations.append((f"xmlns:{name.prefix}", name.uri))
            scope[name.prefix] = name.uri
    elif scope.get("", "") != name.uri:
        declarations.append(("xmlns", name.uri))
        scope[""] = name.uri
    # Declare prefixes used by attributes.
    for attribute in element.attributes:
        attr_name = attribute.name
        if attr_name.prefix and scope.get(attr_name.prefix) != attr_name.uri:
            declarations.append((f"xmlns:{attr_name.prefix}", attr_name.uri))
            scope[attr_name.prefix] = attr_name.uri

    for declaration, uri in declarations:
        parts.append(f' {declaration}="{_escape_attribute(uri)}"')
    for attribute in element.attributes:
        parts.append(f" {_serialize_node(attribute, scope)}")

    if not element.children:
        parts.append("/>")
        return "".join(parts)

    body = "".join(_serialize_node(child, scope)
                   for child in element.children)
    if not body:
        # Children that serialize to nothing (empty text nodes) must
        # collapse to the self-closing form: `<a></a>` reparses as
        # childless and would re-serialize as `<a/>`, so only the
        # canonical form round-trips byte-identically — a requirement
        # for checkpoint fidelity (durability layer).
        parts.append("/>")
        return "".join(parts)
    parts.append(">")
    parts.append(body)
    parts.append(f"</{_tag_name(element)}>")
    return "".join(parts)
