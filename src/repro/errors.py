"""Error taxonomy for the repro XML database.

XQuery errors carry the W3C ``err:*`` codes the paper relies on (for
example the ``XPDY0050`` type error raised by a leading ``/`` under a
constructed element in Query 25, or the ``XQDY0025`` duplicate-attribute
error of Section 3.6).  SQL errors carry SQLSTATE-like codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class XMLParseError(ReproError):
    """Raised when a document is not well-formed XML."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SchemaValidationError(ReproError):
    """Raised when a document does not conform to its assigned schema."""


class XQueryError(ReproError):
    """An XQuery static, dynamic, or type error with a W3C error code."""

    #: Default W3C error code; subclasses and call sites may override.
    code = "FOER0000"

    def __init__(self, message: str, code: str | None = None):
        if code is not None:
            self.code = code
        super().__init__(f"[err:{self.code}] {message}")


class XQueryStaticError(XQueryError):
    """Error detected during parsing / static analysis (XPST*)."""

    code = "XPST0003"


class XQueryTypeError(XQueryError):
    """Dynamic type error (XPTY*, FORG*, FOTY*)."""

    code = "XPTY0004"


class XQueryDynamicError(XQueryError):
    """Generic dynamic evaluation error (XPDY*, FO*)."""

    code = "XPDY0002"


class CastError(XQueryTypeError):
    """A value could not be cast to the requested atomic type (FORG0001)."""

    code = "FORG0001"


class SQLError(ReproError):
    """An SQL compile-time or runtime error with an SQLSTATE-like code."""

    def __init__(self, message: str, sqlstate: str = "42000"):
        self.sqlstate = sqlstate
        super().__init__(f"[SQLSTATE {sqlstate}] {message}")


class SQLSyntaxError(SQLError):
    def __init__(self, message: str):
        super().__init__(message, sqlstate="42601")


class SQLCastError(SQLError):
    """XMLCAST failures: non-singleton input or value out of range."""

    def __init__(self, message: str):
        super().__init__(message, sqlstate="22001")


class CatalogError(ReproError):
    """Unknown or duplicate table / column / index names.

    Carries an SQLSTATE-style class code (``sqlstate``) so callers can
    dispatch on the error class without parsing the message: ``42000``
    (syntax/ddl, the default), ``42703`` (undefined column, e.g. a row
    missing a relationally indexed column).
    """

    def __init__(self, message: str, sqlstate: str = "42000"):
        self.sqlstate = sqlstate
        super().__init__(message)


class PatternSyntaxError(ReproError):
    """Raised for malformed XMLPATTERN index definitions."""


class DurabilityError(ReproError):
    """Corrupt or inconsistent WAL / checkpoint state on disk."""


class QueryTimeoutError(ReproError):
    """A statement overran its deadline (SQLSTATE 57014, the
    query-cancelled class) and was aborted mid-evaluation by its
    :class:`repro.xquery.guard.QueryGuard`."""

    def __init__(self, message: str):
        self.sqlstate = "57014"
        super().__init__(f"[SQLSTATE 57014] {message}")


class QueryLimitError(ReproError):
    """A statement exceeded a configured result budget — row count or
    serialized bytes (SQLSTATE 54000, program limit exceeded)."""

    def __init__(self, message: str):
        self.sqlstate = "54000"
        super().__init__(f"[SQLSTATE 54000] {message}")


class ServerError(ReproError):
    """Base class for the network front door's typed failures; carries
    an SQLSTATE-style class code like :class:`SQLError`."""

    sqlstate = "58000"

    def __init__(self, message: str, sqlstate: str | None = None):
        if sqlstate is not None:
            self.sqlstate = sqlstate
        super().__init__(f"[SQLSTATE {self.sqlstate}] {message}")


class AdmissionError(ServerError):
    """The bounded admission queue is full: the statement was shed
    instead of queued (SQLSTATE 53300, too many connections)."""

    sqlstate = "53300"


class ProtocolError(ServerError):
    """A malformed, torn, or oversized protocol frame (SQLSTATE 08P01,
    protocol violation)."""

    sqlstate = "08P01"


class ReplicationError(ReproError):
    """A read replica or the process pool serving it misbehaved."""


class StaleReplicaError(ReplicationError):
    """A replica was asked to serve a snapshot version it has not yet
    applied (``required_lsn`` is above its ``last_applied_lsn``)."""

    def __init__(self, required_lsn: int, last_applied_lsn: int):
        self.required_lsn = required_lsn
        self.last_applied_lsn = last_applied_lsn
        super().__init__(
            f"replica is stale: required LSN {required_lsn} but only "
            f"{last_applied_lsn} applied")
