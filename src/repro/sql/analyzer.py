"""SQL/XML statement analysis: locate embedded XQuery and classify it.

Section 3.2's whole point is that *where* an XQuery expression sits in
the SQL statement decides whether its predicates may use indexes:

=======================================  ==========================
position                                 context
=======================================  ==========================
XMLQUERY in the select list              SQL_SELECT_LIST (no filter)
XMLEXISTS in WHERE                       SQL_WHERE_XMLEXISTS (filters)
XMLEXISTS in WHERE, boolean-valued body  SQL_BOOLEAN_XMLEXISTS (never
                                         filters — Query 9)
XMLTABLE row-producer                    SQL_XMLTABLE_ROW (filters)
XMLTABLE COLUMNS ... PATH                SQL_XMLTABLE_COLUMN (NULLs,
                                         no filter — Query 12)
XMLQUERY/XMLCAST elsewhere               SQL_SCALAR (no filter)
=======================================  ==========================

For each embedded query two candidate sets are extracted:

* **row candidates** — rooted at PASSING variables bound to one XML
  document per SQL row; their context is the SQL position above;
* **global candidates** — rooted at ``db2-fn:xmlcolumn`` inside the
  body; their context comes from ordinary XQuery analysis, since the
  collection access is row-independent (Query 6 vs Query 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.predicates import (Origin, PredicateCandidate, PredicateContext,
                               SQLTypedValue, extract_candidates)
from ..xquery import ast as xast
from ..xquery.parser import parse_xquery
from . import ast
from .values import SQLType


@dataclass
class EmbeddedQuery:
    """One XQuery expression embedded in an SQL statement."""

    text: str
    module: object                      # parsed xquery Module
    passing: list[ast.PassingArg]
    sql_context: PredicateContext
    #: var -> Origin | SQLTypedValue
    scope: dict[str, object] = field(default_factory=dict)
    #: var -> FROM alias the passing expression reads from
    alias_of_var: dict[str, str] = field(default_factory=dict)
    row_candidates: list[PredicateCandidate] = field(default_factory=list)
    global_candidates: list[PredicateCandidate] = field(default_factory=list)
    #: set for XMLTABLE refs: the produced alias
    produces_alias: str | None = None


_BOOLEAN_FUNCTIONS = {"not", "exists", "empty", "boolean", "true", "false",
                      "contains", "starts-with", "ends-with", "matches",
                      "deep-equal"}


def body_is_boolean(module) -> bool:
    """Does the XQuery body always return a (non-empty) boolean?

    This is the Query 9 trap: XMLEXISTS over such a body is always
    true, because a boolean is a one-item sequence.
    """
    body = module.body
    if isinstance(body, (xast.GeneralComparison, xast.ValueComparison,
                         xast.NodeComparison, xast.AndExpr, xast.OrExpr,
                         xast.QuantifiedExpr, xast.CastableExpr,
                         xast.InstanceOfExpr)):
        return True
    if isinstance(body, xast.FunctionCall) and \
            body.name.local in _BOOLEAN_FUNCTIONS:
        return True
    return False


def alias_table_map(statement: ast.SelectStmt | ast.ValuesStmt
                    ) -> dict[str, str]:
    """FROM alias -> base table name (XMLTABLE aliases map to '')."""
    aliases: dict[str, str] = {}
    if isinstance(statement, ast.SelectStmt):
        for ref in statement.from_refs:
            if isinstance(ref, ast.TableRef):
                aliases[ref.alias] = ref.name
            else:
                aliases[ref.alias] = ""
    return aliases


def resolve_column(database, aliases: dict[str, str],
                   ref: ast.ColumnRef) -> tuple[str, str, SQLType] | None:
    """Resolve a column reference to (table, column, type)."""
    if ref.qualifier is not None:
        table_name = aliases.get(ref.qualifier)
        if not table_name:
            return None
        table = database.table(table_name)
        if ref.name in table.columns:
            return table_name, ref.name, table.columns[ref.name]
        return None
    matches = []
    for alias, table_name in aliases.items():
        if not table_name:
            continue
        table = database.table(table_name)
        if ref.name in table.columns:
            matches.append((table_name, ref.name,
                            table.columns[ref.name]))
    if len(matches) == 1:
        return matches[0]
    return None


def alias_for_column(aliases: dict[str, str], database,
                     ref: ast.ColumnRef) -> str | None:
    if ref.qualifier is not None:
        return ref.qualifier if ref.qualifier in aliases else None
    found = None
    for alias, table_name in aliases.items():
        if not table_name:
            continue
        if ref.name in database.table(table_name).columns:
            if found is not None:
                return None
            found = alias
    return found


def build_scope(database, aliases: dict[str, str],
                passing: list[ast.PassingArg]
                ) -> tuple[dict[str, object], dict[str, str]]:
    """Map PASSING variables to Origins / SQL types, and to aliases."""
    scope: dict[str, object] = {}
    alias_of_var: dict[str, str] = {}
    for argument in passing:
        if not isinstance(argument.expr, ast.ColumnRef):
            continue
        resolved = resolve_column(database, aliases, argument.expr)
        if resolved is None:
            continue
        table_name, column, sql_type = resolved
        if sql_type.is_xml:
            scope[argument.variable] = Origin(f"{table_name}.{column}")
        else:
            scope[argument.variable] = SQLTypedValue(sql_type.name)
        alias = alias_for_column(aliases, database, argument.expr)
        if alias is not None:
            alias_of_var[argument.variable] = alias
    return scope, alias_of_var


def analyze_embedded(database, aliases: dict[str, str], text: str,
                     passing: list[ast.PassingArg],
                     sql_context: PredicateContext,
                     produces_alias: str | None = None) -> EmbeddedQuery:
    module = parse_xquery(text)
    scope, alias_of_var = build_scope(database, aliases, passing)
    context = sql_context
    if sql_context is PredicateContext.SQL_WHERE_XMLEXISTS and \
            body_is_boolean(module):
        context = PredicateContext.SQL_BOOLEAN_XMLEXISTS
    embedded = EmbeddedQuery(text, module, passing, context, scope,
                             alias_of_var, produces_alias=produces_alias)
    embedded.row_candidates = extract_candidates(
        module, base_scope=scope, base_context=context,
        suppress_xmlcolumn=True)
    embedded.global_candidates = extract_candidates(module)
    return embedded


def collect_embedded(database, statement) -> list[EmbeddedQuery]:
    """Every embedded XQuery in the statement, fully classified."""
    aliases = alias_table_map(statement)
    found: list[EmbeddedQuery] = []

    def scan_expr(expr, context: PredicateContext) -> None:
        if isinstance(expr, ast.XMLQueryExpr):
            found.append(analyze_embedded(database, aliases, expr.xquery,
                                          expr.passing, context))
        elif isinstance(expr, ast.XMLExistsExpr):
            found.append(analyze_embedded(
                database, aliases, expr.xquery, expr.passing,
                PredicateContext.SQL_WHERE_XMLEXISTS
                if context is PredicateContext.SQL_WHERE_XMLEXISTS
                else context))
        elif isinstance(expr, ast.XMLCastExpr):
            scan_expr(expr.operand, context)
        elif isinstance(expr, (ast.XMLElementExpr, ast.XMLForestExpr,
                               ast.XMLConcatExpr)):
            for child in _publishing_children(expr):
                scan_expr(child, context)
        elif isinstance(expr, ast.Comparison):
            scan_expr(expr.left, context)
            scan_expr(expr.right, context)
        elif isinstance(expr, (ast.AndCond, ast.OrCond)):
            scan_expr(expr.left, context)
            scan_expr(expr.right, context)
        elif isinstance(expr, ast.NotCond):
            scan_expr(expr.operand, context)
        elif isinstance(expr, ast.IsNullCond):
            scan_expr(expr.operand, context)

    if isinstance(statement, ast.ValuesStmt):
        for expr in statement.exprs:
            scan_expr(expr, PredicateContext.SQL_SELECT_LIST)
        return found

    for item in statement.items:
        scan_expr(item.expr, PredicateContext.SQL_SELECT_LIST)
    for ref in statement.from_refs:
        if isinstance(ref, ast.XMLTableRef):
            found.append(analyze_embedded(
                database, aliases, ref.row_xquery, ref.passing,
                PredicateContext.SQL_XMLTABLE_ROW,
                produces_alias=ref.alias))
            row_module = parse_xquery(ref.row_xquery)
            scope, _alias_map = build_scope(database, aliases, ref.passing)
            extractor_scope = dict(scope)
            from ..core.predicates import _Extractor
            row_origin = _Extractor().origin_of(row_module.body,
                                                extractor_scope)
            for column in ref.columns:
                if column.path is None or column.for_ordinality:
                    continue
                column_module = parse_xquery(column.path)
                column_scope = dict(scope)
                if row_origin is not None:
                    column_scope["."] = row_origin
                embedded = EmbeddedQuery(
                    column.path, column_module, ref.passing,
                    PredicateContext.SQL_XMLTABLE_COLUMN, column_scope,
                    {})
                embedded.row_candidates = extract_candidates(
                    column_module, base_scope=column_scope,
                    base_context=PredicateContext.SQL_XMLTABLE_COLUMN,
                    suppress_xmlcolumn=True)
                found.append(embedded)
    if statement.where is not None:
        for conjunct in split_conjuncts(statement.where):
            if isinstance(conjunct, ast.XMLExistsExpr):
                found.append(analyze_embedded(
                    database, aliases, conjunct.xquery, conjunct.passing,
                    PredicateContext.SQL_WHERE_XMLEXISTS))
            elif isinstance(conjunct, ast.Comparison):
                _analyze_sql_comparison(database, aliases, conjunct, found)
            else:
                scan_expr(conjunct, PredicateContext.SQL_SCALAR)
    return found


def _publishing_children(expr) -> list:
    if isinstance(expr, ast.XMLElementExpr):
        return ([value for _name, value in expr.attributes] +
                list(expr.content))
    if isinstance(expr, ast.XMLForestExpr):
        return [value for _name, value in expr.items]
    return list(expr.items)


def _analyze_sql_comparison(database, aliases, comparison: ast.Comparison,
                            found: list[EmbeddedQuery]) -> None:
    """A WHERE comparison over XMLCAST(XMLQUERY(...)) — Section 3.3.

    The embedded paths are extracted and flagged ``uses_sql_comparison``
    so the eligibility report can explain that *no XML index* applies
    even though the predicate filters rows (Query 15).
    """
    for side in (comparison.left, comparison.right):
        inner = side
        if isinstance(inner, ast.XMLCastExpr):
            inner = inner.operand
        if not isinstance(inner, ast.XMLQueryExpr):
            continue
        embedded = analyze_embedded(database, aliases, inner.xquery,
                                    inner.passing,
                                    PredicateContext.SQL_WHERE_COMPARISON)
        # The path itself carries no comparison; synthesize a candidate
        # for the value the XMLCAST extracts, marked as an SQL-side
        # comparison so check_index reports Reason.SQL_COMPARISON.
        from ..core.predicates import _Extractor
        origin = _Extractor().origin_of(embedded.module.body,
                                        dict(embedded.scope))
        if origin is not None and origin.column and origin.steps:
            from ..core.patterns import LinearPattern, PathPattern
            embedded.row_candidates.append(PredicateCandidate(
                column=origin.column,
                path=PathPattern((LinearPattern(origin.steps),)),
                op=comparison.op if comparison.op != "<>" else "!=",
                operand_type=None,
                operand_value=None,
                context=PredicateContext.SQL_WHERE_COMPARISON,
                uses_sql_comparison=True,
                description=f"SQL comparison over XMLCAST("
                            f"XMLQUERY('{embedded.text[:40]}...'))"))
        found.append(embedded)


def split_conjuncts(condition) -> list:
    if isinstance(condition, ast.AndCond):
        return (split_conjuncts(condition.left) +
                split_conjuncts(condition.right))
    return [condition]


def extract_sql_candidates(database, statement_text: str
                           ) -> list[PredicateCandidate]:
    """All candidates in an SQL statement (for eligibility reports)."""
    from .parser import parse_statement
    statement = parse_statement(statement_text)
    candidates: list[PredicateCandidate] = []
    for embedded in collect_embedded(database, statement):
        candidates.extend(embedded.row_candidates)
        # Global (xmlcolumn-rooted) candidates keep their XQuery
        # contexts; they matter for Queries 6/7-style statements.
        candidates.extend(embedded.global_candidates)
    return candidates
