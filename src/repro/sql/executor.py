"""SQL/XML executor with index-aware access paths.

Executes SELECT/VALUES statements over the catalog with exactly the
semantics Section 3.2/3.3 describe:

* ``XMLQUERY`` in the select list runs per row and returns possibly
  empty sequences — rows are never eliminated (Query 5);
* ``XMLEXISTS`` in WHERE filters rows on sequence non-emptiness, which
  makes a boolean-valued body useless (Query 9);
* ``XMLTABLE`` performs a lateral join; its row-producer determines
  cardinality while column paths yield NULL on empty (Queries 11/12);
* ``XMLCAST`` enforces singletons and VARCHAR length limits — the
  Query 14 runtime errors;
* SQL comparisons use padded string semantics, unlike XQuery.

Access paths (``use_indexes=True``):

* row prefilters from eligible XMLEXISTS / XMLTABLE-row predicates with
  literal bounds (Definition 1 at row granularity);
* index nested-loop joins: an eligible join predicate probes the XML
  index with a value computed from the outer row (Queries 13/16), or a
  relational index with an SQL-side value (Query 14);
* embedded ``db2-fn:xmlcolumn`` bodies get their own collection-level
  prefilter via the XQuery planner (Query 6).
"""

from __future__ import annotations

import datetime as _dt
import time
from dataclasses import dataclass, field
from decimal import Decimal

from ..core.eligibility import check_index
from ..core.predicates import Origin, PredicateCandidate
from ..errors import ReproError, SQLCastError, SQLError
from ..obs.metrics import METRICS
from ..planner.plan import PrefilteredDatabase, plan_prefilters
from ..planner.stats import ExecutionStats
from ..xquery.guard import active_guard
from ..xdm import atomic
from ..xdm.atomic import AtomicValue
from ..xdm.nodes import AttributeNode, ElementNode, Node, TextNode, copy_node
from ..xdm.qname import QName
from ..xdm.sequence import Item, atomize
from ..xquery.context import DynamicContext
from ..xquery.evaluator import Evaluator, evaluate_module
from ..xquery.parser import parse_xquery
from . import ast
from .analyzer import (EmbeddedQuery, alias_table_map, collect_embedded,
                       resolve_column, split_conjuncts)
from .values import SQLType, XMLValue, sql_compare


@dataclass
class SQLResult:
    columns: list[str]
    rows: list[tuple]
    stats: ExecutionStats

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def serialize_rows(self) -> list[tuple]:
        """Rows with XML values rendered as text (for display/tests)."""
        from ..xmlio.serializer import serialize_sequence
        rendered = []
        # sa: ok(SA406: post-execution rendering; server charges bytes)
        for row in self.rows:
            rendered.append(tuple(
                serialize_sequence(value.items)
                if isinstance(value, XMLValue) else value
                for value in row))
        return rendered


@dataclass
class _JoinProbe:
    target_alias: str
    kind: str                       # 'xml' | 'rel'
    index: object
    outer_deps: frozenset[str]
    # xml probes:
    candidate: PredicateCandidate | None = None
    embedded: EmbeddedQuery | None = None
    # rel probes:
    sql_expr: object | None = None


@dataclass
class _Plan:
    row_filters: dict[str, set[int]] = field(default_factory=dict)
    #: alias -> allowed doc ids (for XML prefilters)
    doc_filters: dict[str, set[int]] = field(default_factory=dict)
    join_probes: list[_JoinProbe] = field(default_factory=list)


def execute_sql(database, statement_text: str,
                use_indexes: bool = True, tracer=None) -> SQLResult:
    from .parser import parse_statement
    profiler = getattr(database, "workload_profiler", None)
    started = (time.perf_counter()
               if METRICS.enabled or profiler is not None else 0.0)
    if tracer is not None:
        with tracer.span("parse") as span:
            statement = parse_statement(statement_text)
            span.set(kind=type(statement).__name__)
    else:
        statement = parse_statement(statement_text)
    executor = _SQLExecutor(database, use_indexes, tracer=tracer)
    result = executor.run(statement)
    if METRICS.enabled:
        METRICS.inc("queries.sql")
        METRICS.inc("rows.scanned", result.stats.rows_scanned)
        METRICS.observe("query.seconds", time.perf_counter() - started)
    if profiler is not None:
        profiler.observe_query(statement_text, "sql", result.stats,
                               time.perf_counter() - started)
    return result


def explain_sql(database, statement_text: str) -> str:
    """Human-readable eligibility report + access plan for a statement."""
    from ..core.eligibility import analyze_candidates
    from .analyzer import extract_sql_candidates
    from .parser import parse_statement

    candidates = extract_sql_candidates(database, statement_text)
    report = analyze_candidates(database, candidates, statement_text,
                                "sql")
    lines = [report.explain(), "plan:"]
    statement = parse_statement(statement_text)
    if isinstance(statement, ast.SelectStmt):
        executor = _SQLExecutor(database, use_indexes=True)
        aliases = alias_table_map(statement)
        plan = executor._plan(statement, aliases)
        ordered = executor._order_joins(statement.from_refs, plan)
        lines.append("  join order: " +
                     " -> ".join(ref.alias for ref in ordered))
        for alias, docs in plan.doc_filters.items():
            lines.append(f"  doc prefilter on {alias}: "
                         f"{len(docs)} documents")
        for alias, rows in plan.row_filters.items():
            lines.append(f"  row prefilter on {alias}: {len(rows)} rows")
        for probe in plan.join_probes:
            lines.append(
                f"  {probe.kind} index nested-loop into "
                f"{probe.target_alias} via {probe.index.name} "
                f"(outer: {sorted(probe.outer_deps)})")
        if not (plan.doc_filters or plan.row_filters or plan.join_probes):
            lines.append("  full scans on every table")
        for note in executor.stats.plan_notes:
            lines.append(f"  note: {note}")
    else:
        lines.append("  VALUES: no table access")
    return "\n".join(lines)


class _SQLExecutor:
    def __init__(self, database, use_indexes: bool, tracer=None):
        self.database = database
        self.use_indexes = use_indexes
        self.stats = ExecutionStats()
        self.tracer = tracer
        self._body_cache: dict[str, tuple[object, object]] = {}

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def run(self, statement) -> SQLResult:
        if isinstance(statement, ast.ValuesStmt):
            row = tuple(self.eval_expr(expr, {}) for expr in statement.exprs)
            return SQLResult([f"col{i + 1}" for i in range(len(row))],
                             [row], self.stats)
        if isinstance(statement, ast.InsertStmt):
            return self._run_insert(statement)
        if isinstance(statement, ast.DeleteStmt):
            return self._run_delete(statement)
        return self._run_select(statement)

    def _run_insert(self, statement: ast.InsertStmt) -> SQLResult:
        table = self.database.table(statement.table)
        columns = statement.columns or list(table.columns)
        inserted = 0
        # sa: ok(SA406: statement.rows is the VALUES list — query-sized)
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SQLError(
                    f"INSERT expects {len(columns)} values, got "
                    f"{len(row_exprs)}", "42802")
            values: dict[str, object] = {}
            for column, expr in zip(columns, row_exprs):
                value = self.eval_expr(expr, {})
                sql_type = table.column_type(column)
                if sql_type.is_xml and isinstance(value, str):
                    pass  # Database.insert parses XML text
                elif sql_type.is_xml and isinstance(value, XMLValue):
                    items = value.items
                    if len(items) != 1 or not isinstance(items[0], Node):
                        raise SQLError(
                            "XML column INSERT needs a single node",
                            "42846")
                    node = items[0]
                    if node.kind != "document":
                        from ..xdm.nodes import DocumentNode
                        value = DocumentNode([copy_node(node)])
                    else:
                        value = node
                values[column] = value
            self.database.insert(statement.table, values)
            inserted += 1
        self.stats.note(f"inserted {inserted} row(s) into "
                        f"{statement.table}")
        return SQLResult(["rows_inserted"], [(inserted,)], self.stats)

    def _run_delete(self, statement: ast.DeleteStmt) -> SQLResult:
        table = self.database.table(statement.table)

        def matches(row_values: dict) -> bool:
            if statement.where is None:
                return True
            row = next(row for row in table.rows
                       if row.values is row_values)
            env = {statement.alias: ("table", statement.table, row)}
            return self._condition(statement.where, env) is True

        removed = self.database.delete_rows(statement.table, matches)
        self.stats.note(f"deleted {removed} row(s) from "
                        f"{statement.table}")
        return SQLResult(["rows_deleted"], [(removed,)], self.stats)

    def _run_select(self, statement: ast.SelectStmt) -> SQLResult:
        aliases = alias_table_map(statement)
        if self.tracer is not None:
            with self.tracer.span("plan") as span:
                plan = (self._plan(statement, aliases)
                        if self.use_indexes else _Plan())
                span.set(doc_filters=len(plan.doc_filters),
                         row_filters=len(plan.row_filters),
                         join_probes=len(plan.join_probes))
        else:
            plan = (self._plan(statement, aliases)
                    if self.use_indexes else _Plan())

        from_refs = self._order_joins(statement.from_refs, plan)
        envs: list[dict] = []
        if self.tracer is not None:
            rows_before = self.stats.rows_scanned
            with self.tracer.span("join-scan") as span:
                self._join([], from_refs, statement, plan, {}, envs)
                span.set(actual_rows=len(envs), unit="rows",
                         rows_scanned=(self.stats.rows_scanned -
                                       rows_before))
        else:
            self._join([], from_refs, statement, plan, {}, envs)

        guard = active_guard()
        if guard is not None:
            # Pure SQL obeys the same row budget as a FLWOR return
            # clause: a joined row set beyond the cap aborts (54000)
            # instead of being projected and filtered down later.
            guard.check_items(len(envs))

        columns = [self._column_name(item, position)
                   for position, item in enumerate(statement.items, 1)]

        if statement.group_by or self._has_aggregates(statement):
            return self._run_grouped(statement, envs, columns)

        if statement.order_by:
            def sort_key(env):
                keys = []
                for expr, descending in statement.order_by:
                    value = self.eval_expr(expr, env)
                    keys.append(_OrderKey(value, descending))
                return keys
            envs.sort(key=sort_key)

        if self.tracer is not None:
            with self.tracer.span("project") as span:
                rows = [tuple(self.eval_expr(item.expr, env)
                              for item in statement.items)
                        for env in envs]
                span.set(actual_rows=len(rows), unit="rows")
        else:
            rows = [tuple(self.eval_expr(item.expr, env)
                          for item in statement.items)
                    for env in envs]
        return SQLResult(columns, rows, self.stats)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _has_aggregates(self, statement: ast.SelectStmt) -> bool:
        return any(self._contains_aggregate(item.expr)
                   for item in statement.items) or \
            (statement.having is not None and
             self._contains_aggregate(statement.having))

    def _contains_aggregate(self, expr) -> bool:
        if isinstance(expr, ast.AggregateExpr):
            return True
        for name in getattr(expr, "__dataclass_fields__", {}):
            value = getattr(expr, name)
            if isinstance(value, ast.SQLExpr) and \
                    self._contains_aggregate(value):
                return True
            if isinstance(value, list) and any(
                    isinstance(element, ast.SQLExpr) and
                    self._contains_aggregate(element)
                    for element in value):
                return True
        return False

    def _run_grouped(self, statement: ast.SelectStmt, envs: list[dict],
                     columns: list[str]) -> SQLResult:
        guard = active_guard()
        if guard is not None:
            # Grouping evaluates the GROUP BY keys once per input row.
            guard.tick(len(envs) + 1)
        groups: dict[tuple, list[dict]] = {}
        for env in envs:
            key = tuple(_group_key(self.eval_expr(expr, env))
                        for expr in statement.group_by)
            groups.setdefault(key, []).append(env)
        if not statement.group_by and not groups:
            groups[()] = []   # aggregates over an empty input: one row

        rows: list[tuple] = []
        keyed_rows: list[tuple[list, tuple]] = []
        for group_envs in groups.values():
            if statement.having is not None:
                keep = self._grouped_condition(statement.having,
                                               group_envs)
                if keep is not True:
                    continue
            row = tuple(self._grouped_value(item.expr, group_envs)
                        for item in statement.items)
            if statement.order_by:
                keys = [_OrderKey(self._grouped_value(expr, group_envs),
                                  descending)
                        for expr, descending in statement.order_by]
                keyed_rows.append((keys, row))
            else:
                rows.append(row)
        if statement.order_by:
            keyed_rows.sort(key=lambda pair: pair[0])
            rows = [row for _keys, row in keyed_rows]
        return SQLResult(columns, rows, self.stats)

    def _grouped_value(self, expr, group_envs: list[dict]):
        if isinstance(expr, ast.AggregateExpr):
            return self._eval_aggregate(expr, group_envs)
        if self._contains_aggregate(expr):
            if isinstance(expr, ast.Comparison):
                return sql_compare(
                    expr.op,
                    self._grouped_value(expr.left, group_envs),
                    self._grouped_value(expr.right, group_envs))
            raise SQLError("aggregates may only be nested in "
                           "comparisons", "42903")
        if not group_envs:
            return None
        return self.eval_expr(expr, group_envs[0])

    def _grouped_condition(self, condition, group_envs: list[dict]):
        if isinstance(condition, ast.AndCond):
            left = self._grouped_condition(condition.left, group_envs)
            right = self._grouped_condition(condition.right, group_envs)
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if isinstance(condition, ast.OrCond):
            left = self._grouped_condition(condition.left, group_envs)
            right = self._grouped_condition(condition.right, group_envs)
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return False
        if isinstance(condition, ast.NotCond):
            inner = self._grouped_condition(condition.operand, group_envs)
            return None if inner is None else (not inner)
        if isinstance(condition, ast.Comparison):
            return sql_compare(
                condition.op,
                self._grouped_value(condition.left, group_envs),
                self._grouped_value(condition.right, group_envs))
        raise SQLError("unsupported HAVING condition", "42903")

    def _eval_aggregate(self, expr: ast.AggregateExpr,
                        group_envs: list[dict]):
        if expr.function == "COUNT" and expr.argument is None:
            return len(group_envs)
        guard = active_guard()
        if guard is not None:
            # Aggregates evaluate their argument once per group row.
            guard.tick(len(group_envs) + 1)
        values = []
        for env in group_envs:
            value = self.eval_expr(expr.argument, env)
            if value is None:
                continue  # SQL aggregates skip NULLs
            if isinstance(value, XMLValue) and expr.function != "COUNT":
                raise SQLError(
                    f"cannot {expr.function} XML values", "42818")
            values.append(value)
        if expr.distinct:
            seen = []
            for value in values:
                if value not in seen:
                    seen.append(value)
            values = seen
        if expr.function == "COUNT":
            return len(values)
        if not values:
            return None
        if expr.function == "SUM":
            return sum(values[1:], start=values[0])
        if expr.function == "AVG":
            total = sum(values[1:], start=values[0])
            return total / len(values)
        if expr.function == "MIN":
            return min(values)
        if expr.function == "MAX":
            return max(values)
        raise SQLError(f"unknown aggregate {expr.function}", "42601")

    def _column_name(self, item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        return f"col{position}"

    def _order_joins(self, from_refs: list, plan: _Plan) -> list:
        """Greedy join ordering: place an index-probe target after the
        aliases its probe depends on (so Query 14's relational probe
        into products runs per orders row, not the other way around).
        XMLTABLE refs always stay after the aliases they PASS from."""
        remaining = list(from_refs)
        ordered: list = []
        bound: set[str] = set()
        while remaining:
            chosen = None
            for ref in remaining:
                if isinstance(ref, ast.XMLTableRef):
                    deps = self._passing_aliases(ref)
                    if not deps <= bound:
                        continue
                probes = [probe for probe in plan.join_probes
                          if probe.target_alias == ref.alias]
                if probes and not any(probe.outer_deps <= bound
                                      for probe in probes):
                    # Defer: its probe could become usable later.
                    deferrable = any(
                        probe.outer_deps <= bound |
                        {other.alias for other in remaining
                         if other is not ref}
                        for probe in probes)
                    if deferrable:
                        continue
                chosen = ref
                break
            if chosen is None:
                chosen = remaining[0]
            ordered.append(chosen)
            bound.add(chosen.alias)
            remaining.remove(chosen)
        return ordered

    def _passing_aliases(self, ref: ast.XMLTableRef) -> set[str]:
        deps: set[str] = set()
        for argument in ref.passing:
            if isinstance(argument.expr, ast.ColumnRef) and \
                    argument.expr.qualifier is not None:
                deps.add(argument.expr.qualifier)
        return deps

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan(self, statement: ast.SelectStmt,
              aliases: dict[str, str]) -> _Plan:
        plan = _Plan()
        embedded_queries = collect_embedded(self.database, statement)
        for embedded in embedded_queries:
            self._plan_embedded(embedded, plan)
        if statement.where is not None:
            for conjunct in split_conjuncts(statement.where):
                if isinstance(conjunct, ast.Comparison):
                    self._plan_relational(conjunct, aliases, plan)
        return plan

    def _plan_embedded(self, embedded: EmbeddedQuery, plan: _Plan) -> None:
        #: var -> alias for origin columns
        origin_alias: dict[str, str] = {}
        for var, bound in embedded.scope.items():
            if isinstance(bound, Origin):
                alias = embedded.alias_of_var.get(var)
                if alias is not None:
                    origin_alias[bound.column] = alias
        for candidate in embedded.row_candidates:
            alias = origin_alias.get(candidate.column)
            if alias is None:
                continue
            table, _sep, column = candidate.column.partition(".")
            chosen = None
            for index in self.database.xml_indexes_on(table, column):
                if check_index(index, candidate).eligible:
                    chosen = index
                    break
            if chosen is None:
                continue
            if candidate.operand_value is not None or \
                    candidate.op == "exists":
                docs = self._probe_docs(chosen, candidate)
                if docs is None:
                    continue
                existing = plan.doc_filters.get(alias)
                plan.doc_filters[alias] = (docs if existing is None
                                           else existing & docs)
                self.stats.note(
                    f"row prefilter on {alias} via {chosen.name}: "
                    f"{candidate.description} "
                    f"[{candidate.context.value}]")
            elif candidate.operand_expr is not None and \
                    candidate.is_equality:
                deps = {embedded.alias_of_var.get(var)
                        for var in candidate.operand_vars}
                if None in deps or not deps:
                    continue
                plan.join_probes.append(_JoinProbe(
                    target_alias=alias, kind="xml", index=chosen,
                    outer_deps=frozenset(deps), candidate=candidate,
                    embedded=embedded))
                self.stats.note(
                    f"index nested-loop join into {alias} via "
                    f"{chosen.name}: {candidate.description}")

    def _probe_docs(self, index, candidate: PredicateCandidate
                    ) -> set[int] | None:
        from ..planner.plan import _bounds_for
        probe = _bounds_for(candidate, index)
        if probe is None:
            return None
        if self.tracer is not None:
            with self.tracer.span("index-scan", index=index.name,
                                  range=probe.bounds_text()) as span:
                docs = probe.run(self.stats)
                span.set(actual_rows=len(docs), unit="documents")
            return docs
        return probe.run(self.stats)

    def _plan_relational(self, comparison: ast.Comparison,
                         aliases: dict[str, str], plan: _Plan) -> None:
        for own, other in ((comparison.left, comparison.right),
                           (comparison.right, comparison.left)):
            if not isinstance(own, ast.ColumnRef):
                continue
            resolved = resolve_column(self.database, aliases, own)
            if resolved is None:
                continue
            table_name, column, sql_type = resolved
            if sql_type.is_xml:
                continue
            indexes = self.database.rel_indexes_on(table_name, column)
            if not indexes:
                continue
            index = indexes[0]
            alias = own.qualifier or self._alias_of_table(aliases,
                                                          table_name)
            if alias is None:
                continue
            if isinstance(other, ast.SQLLiteral):
                if comparison.op != "=":
                    continue
                rows = set(index.lookup(other.value, stats=self.stats))
                existing = plan.row_filters.get(alias)
                plan.row_filters[alias] = (rows if existing is None
                                           else existing & rows)
                self.stats.note(
                    f"relational index lookup on {alias}.{column} via "
                    f"{index.name}")
            elif comparison.op == "=":
                deps = self._aliases_in(other, aliases)
                if deps and alias not in deps:
                    plan.join_probes.append(_JoinProbe(
                        target_alias=alias, kind="rel", index=index,
                        outer_deps=frozenset(deps), sql_expr=other))
                    self.stats.note(
                        f"relational index nested-loop join into {alias} "
                        f"via {index.name}")

    def _alias_of_table(self, aliases: dict[str, str],
                        table_name: str) -> str | None:
        found = None
        for alias, name in aliases.items():
            if name == table_name:
                if found is not None:
                    return None
                found = alias
        return found

    def _aliases_in(self, expr, aliases: dict[str, str]) -> set[str]:
        deps: set[str] = set()

        def visit(node) -> None:
            if isinstance(node, ast.ColumnRef):
                if node.qualifier is not None:
                    deps.add(node.qualifier)
                else:
                    alias = self._alias_of_column(node, aliases)
                    if alias is not None:
                        deps.add(alias)
            elif isinstance(node, (ast.XMLQueryExpr, ast.XMLExistsExpr)):
                for argument in node.passing:
                    visit(argument.expr)
            elif isinstance(node, ast.XMLCastExpr):
                visit(node.operand)
            elif isinstance(node, ast.Comparison):
                visit(node.left)
                visit(node.right)

        visit(expr)
        return deps

    def _alias_of_column(self, ref: ast.ColumnRef,
                         aliases: dict[str, str]) -> str | None:
        found = None
        for alias, table_name in aliases.items():
            if not table_name:
                continue
            if ref.name in self.database.table(table_name).columns:
                if found is not None:
                    return None
                found = alias
        return found

    # ------------------------------------------------------------------
    # Join enumeration
    # ------------------------------------------------------------------

    def _join(self, bound: list[str], remaining: list, statement,
              plan: _Plan, env: dict, out: list[dict]) -> None:
        if not remaining:
            if statement.where is None or \
                    self._condition(statement.where, env) is True:
                out.append(dict(env))
            return
        ref = remaining[0]
        rest = remaining[1:]
        guard = active_guard()
        if isinstance(ref, ast.TableRef):
            for row in self._rows_for(ref, plan, bound, env):
                if guard is not None:
                    # The join scan is where a runaway cross product
                    # burns time; the deadline must interrupt it here.
                    guard.tick()
                self.stats.rows_scanned += 1
                env[ref.alias] = ("table", ref.name, row)
                self._join(bound + [ref.alias], rest, statement, plan,
                           env, out)
                del env[ref.alias]
        else:
            for values in self._xmltable_rows(ref, env):
                if guard is not None:
                    guard.tick()
                env[ref.alias] = ("xmltable", values)
                self._join(bound + [ref.alias], rest, statement, plan,
                           env, out)
                del env[ref.alias]

    def _rows_for(self, ref: ast.TableRef, plan: _Plan,
                  bound: list[str], env: dict):
        table = self.database.table(ref.name)
        rows = table.rows

        probes = [probe for probe in plan.join_probes
                  if probe.target_alias == ref.alias and
                  probe.outer_deps <= set(bound)]
        if probes:
            allowed_rows = None
            for probe in probes:
                matched = self._run_join_probe(probe, env, table)
                if matched is None:
                    continue
                allowed_rows = (matched if allowed_rows is None
                                else allowed_rows & matched)
            if allowed_rows is not None:
                rows = [row for row in rows if row.row_id in allowed_rows]

        if ref.alias in plan.row_filters:
            allowed = plan.row_filters[ref.alias]
            rows = [row for row in rows if row.row_id in allowed]
        if ref.alias in plan.doc_filters:
            # A doc filter is an index verdict about the row's XML
            # documents; a row referencing *no* documents (NULL or
            # relational-only columns) is outside the index's scope and
            # must survive to be judged by the residual WHERE clause.
            allowed_docs = plan.doc_filters[ref.alias]
            rows = [row for row in rows
                    if not (docs := _row_docs(row)) or docs & allowed_docs]
        return rows

    def _run_join_probe(self, probe: _JoinProbe, env: dict,
                        table) -> set[int] | None:
        if probe.kind == "rel":
            try:
                value = self.eval_expr(probe.sql_expr, env)
            except ReproError:
                # The join key itself errors for this outer row (e.g.
                # XMLCAST over a multi-item sequence).  Fall back to a
                # scan so the error surfaces — or not — according to
                # the WHERE clause's own evaluation order.
                return None
            if value is None:
                return set()
            return set(probe.index.lookup(value, stats=self.stats))
        # XML probe: evaluate the operand per outer row.
        candidate = probe.candidate
        embedded = probe.embedded
        assert candidate is not None and embedded is not None
        variables: dict[str, list[Item]] = {}
        for argument in embedded.passing:
            if argument.variable in candidate.operand_vars:
                variables[argument.variable] = _to_xdm_items(
                    self.eval_expr(argument.expr, env))
        module = embedded.module
        ctx = DynamicContext(module.prolog, variables=variables,
                             database=self.database, stats=self.stats)
        try:
            values = atomize(Evaluator(module.prolog).evaluate(
                candidate.operand_expr, ctx))
        except ReproError:
            return None  # fall back to full scan of the inner table
        docs: set[int] = set()
        for value in values:
            try:
                key = probe.index.key_for_value(value)
            except ReproError:
                continue
            docs |= probe.index.matching_documents(
                key, key, path_filter=candidate.path, stats=self.stats)
        guard = active_guard()
        if guard is not None:
            # Mapping matched documents back to rows scans the table.
            guard.tick(len(table.rows) + 1)
        doc_to_rows: set[int] = set()
        for row in table.rows:
            if _row_docs(row) & docs:
                doc_to_rows.add(row.row_id)
        return doc_to_rows

    # ------------------------------------------------------------------
    # XMLTABLE
    # ------------------------------------------------------------------

    def _xmltable_rows(self, ref: ast.XMLTableRef, env: dict):
        items = self._eval_embedded(ref.row_xquery, ref.passing, env)
        column_names = list(ref.column_aliases)
        rows = []
        for position, item in enumerate(items, start=1):
            values: dict[str, object] = {}
            for index, column in enumerate(ref.columns):
                name = (column_names[index]
                        if index < len(column_names) else column.name)
                values[name] = self._xmltable_column_value(
                    column, item, position)
            if not ref.columns and column_names:
                values[column_names[0]] = XMLValue([item])
            rows.append(values)
        return rows

    def _xmltable_column_value(self, column: ast.XMLTableColumn,
                               item: Item, position: int):
        if column.for_ordinality:
            return position
        path = column.path if column.path is not None else column.name
        module, runtime_db = self._parse_body(path)
        items = evaluate_module(module, database=runtime_db,
                                context_item=item, stats=self.stats)
        assert column.sql_type is not None
        if column.sql_type.is_xml:
            if column.by_ref:
                return XMLValue(items) if items else None
            return XMLValue([copy_node(node) if isinstance(node, Node)
                             else node for node in items]) \
                if items else None
        if not items:
            return None  # empty sequence -> NULL (Query 12)
        return _cast_items_to_sql(items, column.sql_type)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------

    def _condition(self, condition, env: dict) -> bool | None:
        if isinstance(condition, ast.AndCond):
            left = self._condition(condition.left, env)
            if left is False:
                return False
            right = self._condition(condition.right, env)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if isinstance(condition, ast.OrCond):
            left = self._condition(condition.left, env)
            if left is True:
                return True
            right = self._condition(condition.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        if isinstance(condition, ast.NotCond):
            inner = self._condition(condition.operand, env)
            return None if inner is None else (not inner)
        if isinstance(condition, ast.IsNullCond):
            value = self.eval_expr(condition.operand, env)
            is_null = value is None
            return (not is_null) if condition.negated else is_null
        if isinstance(condition, ast.Comparison):
            left = self.eval_expr(condition.left, env)
            right = self.eval_expr(condition.right, env)
            return sql_compare(condition.op, left, right)
        if isinstance(condition, ast.XMLExistsExpr):
            items = self._eval_embedded(condition.xquery,
                                        condition.passing, env)
            return bool(items)
        value = self.eval_expr(condition, env)
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        raise SQLError("WHERE condition must be boolean", "42804")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval_expr(self, expr, env: dict):
        if isinstance(expr, ast.SQLLiteral):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            return self._column_value(expr, env)
        if isinstance(expr, ast.XMLQueryExpr):
            items = self._eval_embedded(expr.xquery, expr.passing, env)
            return XMLValue(items)
        if isinstance(expr, ast.XMLExistsExpr):
            items = self._eval_embedded(expr.xquery, expr.passing, env)
            return bool(items)
        if isinstance(expr, ast.XMLCastExpr):
            return self._xmlcast(expr, env)
        if isinstance(expr, ast.XMLElementExpr):
            return self._xmlelement(expr, env)
        if isinstance(expr, ast.XMLForestExpr):
            items: list[Item] = []
            for name, value_expr in expr.items:
                value = self.eval_expr(value_expr, env)
                if value is None:
                    continue
                items.append(_publish_element(name, value))
            return XMLValue(items)
        if isinstance(expr, ast.XMLConcatExpr):
            items = []
            for piece in expr.items:
                value = self.eval_expr(piece, env)
                if value is None:
                    continue
                items.extend(_to_xdm_items(value))
            return XMLValue(items)
        if isinstance(expr, ast.Comparison):
            return sql_compare(expr.op, self.eval_expr(expr.left, env),
                               self.eval_expr(expr.right, env))
        raise SQLError(f"cannot evaluate expression {expr!r}", "42601")

    def _column_value(self, ref: ast.ColumnRef, env: dict):
        bindings = ([env[ref.qualifier]] if ref.qualifier in env
                    else list(env.values()) if ref.qualifier is None
                    else None)
        if bindings is None:
            raise SQLError(f"unknown qualifier {ref.qualifier!r}", "42703")
        for binding in bindings:
            if binding[0] == "table":
                _kind, table_name, row = binding
                if ref.name in row.values:
                    return _sql_value(row.values[ref.name])
            else:
                _kind, values = binding
                if ref.name in values:
                    return values[ref.name]
        raise SQLError(f"unknown column {ref}", "42703")

    def _xmlcast(self, expr: ast.XMLCastExpr, env: dict):
        value = self.eval_expr(expr.operand, env)
        if value is None:
            return None
        if isinstance(value, XMLValue):
            if not value.items:
                return None
            return _cast_items_to_sql(value.items, expr.target)
        from .values import coerce_to_type
        return coerce_to_type(value, expr.target)

    def _xmlelement(self, expr: ast.XMLElementExpr, env: dict) -> XMLValue:
        element = ElementNode(QName("", expr.name))
        for name, value_expr in expr.attributes:
            value = self.eval_expr(value_expr, env)
            if value is None:
                continue
            element.add_attribute(AttributeNode(QName("", name),
                                                _sql_to_text(value)))
        for content_expr in expr.content:
            value = self.eval_expr(content_expr, env)
            if value is None:
                continue
            for item in _to_xdm_items(value):
                if isinstance(item, Node):
                    element.append_child(copy_node(item))
                else:
                    element.append_child(TextNode(item.string_value()))
        return XMLValue([element])

    # ------------------------------------------------------------------
    # Embedded XQuery
    # ------------------------------------------------------------------

    def _parse_body(self, text: str):
        cached = self._body_cache.get(text)
        if cached is None:
            from ..core.querycache import compile_query
            compiled = compile_query(text)
            module = compiled.module
            runtime_db = self.database
            if self.use_indexes:
                candidates = list(compiled.candidates)
                prefilters = plan_prefilters(self.database, candidates,
                                             self.stats)
                if prefilters:
                    estimator = None
                    if self.tracer is not None:
                        from ..planner.plan import _make_probe_estimator
                        estimator = _make_probe_estimator(self.database)
                    doc_filters = {}
                    for column, prefilter in prefilters.items():
                        if self.tracer is not None:
                            with self.tracer.span("index-probe",
                                                  column=column) as span:
                                docs = prefilter.run(
                                    self.stats, tracer=self.tracer,
                                    estimator=estimator)
                                span.set(actual_rows=len(docs),
                                         unit="documents")
                        else:
                            docs = prefilter.run(self.stats)
                        doc_filters[column] = docs
                        for note in prefilter.notes:
                            self.stats.note(note)
                    runtime_db = PrefilteredDatabase(self.database,
                                                     doc_filters)
            cached = (module, runtime_db)
            self._body_cache[text] = cached
        return cached

    def _eval_embedded(self, text: str, passing, env: dict) -> list[Item]:
        module, runtime_db = self._parse_body(text)
        variables: dict[str, list[Item]] = {}
        for argument in passing:
            variables[argument.variable] = _to_xdm_items(
                self.eval_expr(argument.expr, env))
        return evaluate_module(module, database=runtime_db,
                               variables=variables, stats=self.stats)


# ---------------------------------------------------------------------------
# Value conversions
# ---------------------------------------------------------------------------

def _group_key(value):
    """Grouping key normalization (padded strings, hashable)."""
    if isinstance(value, str):
        return value.rstrip(" ")
    if isinstance(value, XMLValue):
        raise SQLError("cannot GROUP BY an XML value", "42818")
    return value


def _row_docs(row) -> set[int]:
    from ..storage.table import StoredDocument
    return {value.doc_id for value in row.values.values()
            if isinstance(value, StoredDocument)}


def _sql_value(stored):
    from ..storage.table import StoredDocument
    if isinstance(stored, StoredDocument):
        return XMLValue([stored.document])
    return stored


def _to_xdm_items(value) -> list[Item]:
    if value is None:
        return []
    if isinstance(value, XMLValue):
        return list(value.items)
    if isinstance(value, bool):
        return [atomic.boolean(value)]
    if isinstance(value, int):
        return [atomic.integer(value)]
    if isinstance(value, Decimal):
        return [atomic.decimal(value)]
    if isinstance(value, float):
        return [atomic.double(value)]
    if isinstance(value, str):
        return [atomic.string(value)]
    if isinstance(value, _dt.datetime):
        return [atomic.date_time(value)]
    if isinstance(value, _dt.date):
        return [atomic.date(value)]
    raise SQLError(f"cannot pass {type(value).__name__} into XQuery",
                   "42846")


def _sql_to_text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, XMLValue):
        from ..xmlio.serializer import serialize_sequence
        return serialize_sequence(value.items)
    return str(value)


def _publish_element(name: str, value) -> ElementNode:
    element = ElementNode(QName("", name))
    for item in _to_xdm_items(value):
        if isinstance(item, Node):
            element.append_child(copy_node(item))
        else:
            element.append_child(TextNode(item.string_value()))
    return element


def _cast_items_to_sql(items: list[Item], target: SQLType):
    """XMLCAST: XML sequence -> SQL scalar, with singleton and length
    enforcement (the Query 14 error cases)."""
    if len(items) > 1:
        raise SQLCastError(
            f"XMLCAST requires a singleton sequence, got {len(items)} "
            f"items")
    atoms = atomize(items)
    if len(atoms) != 1:
        raise SQLCastError(
            f"XMLCAST requires a single atomic value, got {len(atoms)}")
    atom = atoms[0]
    try:
        return _atom_to_sql(atom, target)
    except SQLCastError:
        raise
    except Exception as exc:  # lint: broad-except-ok (typed re-wrap)
        raise SQLCastError(f"XMLCAST failed: {exc}") from exc


def _atom_to_sql(atom: AtomicValue, target: SQLType):
    name = target.name
    if name in ("VARCHAR", "CHAR"):
        text = atom.string_value()
        if target.length is not None and len(text) > target.length:
            raise SQLCastError(
                f"value {text!r} exceeds {target} length "
                f"{target.length}")
        return text
    if name in ("INTEGER", "BIGINT"):
        return int(atomic.cast(atom, atomic.T_INTEGER).value)
    if name == "DOUBLE":
        return float(atomic.cast(atom, atomic.T_DOUBLE).value)
    if name == "DECIMAL":
        result = Decimal(atomic.cast(atom, atomic.T_DECIMAL).value)
        if target.scale is not None:
            result = result.quantize(Decimal(1).scaleb(-target.scale))
        return result
    if name == "DATE":
        return atomic.cast(atom, atomic.T_DATE).value
    if name == "TIMESTAMP":
        return atomic.cast(atom, atomic.T_DATETIME).value
    if name == "BOOLEAN":
        return bool(atomic.cast(atom, atomic.T_BOOLEAN).value)
    raise SQLCastError(f"unsupported XMLCAST target {target}")


class _OrderKey:
    """Sort key wrapper: NULLs last, optional descending."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_OrderKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        if self.descending:
            return other.value < self.value
        return self.value < other.value

    def __eq__(self, other) -> bool:
        return self.value == other.value
