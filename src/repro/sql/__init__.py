"""SQL/XML engine: parser, analyzer, and executor."""

from .executor import SQLResult, execute_sql
from .parser import parse_statement
from .values import SQLType, XMLValue, sql_compare

__all__ = ["SQLResult", "SQLType", "XMLValue", "execute_sql",
           "parse_statement", "sql_compare"]
