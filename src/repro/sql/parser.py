"""SQL/XML parser for the SELECT/VALUES subset the paper exercises.

Covers: select lists with expressions and aliases; FROM with base
tables and lateral ``XMLTABLE(...)`` references; WHERE with AND/OR/NOT,
comparisons, IS [NOT] NULL and ``XMLEXISTS``; ``XMLQUERY``/``XMLCAST``
and the publishing functions ``XMLELEMENT``/``XMLFOREST``/``XMLCONCAT``;
ORDER BY; VALUES.
"""

from __future__ import annotations

import re
from decimal import Decimal

from ..errors import SQLSyntaxError
from . import ast
from .values import SQLType

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<qident>"(?:[^"]|"")*")
  | (?P<number>\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9$#]*)
  | (?P<symbol><>|<=|>=|!=|\|\||[(),.*=<>+\-/])
""", re.VERBOSE)

_TYPE_NAMES = {"INTEGER", "INT", "BIGINT", "DOUBLE", "DECIMAL", "NUMERIC",
               "VARCHAR", "CHAR", "DATE", "TIMESTAMP", "XML", "BOOLEAN"}


class _Token:
    __slots__ = ("type", "value", "upper")

    def __init__(self, token_type: str, value: str):
        self.type = token_type
        self.value = value
        self.upper = value.upper() if token_type == "name" else value

    def __repr__(self) -> str:
        return f"{self.type}:{self.value}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise SQLSyntaxError(
                f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "string":
            value = value[1:-1].replace("''", "'")
        elif kind == "qident":
            value = value[1:-1].replace('""', '"')
        tokens.append(_Token(kind, value))
    tokens.append(_Token("eof", ""))
    return tokens


def parse_statement(text: str) -> ast.SelectStmt | ast.ValuesStmt:
    parser = _SQLParser(_tokenize(text))
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _SQLParser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.position = 0

    # -- plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> _Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> _Token:
        token = self.peek()
        if token.type != "eof":
            self.position += 1
        return token

    def accept_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        if token.type == "name" and token.upper in keywords:
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SQLSyntaxError(
                f"expected {keyword}, got {self.peek().value!r}")

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.type == "symbol" and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise SQLSyntaxError(
                f"expected {symbol!r}, got {self.peek().value!r}")

    def expect_eof(self) -> None:
        token = self.peek()
        if token.type == "symbol" and token.value == ";":
            self.advance()
            token = self.peek()
        if token.type != "eof":
            raise SQLSyntaxError(f"trailing input {token.value!r}")

    def identifier(self) -> str:
        token = self.advance()
        if token.type == "name":
            return token.value.lower()
        if token.type == "qident":
            return token.value
        raise SQLSyntaxError(f"expected an identifier, got {token.value!r}")

    def string_literal(self) -> str:
        token = self.advance()
        if token.type != "string":
            raise SQLSyntaxError(
                f"expected a string literal, got {token.value!r}")
        return token.value

    # -- statements ------------------------------------------------------

    def parse_statement(self):
        if self.peek().upper == "SELECT":
            return self.parse_select()
        if self.peek().upper == "VALUES":
            return self.parse_values()
        if self.peek().upper == "INSERT":
            return self.parse_insert()
        if self.peek().upper == "DELETE":
            return self.parse_delete()
        raise SQLSyntaxError(
            f"expected SELECT, VALUES, INSERT or DELETE, got "
            f"{self.peek().value!r}")

    def parse_insert(self) -> ast.InsertStmt:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.identifier()
        columns: list[str] = []
        if self.accept_symbol("("):
            columns.append(self.identifier())
            while self.accept_symbol(","):
                columns.append(self.identifier())
            self.expect_symbol(")")
        self.expect_keyword("VALUES")
        rows: list[list[ast.SQLExpr]] = []
        while True:
            self.expect_symbol("(")
            row = [self.parse_expr()]
            while self.accept_symbol(","):
                row.append(self.parse_expr())
            self.expect_symbol(")")
            rows.append(row)
            if not self.accept_symbol(","):
                break
        return ast.InsertStmt(table, columns, rows)

    def parse_delete(self) -> ast.DeleteStmt:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.identifier()
        alias = table
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().type in ("name", "qident") and \
                self.peek().upper != "WHERE":
            alias = self.identifier()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        return ast.DeleteStmt(table, alias, where)

    def parse_values(self) -> ast.ValuesStmt:
        self.expect_keyword("VALUES")
        self.expect_symbol("(")
        exprs = [self.parse_expr()]
        while self.accept_symbol(","):
            exprs.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.ValuesStmt(exprs)

    def parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        from_refs = [self.parse_table_ref()]
        while self.accept_symbol(","):
            # Tolerate the paper's trailing comma (Queries 15, 16).
            if self.peek().upper in ("WHERE", "") or self.peek().type == "eof":
                break
            from_refs.append(self.parse_table_ref())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()
        group_by: list[ast.SQLExpr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_symbol(","):
                group_by.append(self.parse_expr())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_condition()
        order_by: list[tuple[ast.SQLExpr, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                elif self.accept_keyword("ASC"):
                    pass
                order_by.append((expr, descending))
                if not self.accept_symbol(","):
                    break
        return ast.SelectStmt(items, from_refs, where, group_by, having,
                              order_by)

    def parse_select_item(self) -> ast.SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().type in ("name", "qident") and \
                self.peek().upper not in ("FROM",):
            alias = self.identifier()
        return ast.SelectItem(expr, alias)

    # -- FROM ------------------------------------------------------------

    def parse_table_ref(self) -> ast.FromRef:
        if self.peek().upper == "XMLTABLE":
            return self.parse_xmltable()
        name = self.identifier()
        alias = name
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().type in ("name", "qident") and \
                self.peek().upper not in ("WHERE", "ORDER", "GROUP",
                                          "HAVING", "XMLTABLE"):
            alias = self.identifier()
        return ast.TableRef(name, alias)

    def parse_xmltable(self) -> ast.XMLTableRef:
        self.expect_keyword("XMLTABLE")
        self.expect_symbol("(")
        row_xquery = self.string_literal()
        passing = self.parse_passing()
        columns: list[ast.XMLTableColumn] = []
        if self.accept_keyword("COLUMNS"):
            columns.append(self.parse_xmltable_column())
            while self.accept_symbol(","):
                columns.append(self.parse_xmltable_column())
        self.expect_symbol(")")
        alias = "xmltable"
        column_aliases: list[str] = []
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().type in ("name", "qident") and \
                self.peek().upper not in ("WHERE", "ORDER", "GROUP",
                                          "HAVING"):
            alias = self.identifier()
        if self.accept_symbol("("):
            column_aliases.append(self.identifier())
            while self.accept_symbol(","):
                column_aliases.append(self.identifier())
            self.expect_symbol(")")
        return ast.XMLTableRef(row_xquery, passing, columns, alias,
                               column_aliases)

    def parse_xmltable_column(self) -> ast.XMLTableColumn:
        name = self.identifier().lower()
        if self.accept_keyword("FOR"):
            self.expect_keyword("ORDINALITY")
            return ast.XMLTableColumn(name, None, None,
                                      for_ordinality=True)
        sql_type = self.parse_sql_type()
        by_ref = False
        if self.accept_keyword("BY"):
            if self.accept_keyword("REF"):
                by_ref = True
            else:
                self.expect_keyword("VALUE")
        path = None
        if self.accept_keyword("PATH"):
            path = self.string_literal()
        return ast.XMLTableColumn(name, sql_type, path, by_ref)

    def parse_sql_type(self) -> SQLType:
        token = self.advance()
        if token.type != "name" or token.upper not in _TYPE_NAMES:
            raise SQLSyntaxError(f"expected an SQL type, got "
                                 f"{token.value!r}")
        text = token.upper
        if self.accept_symbol("("):
            length = self.advance().value
            text += f"({length}"
            if self.accept_symbol(","):
                text += f",{self.advance().value}"
            self.expect_symbol(")")
            text += ")"
        return SQLType.parse(text)

    def parse_passing(self) -> list[ast.PassingArg]:
        passing: list[ast.PassingArg] = []
        if self.accept_keyword("PASSING"):
            while True:
                expr = self.parse_expr()
                self.expect_keyword("AS")
                token = self.advance()
                if token.type not in ("qident", "name"):
                    raise SQLSyntaxError(
                        f"expected a variable name, got {token.value!r}")
                passing.append(ast.PassingArg(expr, token.value))
                if not self.accept_symbol(","):
                    break
        return passing

    # -- conditions --------------------------------------------------------

    def parse_condition(self) -> ast.SQLExpr:
        return self.parse_or()

    def parse_or(self) -> ast.SQLExpr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.OrCond(left, self.parse_and())
        return left

    def parse_and(self) -> ast.SQLExpr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.AndCond(left, self.parse_not())
        return left

    def parse_not(self) -> ast.SQLExpr:
        if self.accept_keyword("NOT"):
            return ast.NotCond(self.parse_not())
        if self.peek().type == "symbol" and self.peek().value == "(":
            self.advance()
            inner = self.parse_condition()
            self.expect_symbol(")")
            return inner
        return self.parse_predicate()

    def parse_predicate(self) -> ast.SQLExpr:
        left = self.parse_expr()
        token = self.peek()
        if token.type == "symbol" and token.value in ("=", "<>", "!=", "<",
                                                      "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            right = self.parse_expr()
            return ast.Comparison(op, left, right)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNullCond(left, negated)
        return left

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.SQLExpr:
        token = self.peek()
        if token.type == "string":
            self.advance()
            return ast.SQLLiteral(token.value)
        if token.type == "number":
            self.advance()
            if "." in token.value or "e" in token.value.lower():
                return ast.SQLLiteral(Decimal(token.value))
            return ast.SQLLiteral(int(token.value))
        if token.type == "symbol" and token.value == "-":
            self.advance()
            inner = self.parse_expr()
            if isinstance(inner, ast.SQLLiteral) and \
                    isinstance(inner.value, (int, Decimal)):
                return ast.SQLLiteral(-inner.value)
            raise SQLSyntaxError("unary minus only supported on literals")
        if token.type == "name":
            upper = token.upper
            if upper == "NULL":
                self.advance()
                return ast.SQLLiteral(None)
            if upper in ("COUNT", "SUM", "AVG", "MIN", "MAX") and \
                    self.peek(1).type == "symbol" and \
                    self.peek(1).value == "(":
                return self.parse_aggregate(upper)
            if upper in ("XMLQUERY", "XMLEXISTS"):
                return self.parse_xmlquery_like(upper)
            if upper == "XMLCAST":
                return self.parse_xmlcast()
            if upper == "XMLELEMENT":
                return self.parse_xmlelement()
            if upper == "XMLFOREST":
                return self.parse_xmlforest()
            if upper == "XMLCONCAT":
                return self.parse_xmlconcat()
        return self.parse_column_ref()

    def parse_column_ref(self) -> ast.ColumnRef:
        first = self.identifier()
        if self.accept_symbol("."):
            return ast.ColumnRef(first, self.identifier())
        return ast.ColumnRef(None, first)

    def parse_aggregate(self, function: str) -> ast.AggregateExpr:
        self.advance()           # function name
        self.expect_symbol("(")
        if function == "COUNT" and self.accept_symbol("*"):
            self.expect_symbol(")")
            return ast.AggregateExpr("COUNT", None)
        distinct = self.accept_keyword("DISTINCT")
        argument = self.parse_expr()
        self.expect_symbol(")")
        return ast.AggregateExpr(function, argument, distinct)

    def parse_xmlquery_like(self, keyword: str) -> ast.SQLExpr:
        self.expect_keyword(keyword)
        self.expect_symbol("(")
        xquery = self.string_literal()
        passing = self.parse_passing()
        # Tolerate RETURNING SEQUENCE [BY REF] on XMLQUERY.
        if self.accept_keyword("RETURNING"):
            self.expect_keyword("SEQUENCE")
            if self.accept_keyword("BY"):
                self.expect_keyword("REF")
        self.expect_symbol(")")
        if keyword == "XMLQUERY":
            return ast.XMLQueryExpr(xquery, passing)
        return ast.XMLExistsExpr(xquery, passing)

    def parse_xmlcast(self) -> ast.XMLCastExpr:
        self.expect_keyword("XMLCAST")
        self.expect_symbol("(")
        operand = self.parse_expr()
        self.expect_keyword("AS")
        target = self.parse_sql_type()
        self.expect_symbol(")")
        return ast.XMLCastExpr(operand, target)

    def parse_xmlelement(self) -> ast.XMLElementExpr:
        self.expect_keyword("XMLELEMENT")
        self.expect_symbol("(")
        self.expect_keyword("NAME")
        name = self.identifier()
        attributes: list[tuple[str, ast.SQLExpr]] = []
        content: list[ast.SQLExpr] = []
        while self.accept_symbol(","):
            if self.peek().upper == "XMLATTRIBUTES":
                self.advance()
                self.expect_symbol("(")
                while True:
                    expr = self.parse_expr()
                    attribute_name = None
                    if self.accept_keyword("AS"):
                        attribute_name = self.identifier()
                    elif isinstance(expr, ast.ColumnRef):
                        attribute_name = expr.name
                    if attribute_name is None:
                        raise SQLSyntaxError(
                            "XMLATTRIBUTES argument needs AS name")
                    attributes.append((attribute_name, expr))
                    if not self.accept_symbol(","):
                        break
                self.expect_symbol(")")
            else:
                content.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.XMLElementExpr(name, attributes, content)

    def parse_xmlforest(self) -> ast.XMLForestExpr:
        self.expect_keyword("XMLFOREST")
        self.expect_symbol("(")
        items: list[tuple[str, ast.SQLExpr]] = []
        while True:
            expr = self.parse_expr()
            name = None
            if self.accept_keyword("AS"):
                name = self.identifier()
            elif isinstance(expr, ast.ColumnRef):
                name = expr.name
            if name is None:
                raise SQLSyntaxError("XMLFOREST argument needs AS name")
            items.append((name, expr))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return ast.XMLForestExpr(items)

    def parse_xmlconcat(self) -> ast.XMLConcatExpr:
        self.expect_keyword("XMLCONCAT")
        self.expect_symbol("(")
        items = [self.parse_expr()]
        while self.accept_symbol(","):
            items.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.XMLConcatExpr(items)
