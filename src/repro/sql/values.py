"""SQL value domain and comparison semantics.

The SQL side differs from XQuery in exactly the ways Sections 3.3 and
3.6 call out, and this module is where those differences live:

* SQL string comparison ignores trailing blanks (``'a' = 'a  '`` is
  TRUE); XQuery's codepoint comparison does not.
* SQL has NULL and three-valued logic; XQuery has empty sequences.
* SQL values are strongly typed; there is no untypedAtomic.

An SQL value is one of: ``None`` (NULL), ``bool``, ``int``,
``decimal.Decimal``, ``float``, ``str``, ``datetime.date``,
``datetime.datetime``, or :class:`XMLValue` (a wrapped XDM sequence).
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass
from decimal import Decimal

from ..errors import SQLError
from ..xdm.sequence import Item

_TYPE_RE = re.compile(
    r"^\s*([A-Za-z ]+?)\s*(?:\(\s*(\d+)\s*(?:,\s*(\d+)\s*)?\))?\s*$")

_KNOWN_TYPES = {"INTEGER", "INT", "BIGINT", "DOUBLE", "DECIMAL", "NUMERIC",
                "VARCHAR", "CHAR", "DATE", "TIMESTAMP", "XML", "BOOLEAN"}


@dataclass(frozen=True)
class SQLType:
    """A parsed SQL type with optional length/precision."""

    name: str
    length: int | None = None
    scale: int | None = None

    @classmethod
    def parse(cls, text: str) -> "SQLType":
        match = _TYPE_RE.match(text)
        if not match:
            raise SQLError(f"malformed SQL type {text!r}", "42601")
        name = match.group(1).upper()
        if name == "INT":
            name = "INTEGER"
        if name == "NUMERIC":
            name = "DECIMAL"
        if name not in _KNOWN_TYPES:
            raise SQLError(f"unknown SQL type {text!r}", "42601")
        length = int(match.group(2)) if match.group(2) else None
        scale = int(match.group(3)) if match.group(3) else None
        return cls(name, length, scale)

    def __str__(self) -> str:
        if self.length is not None and self.scale is not None:
            return f"{self.name}({self.length},{self.scale})"
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name

    @property
    def is_xml(self) -> bool:
        return self.name == "XML"

    @property
    def is_string(self) -> bool:
        return self.name in ("VARCHAR", "CHAR")

    @property
    def is_numeric(self) -> bool:
        return self.name in ("INTEGER", "BIGINT", "DOUBLE", "DECIMAL")


@dataclass
class XMLValue:
    """An SQL value of type XML: an XQuery data model sequence."""

    items: list[Item]

    def __bool__(self) -> bool:
        return bool(self.items)


def coerce_to_type(value, sql_type: SQLType):
    """Coerce a Python value into the column's SQL type (for INSERT)."""
    if value is None:
        return None
    name = sql_type.name
    if name in ("INTEGER", "BIGINT"):
        return int(value)
    if name == "DOUBLE":
        return float(value)
    if name == "DECIMAL":
        result = Decimal(str(value))
        if sql_type.scale is not None:
            result = result.quantize(Decimal(1).scaleb(-sql_type.scale))
        return result
    if name in ("VARCHAR", "CHAR"):
        text = str(value)
        if sql_type.length is not None and len(text) > sql_type.length:
            raise SQLError(
                f"value {text!r} too long for {sql_type}", "22001")
        return text
    if name == "DATE":
        if isinstance(value, _dt.date) and not isinstance(value,
                                                          _dt.datetime):
            return value
        return _dt.date.fromisoformat(str(value))
    if name == "TIMESTAMP":
        if isinstance(value, _dt.datetime):
            return value
        return _dt.datetime.fromisoformat(str(value))
    if name == "BOOLEAN":
        return bool(value)
    raise SQLError(f"cannot coerce into {sql_type}", "42846")


def sql_compare(op: str, left, right) -> bool | None:
    """SQL scalar comparison with three-valued logic (None = UNKNOWN).

    String operands use padded semantics: trailing blanks are ignored —
    unlike XQuery (Section 3.3).
    """
    if left is None or right is None:
        return None
    if isinstance(left, XMLValue) or isinstance(right, XMLValue):
        raise SQLError("XML values cannot be compared with SQL "
                       "operators; use XMLEXISTS or XMLCAST", "42818")
    if isinstance(left, str) and isinstance(right, str):
        left = left.rstrip(" ")
        right = right.rstrip(" ")
    elif isinstance(left, str) != isinstance(right, str):
        raise SQLError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}", "42818")
    if isinstance(left, bool) != isinstance(right, bool):
        raise SQLError("cannot compare BOOLEAN with non-BOOLEAN", "42818")
    if op == "=":
        return left == right
    if op in ("<>", "!="):
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SQLError(f"unknown comparison operator {op!r}", "42601")


def normalize_key(value):
    """Normalize an SQL scalar into a B+Tree key (padded strings)."""
    if isinstance(value, str):
        return value.rstrip(" ")
    if isinstance(value, bool):
        return int(value)
    return value
