"""SQL/XML abstract syntax tree (SELECT/VALUES subset)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .values import SQLType


class SQLExpr:
    __slots__ = ()


@dataclass
class SQLLiteral(SQLExpr):
    value: object  # int | Decimal | float | str | None


@dataclass
class ColumnRef(SQLExpr):
    qualifier: Optional[str]   # table name or alias (lower-case) or None
    name: str                  # column name (lower-case)

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class PassingArg:
    expr: SQLExpr
    variable: str              # XQuery variable name (case-sensitive)


@dataclass
class XMLQueryExpr(SQLExpr):
    xquery: str
    passing: list[PassingArg] = field(default_factory=list)


@dataclass
class XMLExistsExpr(SQLExpr):
    xquery: str
    passing: list[PassingArg] = field(default_factory=list)


@dataclass
class XMLCastExpr(SQLExpr):
    operand: SQLExpr
    target: SQLType


@dataclass
class XMLElementExpr(SQLExpr):
    name: str
    attributes: list[tuple[str, SQLExpr]] = field(default_factory=list)
    content: list[SQLExpr] = field(default_factory=list)


@dataclass
class XMLForestExpr(SQLExpr):
    items: list[tuple[str, SQLExpr]] = field(default_factory=list)


@dataclass
class XMLConcatExpr(SQLExpr):
    items: list[SQLExpr] = field(default_factory=list)


@dataclass
class AggregateExpr(SQLExpr):
    """COUNT/SUM/AVG/MIN/MAX; ``argument=None`` means COUNT(*)."""

    function: str                    # COUNT | SUM | AVG | MIN | MAX
    argument: Optional[SQLExpr]
    distinct: bool = False


@dataclass
class Comparison(SQLExpr):
    op: str                    # = <> < <= > >=
    left: SQLExpr
    right: SQLExpr


@dataclass
class AndCond(SQLExpr):
    left: SQLExpr
    right: SQLExpr


@dataclass
class OrCond(SQLExpr):
    left: SQLExpr
    right: SQLExpr


@dataclass
class NotCond(SQLExpr):
    operand: SQLExpr


@dataclass
class IsNullCond(SQLExpr):
    operand: SQLExpr
    negated: bool = False


@dataclass
class TableRef:
    name: str                  # lower-case table name
    alias: str                 # lower-case alias (defaults to name)


@dataclass
class XMLTableColumn:
    name: str                  # result column name (lower-case)
    sql_type: Optional[SQLType]    # None for FOR ORDINALITY
    path: Optional[str]        # column XQuery (default: column name)
    by_ref: bool = False
    for_ordinality: bool = False


@dataclass
class XMLTableRef:
    row_xquery: str
    passing: list[PassingArg]
    columns: list[XMLTableColumn]
    alias: str
    column_aliases: list[str] = field(default_factory=list)


FromRef = Union[TableRef, XMLTableRef]


@dataclass
class SelectItem:
    expr: SQLExpr
    alias: Optional[str] = None


@dataclass
class SelectStmt:
    items: list[SelectItem]
    from_refs: list[FromRef]
    where: Optional[SQLExpr] = None
    group_by: list[SQLExpr] = field(default_factory=list)
    having: Optional[SQLExpr] = None
    order_by: list[tuple[SQLExpr, bool]] = field(default_factory=list)
    # (expr, descending)


@dataclass
class ValuesStmt:
    exprs: list[SQLExpr]


@dataclass
class InsertStmt:
    table: str
    columns: list[str]                     # empty = table order
    rows: list[list[SQLExpr]]


@dataclass
class DeleteStmt:
    table: str
    alias: str
    where: Optional[SQLExpr] = None
