"""Abstract interpretation of XQuery: static types, bounds, constants.

The interpreter walks an XQuery AST once, assigning every
subexpression a :class:`repro.static.types.SeqType`.  Three knowledge
sources sharpen the verdicts beyond pure syntax:

* **the function registry and prolog** — unknown functions and
  variables become ``SE002``/``SE003`` static errors, mirroring the
  evaluator's runtime ``XPST0017``/``XPST0008``;
* **registered schemas** (:mod:`repro.schema`) — a path whose tail
  matches a type declaration atomizes to that ``xs:*`` type instead of
  ``xdt:untypedAtomic``, so schema-typed comparisons get concrete
  §3.1 categories;
* **per-document path summaries** (:mod:`repro.storage.pathsummary`)
  — a path rooted at ``db2-fn:xmlcolumn`` gets *exact* node-count
  bounds from the data, and a path matching no document at all is
  statically empty (``SE005``), which the planner turns into a pruned
  branch.

The interpreter also folds constants (literals, casts of literals,
``let``-bound constants), which is how a let-hoisted cast such as
``let $limit := xs:double("100") … where $price > $limit`` becomes an
index-eligible predicate with a static probe bound —
:func:`refine_candidates` writes the inferred comparison type and
constant back onto the extracted
:class:`~repro.core.predicates.PredicateCandidate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.patterns import LinearPattern, PathPattern, PatternStep
from ..core.predicates import (FILTERING_CONTEXTS, _axis_step_to_pattern,
                               _node_test_to_step_test)
from ..errors import ReproError
from ..xdm import atomic
from ..xdm.qname import DB2FN_NS, FN_NS, XDT_NS, XS_NS
from ..xquery import ast
from ..xquery.functions import lookup_function
from .diagnostics import Code, DiagnosticSink
from .types import (ANY, EMPTY, ItemType, SeqType, atomized, concat_type,
                    index_type_for, item, iterate, one, opt, star,
                    statically_incomparable, union_type)

__all__ = ["Inference", "StaticFacts", "infer_module", "refine_candidates",
           "static_prefilter_facts"]


# ---------------------------------------------------------------------------
# Path shapes: provenance for schema and summary lookups
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Shape:
    """Where a value comes from: an XML column plus pattern steps.

    ``per_item`` distinguishes a value scoped to *one* document (a
    ``for``-bound variable) from the whole column: bounds for the
    former use the per-document maximum, for the latter the
    cross-document total.
    """

    column: str
    steps: tuple = ()
    per_item: bool = False

    def extend(self, steps: tuple) -> "Shape":
        return Shape(self.column, self.steps + steps, self.per_item)

    def pattern(self) -> PathPattern:
        return PathPattern((LinearPattern(self.steps),))


@dataclass
class Binding:
    """What the environment knows about one variable (or ``.``)."""

    type: SeqType
    shape: Optional[Shape] = None
    const: Optional[atomic.AtomicValue] = None


@dataclass
class PathStats:
    """Summary-backed facts about one (column, steps) pattern."""

    docs_total: int
    docs_with_path: int
    total_nodes: int
    max_per_doc: int

    @property
    def statically_empty(self) -> bool:
        return self.docs_total > 0 and self.docs_with_path == 0


# ---------------------------------------------------------------------------
# Inference result
# ---------------------------------------------------------------------------


class Inference:
    """Per-expression verdicts of one abstract-interpretation run."""

    def __init__(self, sink: DiagnosticSink):
        self.sink = sink
        self.body_type: SeqType = ANY
        self._types: dict[int, SeqType] = {}
        self._consts: dict[int, atomic.AtomicValue] = {}
        self._shapes: dict[int, Shape] = {}
        #: Keep every typed expression alive so id() keys stay unique.
        self._keep: list = []

    @property
    def diagnostics(self) -> list:
        return self.sink.findings

    def record(self, expr, seq_type: SeqType,
               shape: Shape | None = None,
               const: atomic.AtomicValue | None = None) -> SeqType:
        self._keep.append(expr)
        self._types[id(expr)] = seq_type
        if shape is not None:
            self._shapes[id(expr)] = shape
        if const is not None:
            self._consts[id(expr)] = const
        return seq_type

    def type_of(self, expr) -> SeqType | None:
        return self._types.get(id(expr))

    def const_of(self, expr) -> atomic.AtomicValue | None:
        return self._consts.get(id(expr))

    def shape_of(self, expr) -> Shape | None:
        return self._shapes.get(id(expr))


# ---------------------------------------------------------------------------
# Known function return types
# ---------------------------------------------------------------------------

_BOOLEAN_FNS = frozenset({
    "true", "false", "boolean", "not", "exists", "empty", "contains",
    "starts-with", "ends-with", "matches", "between"})
_INTEGER_FNS = frozenset({"count", "string-length", "position", "last",
                          "index-of"})
_STRING_FNS = frozenset({
    "string", "normalize-space", "upper-case", "lower-case", "translate",
    "concat", "string-join", "substring", "substring-before",
    "substring-after", "replace", "name", "local-name", "namespace-uri"})
_DOUBLE_FNS = frozenset({"number"})

#: xs:/xdt: constructor locals the engine's cast table understands.
_XS_CONSTRUCTORS = {
    "double": atomic.T_DOUBLE, "float": atomic.T_DOUBLE,
    "decimal": atomic.T_DECIMAL, "integer": atomic.T_INTEGER,
    "int": atomic.T_INTEGER, "long": atomic.T_LONG,
    "string": atomic.T_STRING, "boolean": atomic.T_BOOLEAN,
    "date": atomic.T_DATE, "dateTime": atomic.T_DATETIME,
    "untypedAtomic": atomic.T_UNTYPED,
    "anyAtomicType": atomic.T_ANY_ATOMIC,
}


# ---------------------------------------------------------------------------
# The walker
# ---------------------------------------------------------------------------


class _Inferencer:
    def __init__(self, prolog: ast.Prolog, database=None,
                 sink: DiagnosticSink | None = None):
        self.prolog = prolog
        self.database = database
        self.inference = Inference(sink or DiagnosticSink())
        self._stats_cache: dict[tuple, PathStats | None] = {}
        self._user_fn_types: dict[tuple, SeqType] = {}
        self._user_fn_in_progress: set[tuple] = set()

    # -- entry ----------------------------------------------------------

    def run(self, body: ast.Expr,
            env: dict[str, Binding]) -> Inference:
        self.inference.body_type = self.infer(body, env)
        return self.inference

    # -- dispatch -------------------------------------------------------

    def infer(self, expr, env: dict[str, Binding]) -> SeqType:
        method = getattr(self, f"_infer_{type(expr).__name__}", None)
        if method is not None:
            return method(expr, env)
        # Unhandled node: type every child, answer ⊤.
        for child in _children(expr):
            self.infer(child, env)
        return self.inference.record(expr, ANY)

    # -- leaves ---------------------------------------------------------

    def _infer_Literal(self, expr: ast.Literal, env) -> SeqType:
        return self.inference.record(
            expr, one(item(expr.value.type_name)), const=expr.value)

    def _infer_VarRef(self, expr: ast.VarRef, env) -> SeqType:
        binding = env.get(expr.name)
        if binding is None:
            self.inference.sink.emit(
                Code.UNKNOWN_VARIABLE,
                f"variable ${expr.name} is not in scope",
                subject=f"${expr.name}")
            return self.inference.record(expr, ANY)
        return self.inference.record(expr, binding.type,
                                     shape=binding.shape,
                                     const=binding.const)

    def _infer_ContextItem(self, expr: ast.ContextItem, env) -> SeqType:
        binding = env.get(".")
        if binding is None:
            return self.inference.record(expr, ANY)
        return self.inference.record(expr, binding.type,
                                     shape=binding.shape,
                                     const=binding.const)

    # -- structure ------------------------------------------------------

    def _infer_SequenceExpr(self, expr: ast.SequenceExpr, env) -> SeqType:
        result = EMPTY
        for entry in expr.items:
            result = concat_type(result, self.infer(entry, env))
        return self.inference.record(expr, result)

    def _infer_RangeExpr(self, expr: ast.RangeExpr, env) -> SeqType:
        self.infer(expr.start, env)
        self.infer(expr.end, env)
        return self.inference.record(
            expr, star({item(atomic.T_INTEGER)}))

    def _infer_IfExpr(self, expr: ast.IfExpr, env) -> SeqType:
        self.infer(expr.condition, env)
        then_type = self.infer(expr.then_branch, env)
        else_type = self.infer(expr.else_branch, env)
        return self.inference.record(expr,
                                     union_type(then_type, else_type))

    def _infer_OrExpr(self, expr, env) -> SeqType:
        self.infer(expr.left, env)
        self.infer(expr.right, env)
        return self.inference.record(expr, one(item(atomic.T_BOOLEAN)))

    _infer_AndExpr = _infer_OrExpr

    # -- comparisons ----------------------------------------------------

    def _infer_GeneralComparison(self, expr, env) -> SeqType:
        left = self.infer(expr.left, env)
        right = self.infer(expr.right, env)
        self._check_comparable(expr, left, right)
        return self.inference.record(expr, one(item(atomic.T_BOOLEAN)))

    def _infer_ValueComparison(self, expr, env) -> SeqType:
        left = self.infer(expr.left, env)
        right = self.infer(expr.right, env)
        self._check_comparable(expr, left, right)
        boolean = item(atomic.T_BOOLEAN)
        if left.possibly_empty or right.possibly_empty:
            return self.inference.record(expr, opt(boolean))
        return self.inference.record(expr, one(boolean))

    def _infer_NodeComparison(self, expr, env) -> SeqType:
        self.infer(expr.left, env)
        self.infer(expr.right, env)
        return self.inference.record(expr, opt(item(atomic.T_BOOLEAN)))

    def _check_comparable(self, expr, left: SeqType,
                          right: SeqType) -> None:
        left_type = self._schema_refined(expr.left, left)
        right_type = self._schema_refined(expr.right, right)
        if statically_incomparable(left_type, right_type):
            self.inference.sink.emit(
                Code.INCOMPARABLE_TYPES,
                f"'{expr.op}' compares {left_type} with {right_type}; "
                f"the categories can never match (§3.1)",
                subject=_render(expr))

    def _schema_refined(self, expr, seq: SeqType) -> SeqType:
        """Sharpen a node type's atomization using schema declarations."""
        shape = self.inference.shape_of(expr)
        if shape is None or not any(entry.is_node for entry in seq.items):
            return seq
        declared = self._schema_type_for(shape)
        if declared is None:
            return seq
        type_name, is_list = declared
        high = None if is_list else seq.high
        return SeqType(frozenset({item(type_name)}), seq.low, high)

    # -- arithmetic -----------------------------------------------------

    def _infer_Arithmetic(self, expr: ast.Arithmetic, env) -> SeqType:
        left = atomized(self.infer(expr.left, env))
        right = atomized(self.infer(expr.right, env))
        kinds = {entry.kind for entry in left.items | right.items}
        integral = kinds <= {atomic.T_INTEGER, atomic.T_LONG}
        result = item(atomic.T_INTEGER if integral and
                      expr.op not in ("div",) else atomic.T_DOUBLE)
        if left.possibly_empty or right.possibly_empty:
            return self.inference.record(expr, opt(result))
        return self.inference.record(expr, one(result))

    def _infer_UnaryMinus(self, expr: ast.UnaryMinus, env) -> SeqType:
        operand = atomized(self.infer(expr.operand, env))
        kinds = {entry.kind for entry in operand.items}
        result = item(atomic.T_INTEGER
                      if kinds <= {atomic.T_INTEGER, atomic.T_LONG}
                      else atomic.T_DOUBLE)
        const = None
        inner = self.inference.const_of(expr.operand)
        if inner is not None and inner.is_numeric and expr.negate:
            try:
                const = atomic.AtomicValue(inner.type_name, -inner.value)
            except Exception:  # lint: broad-except-ok (constant folding)
                const = None
        elif inner is not None and inner.is_numeric:
            const = inner
        bounds = ((1, 1) if not operand.possibly_empty else (0, 1))
        return self.inference.record(
            expr, SeqType(frozenset({result}), *bounds), const=const)

    def _infer_SetExpr(self, expr: ast.SetExpr, env) -> SeqType:
        left = self.infer(expr.left, env)
        right = self.infer(expr.right, env)
        if expr.op == "union":
            merged = concat_type(left, right)
            return self.inference.record(expr, merged.at_least_empty())
        return self.inference.record(expr, left.at_least_empty())

    # -- types ----------------------------------------------------------

    def _infer_CastExpr(self, expr: ast.CastExpr, env) -> SeqType:
        operand = self.infer(expr.operand, env)
        const = None
        inner = self.inference.const_of(expr.operand)
        if inner is not None:
            try:
                const = atomic.cast(inner, expr.type_name)
            except ReproError:
                const = None
        low = 0 if (expr.allow_empty and operand.possibly_empty) else 1
        return self.inference.record(
            expr, SeqType(frozenset({item(expr.type_name)}), low, 1),
            const=const)

    def _infer_CastableExpr(self, expr: ast.CastableExpr, env) -> SeqType:
        self.infer(expr.operand, env)
        return self.inference.record(expr, one(item(atomic.T_BOOLEAN)))

    def _infer_InstanceOfExpr(self, expr, env) -> SeqType:
        self.infer(expr.operand, env)
        return self.inference.record(expr, one(item(atomic.T_BOOLEAN)))

    def _infer_TreatExpr(self, expr: ast.TreatExpr, env) -> SeqType:
        operand = self.infer(expr.operand, env)
        declared = _sequence_type(expr.sequence_type)
        return self.inference.record(
            expr, declared,
            shape=self.inference.shape_of(expr.operand) if operand else None)

    def _infer_TypeswitchExpr(self, expr: ast.TypeswitchExpr,
                              env) -> SeqType:
        operand = self.infer(expr.operand, env)
        result: SeqType | None = None
        for case in expr.cases:
            case_env = dict(env)
            if case.variable is not None:
                case_env[case.variable] = Binding(
                    _sequence_type(case.sequence_type))
            branch = self.infer(case.body, case_env)
            result = branch if result is None else union_type(result,
                                                              branch)
        default_env = dict(env)
        if expr.default_variable is not None:
            default_env[expr.default_variable] = Binding(operand)
        branch = self.infer(expr.default_body, default_env)
        result = branch if result is None else union_type(result, branch)
        return self.inference.record(expr, result)

    # -- FLWOR ----------------------------------------------------------

    def _infer_FLWORExpr(self, expr: ast.FLWORExpr, env) -> SeqType:
        env = dict(env)
        low_factor, high_factor = 1, 1
        for clause in expr.clauses:
            if isinstance(clause, ast.ForClause):
                binding = self.infer(clause.expr, env)
                env[clause.var] = Binding(
                    iterate(binding),
                    shape=self._per_item_shape(clause.expr))
                if clause.position_var:
                    env[clause.position_var] = Binding(
                        one(item(atomic.T_INTEGER)))
                low_factor *= binding.low
                high_factor = (None if high_factor is None or
                               binding.high is None
                               else high_factor * binding.high)
            elif isinstance(clause, ast.LetClause):
                binding = self.infer(clause.expr, env)
                env[clause.var] = Binding(
                    binding,
                    shape=self.inference.shape_of(clause.expr),
                    const=self.inference.const_of(clause.expr))
            elif isinstance(clause, ast.WhereClause):
                self.infer(clause.expr, env)
                low_factor = 0
            elif isinstance(clause, ast.OrderByClause):
                for spec in clause.specs:
                    self.infer(spec.expr, env)
        result = self.infer(expr.return_expr, env)
        high = (None if result.high is None or high_factor is None
                else result.high * high_factor)
        return self.inference.record(
            expr, SeqType(result.items, result.low * low_factor, high))

    def _per_item_shape(self, expr) -> Shape | None:
        shape = self.inference.shape_of(expr)
        if shape is None:
            return None
        return Shape(shape.column, shape.steps, per_item=True)

    def _infer_QuantifiedExpr(self, expr: ast.QuantifiedExpr,
                              env) -> SeqType:
        env = dict(env)
        for var, binding_expr in expr.bindings:
            binding = self.infer(binding_expr, env)
            env[var] = Binding(iterate(binding),
                               shape=self._per_item_shape(binding_expr))
        self.infer(expr.satisfies, env)
        return self.inference.record(expr, one(item(atomic.T_BOOLEAN)))

    # -- constructors ---------------------------------------------------

    def _infer_DirectElementConstructor(self, expr, env) -> SeqType:
        for _name, template in expr.attributes:
            for part in template.parts:
                if not isinstance(part, str):
                    self.infer(part, env)
        for piece in expr.content:
            if not isinstance(piece, str):
                self.infer(piece, env)
        local = expr.name.split(":")[-1]
        return self.inference.record(
            expr, one(item("element", None, local)))

    def _infer_ComputedElementConstructor(self, expr, env) -> SeqType:
        if not isinstance(expr.name, str):
            self.infer(expr.name, env)
        if expr.content is not None:
            self.infer(expr.content, env)
        local = (expr.name.split(":")[-1]
                 if isinstance(expr.name, str) else None)
        return self.inference.record(
            expr, one(item("element", None, local)))

    def _infer_ComputedAttributeConstructor(self, expr, env) -> SeqType:
        if not isinstance(expr.name, str):
            self.infer(expr.name, env)
        if expr.content is not None:
            self.infer(expr.content, env)
        local = (expr.name.split(":")[-1]
                 if isinstance(expr.name, str) else None)
        return self.inference.record(
            expr, one(item("attribute", None, local)))

    def _infer_ComputedTextConstructor(self, expr, env) -> SeqType:
        self.infer(expr.content, env)
        return self.inference.record(expr, opt(item("text")))

    def _infer_ComputedDocumentConstructor(self, expr, env) -> SeqType:
        self.infer(expr.content, env)
        return self.inference.record(expr, one(item("document-node")))

    # -- paths ----------------------------------------------------------

    def _infer_FilterExpr(self, expr: ast.FilterExpr, env) -> SeqType:
        primary = self.infer(expr.primary, env)
        shape = self.inference.shape_of(expr.primary)
        inner_env = dict(env)
        inner_env["."] = Binding(iterate(primary), shape=shape)
        positional = False
        for predicate in expr.predicates:
            predicate_type = self.infer(predicate, inner_env)
            positional = positional or _is_numeric_type(predicate_type)
        high = 1 if positional else primary.high
        return self.inference.record(
            expr, SeqType(primary.items, 0, high), shape=shape)

    def _infer_PathExpr(self, expr: ast.PathExpr, env) -> SeqType:
        steps = list(expr.steps)
        base_binding = env.get(".")
        if expr.absolute:
            base_type = (base_binding.type if base_binding is not None
                         else one(item("document-node")))
            shape = base_binding.shape if base_binding is not None else None
            if shape is not None and shape.steps:
                shape = None  # '/' only analyzable at a document root
            pending_gap = expr.absolute == "//"
        elif steps and isinstance(steps[0], ast.ExprStep):
            first = steps.pop(0)
            base_type = self.infer(first.expr, env)
            shape = self.inference.shape_of(first.expr)
            self._infer_step_predicates(first, shape, base_type, env)
            pending_gap = False
        else:
            base_type = (base_binding.type if base_binding is not None
                         else ANY)
            shape = base_binding.shape if base_binding is not None else None
            pending_gap = False

        current = base_type
        cast_to: str | None = None
        for step in steps:
            cast_to = None
            if isinstance(step, ast.ExprStep):
                cast_to = _cast_step_target(step.expr)
                if cast_to is None:
                    # Opaque computed step: keep the final item type
                    # unknown but still walk nested expressions.
                    self.infer(step.expr, env)
                    shape = None
                    current = ANY
                else:
                    self._infer_step_predicates(step, shape, current, env)
                continue
            step_items = _step_item_types(step)
            if shape is not None:
                converted = _axis_step_to_pattern(step, pending_gap)
                if converted is None:
                    shape = None
                else:
                    delta, pending_gap = converted
                    shape = shape.extend(tuple(delta))
            current = SeqType(step_items, 0,
                              1 if step.axis == "attribute"
                              and current.high == 1 else None)
            self._infer_step_predicates(step, shape, current, env)

        result = current
        if cast_to is not None:
            result = SeqType(frozenset({item(cast_to)}), 0, result.high)
        result = self._bound_by_summary(expr, result, shape)
        return self.inference.record(expr, result, shape=shape)

    def _infer_step_predicates(self, step, shape: Shape | None,
                               current: SeqType, env) -> None:
        predicates = getattr(step, "predicates", [])
        if not predicates:
            return
        inner_env = dict(env)
        inner_env["."] = Binding(iterate(current), shape=shape)
        for predicate in predicates:
            self.infer(predicate, inner_env)

    def _bound_by_summary(self, expr, result: SeqType,
                          shape: Shape | None) -> SeqType:
        """Clamp a path's bounds with path-summary facts; flag SE005."""
        if shape is None or not shape.steps or self.database is None:
            return result
        stats = self._path_stats(shape)
        if stats is None:
            return result
        if stats.statically_empty:
            self.inference.sink.emit(
                Code.EMPTY_PATH,
                f"path matches no node in any of the {stats.docs_total} "
                f"document(s) of {shape.column}",
                subject=str(shape.pattern()), column=shape.column)
            return EMPTY
        cap = stats.max_per_doc if shape.per_item else stats.total_nodes
        high = cap if result.high is None else min(result.high, cap)
        return SeqType(result.items, min(result.low, high), high)

    def _path_stats(self, shape: Shape) -> PathStats | None:
        key = (shape.column, shape.steps)
        if key in self._stats_cache:
            return self._stats_cache[key]
        stats: PathStats | None = None
        try:
            from ..storage.pathsummary import PatternMatcher, get_summary
            table, _sep, column = shape.column.partition(".")
            stored_docs = self.database.documents(table, column)
            matcher = PatternMatcher(shape.pattern())
            docs_with = total = per_doc_max = 0
            for stored in stored_docs:
                summary = get_summary(stored.document, build=True)
                if summary is None:
                    stats = None
                    break
                count = summary.count_matching(matcher)
                if count:
                    docs_with += 1
                    total += count
                    per_doc_max = max(per_doc_max, count)
            else:
                stats = PathStats(len(stored_docs), docs_with, total,
                                  per_doc_max)
        except ReproError:
            stats = None  # unknown table/column: no data to consult
        self._stats_cache[key] = stats
        return stats

    def _schema_type_for(self, shape: Shape) -> tuple[str, bool] | None:
        """The declared type of a path's tail, when every registered
        schema that matches agrees (per-document association means any
        of them may govern a given document)."""
        if self.database is None or not shape.steps:
            return None
        schemas = getattr(self.database, "schemas", {})
        if not schemas:
            return None
        locals_tail = _locals_tail(shape.steps)
        if not locals_tail:
            return None
        found: tuple[str, bool] | None = None
        for schema in schemas.values():
            declaration = schema.lookup(locals_tail)
            if declaration is None:
                continue
            entry = (declaration.type_name, declaration.is_list)
            if found is not None and found != entry:
                return None  # conflicting schema versions: stay untyped
            found = entry
        return found

    # -- function calls -------------------------------------------------

    def _infer_FunctionCall(self, expr: ast.FunctionCall, env) -> SeqType:
        arg_types = [self.infer(argument, env) for argument in expr.args]
        uri, local = expr.name.uri, expr.name.local
        user_function = self.prolog.functions.get(
            (uri, local, len(expr.args)))
        if user_function is not None:
            return self.inference.record(
                expr, self._user_function_type(user_function))
        definition = lookup_function(uri, local)
        if definition is None:
            self.inference.sink.emit(
                Code.UNKNOWN_FUNCTION,
                f"unknown function {expr.name} "
                f"(#{len(expr.args)} args)", subject=str(expr.name))
            return self.inference.record(expr, ANY)
        if not definition.min_args <= len(expr.args) <= \
                definition.max_args:
            self.inference.sink.emit(
                Code.UNKNOWN_FUNCTION,
                f"wrong number of arguments for {expr.name}: got "
                f"{len(expr.args)}, expected "
                f"{definition.min_args}..{definition.max_args}",
                subject=str(expr.name))
            return self.inference.record(expr, ANY)
        return self._builtin_type(expr, uri, local, arg_types, env)

    def _builtin_type(self, expr, uri: str, local: str,
                      arg_types: list[SeqType], env) -> SeqType:
        record = self.inference.record
        if uri in (XS_NS, XDT_NS):
            target = _XS_CONSTRUCTORS.get(local)
            if target is None:
                return record(expr, ANY)
            const = None
            if expr.args:
                inner = self.inference.const_of(expr.args[0])
                if inner is not None:
                    try:
                        const = atomic.cast(inner, target)
                    except ReproError:
                        const = None
            low = (0 if not arg_types or arg_types[0].possibly_empty
                   else 1)
            return record(expr,
                          SeqType(frozenset({item(target)}), low, 1),
                          const=const)
        if uri == DB2FN_NS and local == "xmlcolumn":
            return record(expr, *self._xmlcolumn_type(expr))
        if uri == DB2FN_NS and local == "sqlquery":
            return record(expr, ANY)
        if local in _BOOLEAN_FNS:
            return record(expr, one(item(atomic.T_BOOLEAN)))
        if local in _INTEGER_FNS:
            return record(expr, one(item(atomic.T_INTEGER)))
        if local in _STRING_FNS:
            return record(expr, one(item(atomic.T_STRING)))
        if local in _DOUBLE_FNS:
            return record(expr, one(item(atomic.T_DOUBLE)))
        if local == "data" and arg_types:
            refined = self._schema_refined(expr.args[0], arg_types[0])
            return record(expr, atomized(refined),
                          shape=self.inference.shape_of(expr.args[0]))
        if local == "distinct-values" and arg_types:
            source = atomized(arg_types[0])
            return record(expr, source.at_least_empty())
        if local in ("reverse", "subsequence") and arg_types:
            return record(expr, arg_types[0].at_least_empty())
        if local == "zero-or-one" and arg_types:
            source = arg_types[0]
            high = 1 if source.high is None else min(source.high, 1)
            return record(expr, SeqType(source.items, min(source.low, 1),
                                        high),
                          shape=self.inference.shape_of(expr.args[0]))
        if local == "exactly-one" and arg_types:
            return record(expr, SeqType(arg_types[0].items, 1, 1),
                          shape=self.inference.shape_of(expr.args[0]))
        if local == "one-or-more" and arg_types:
            source = arg_types[0]
            return record(expr, SeqType(source.items,
                                        max(1, source.low), source.high),
                          shape=self.inference.shape_of(expr.args[0]))
        if local in ("sum",):
            return record(expr, one(item(atomic.T_DOUBLE)))
        if local in ("avg", "min", "max", "abs", "floor", "ceiling",
                     "round") and arg_types:
            source = atomized(arg_types[0])
            return record(expr, SeqType(
                source.items or frozenset({item(atomic.T_DOUBLE)}),
                0, 1))
        if local == "tokenize":
            return record(expr, star({item(atomic.T_STRING)}))
        return record(expr, ANY)

    def _xmlcolumn_type(self, expr) -> tuple:
        """(type, shape) of a db2-fn:xmlcolumn('T.C') call."""
        document = item("document-node")
        argument = expr.args[0] if expr.args else None
        if not isinstance(argument, ast.Literal):
            return star({document}), None
        column = argument.value.string_value().lower()
        shape = Shape(column)
        if self.database is not None:
            table, _sep, column_name = column.partition(".")
            try:
                count = len(self.database.documents(table, column_name))
            except ReproError:
                return star({document}), shape
            return SeqType(frozenset({document}), count, count), shape
        return star({document}), shape

    def _user_function_type(self, function: ast.UserFunction) -> SeqType:
        if function.return_type is not None:
            return _sequence_type(function.return_type)
        key = (function.name.uri, function.name.local, function.arity)
        cached = self._user_fn_types.get(key)
        if cached is not None:
            return cached
        if key in self._user_fn_in_progress:
            return ANY  # recursive without a declared type: ⊤
        self._user_fn_in_progress.add(key)
        try:
            env = {name: Binding(_sequence_type(param_type)
                                 if param_type is not None else ANY)
                   for name, param_type in function.params}
            result = self.infer(function.body, env)
        finally:
            self._user_fn_in_progress.discard(key)
        self._user_fn_types[key] = result
        return result


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _children(expr) -> list:
    children = []
    for name in getattr(expr, "__dataclass_fields__", {}):
        value = getattr(expr, name)
        if isinstance(value, ast.Expr):
            children.append(value)
        elif isinstance(value, list):
            children.extend(entry for entry in value
                            if isinstance(entry, ast.Expr))
    return children


def _render(expr) -> str:
    """A short, human-readable rendering of a comparison expression."""
    def side(value) -> str:
        if isinstance(value, ast.Literal):
            return repr(value.value.string_value())
        if isinstance(value, ast.VarRef):
            return f"${value.name}"
        if isinstance(value, ast.PathExpr):
            return "…/" + "/".join(
                str(step) for step in value.steps[-2:])
        if isinstance(value, ast.FunctionCall):
            return f"{value.name}(…)"
        if isinstance(value, ast.CastExpr):
            return f"(… cast as {value.type_name})"
        return type(value).__name__
    return f"{side(expr.left)} {expr.op} {side(expr.right)}"


def _step_item_types(step: ast.AxisStep) -> frozenset:
    test = step.test
    if isinstance(test, ast.KindTest):
        kind = {"document": "document-node"}.get(test.kind, test.kind)
        return frozenset({item(kind)})
    kind = "attribute" if step.axis == "attribute" else "element"
    return frozenset({item(kind, test.uri, test.local)})


def _cast_step_target(expr) -> str | None:
    """``xs:double(.)`` / ``data()`` as a path step -> target type."""
    if not isinstance(expr, ast.FunctionCall):
        return None
    args_ok = (len(expr.args) == 0 or
               (len(expr.args) == 1 and
                isinstance(expr.args[0], ast.ContextItem)))
    if not args_ok:
        return None
    if expr.name.local == "data":
        return atomic.T_UNTYPED
    if expr.name.uri in (XS_NS, XDT_NS):
        return _XS_CONSTRUCTORS.get(expr.name.local)
    return None


_KIND_ITEMS = {
    "document-node": item("document-node"),
    "element": item("element"),
    "attribute": item("attribute"),
    "text": item("text"),
    "node": item("node"),
    "item": ItemType("item"),
    "empty-sequence": None,
}

_OCCURRENCE_BOUNDS = {"": (1, 1), "?": (0, 1), "*": (0, None),
                      "+": (1, None)}


def _sequence_type(declared: ast.SequenceType) -> SeqType:
    entry = _KIND_ITEMS.get(declared.item_type,
                            item(declared.item_type))
    if entry is None:
        return EMPTY
    low, high = _OCCURRENCE_BOUNDS.get(declared.occurrence, (0, None))
    return SeqType(frozenset({entry}), low, high)


def _is_numeric_type(seq: SeqType) -> bool:
    kinds = {entry.kind for entry in seq.items}
    return bool(kinds) and kinds <= {atomic.T_INTEGER, atomic.T_LONG,
                                     atomic.T_DOUBLE, atomic.T_DECIMAL}


def _locals_tail(steps: tuple) -> tuple[str, ...]:
    """The longest gap-free suffix of a pattern as schema path locals.

    A descendant gap *before* the suffix is fine (schema declarations
    match path suffixes), but a gap inside it would make the lexical
    tail unsound, so the tail stops there.
    """
    tail: list[str] = []
    for index, step in enumerate(reversed(steps)):
        test = step.test
        if test.local is None:
            break
        name = f"@{test.local}" if test.kind == "attribute" else test.local
        if test.kind == "text":
            break
        tail.append(name)
        if step.gap:  # gap before this step: suffix must stop here
            break
    return tuple(reversed(tail))


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def infer_module(module: ast.Module, database=None,
                 variables: dict[str, SeqType] | None = None,
                 report_unknown_vars: bool = True) -> Inference:
    """Abstractly interpret a parsed module.

    ``database`` (a :class:`~repro.storage.catalog.Database` /
    snapshot) enables data-aware verdicts: schema-typed atomization,
    summary-backed cardinality bounds, and statically-empty paths.
    ``variables`` pre-binds free variables (SQL PASSING arguments).
    ``report_unknown_vars=False`` suppresses ``SE003`` — used when a
    fragment is analyzed outside its binding context.
    """
    sink = DiagnosticSink()
    walker = _Inferencer(module.prolog, database=database, sink=sink)
    env = {name: Binding(seq_type)
           for name, seq_type in (variables or {}).items()}
    if not report_unknown_vars:
        walker._infer_VarRef = _lenient_varref(walker)  # type: ignore
    return walker.run(module.body, env)


def _lenient_varref(walker: _Inferencer):
    def infer_varref(expr, env):
        binding = env.get(expr.name)
        if binding is None:
            return walker.inference.record(expr, ANY)
        return walker.inference.record(expr, binding.type,
                                       shape=binding.shape,
                                       const=binding.const)
    return infer_varref


def refine_candidates(module: ast.Module, candidates) -> None:
    """Upgrade extracted predicate candidates with inferred facts.

    Where syntax-directed extraction left the comparison type (or the
    probe bound) unknown, inference may still prove it — a let-hoisted
    cast or constant, an arithmetic expression over literals, a
    schema-typed path.  Only *concrete* types are written back: an
    untyped operand stays unknown, preserving the Tip-1 verdict that
    an uncast join serves no index.
    """
    pending = [candidate for candidate in candidates
               if candidate.operand_expr is not None
               and (candidate.operand_type is None
                    or candidate.operand_value is None)]
    if not pending:
        return
    inference = infer_module(module, report_unknown_vars=False)
    for candidate in pending:
        inferred = inference.type_of(candidate.operand_expr)
        if inferred is None:
            continue
        if candidate.operand_type is None:
            refined = index_type_for(inferred)
            if refined is not None:
                candidate.operand_type = refined
        if candidate.operand_value is None:
            const = inference.const_of(candidate.operand_expr)
            if const is not None:
                candidate.operand_value = const


@dataclass
class StaticFacts:
    """What the static pass proved about a query against one database."""

    #: column -> the statically-empty path pattern (as text) that
    #: eliminates every binding on that column.
    empty_columns: dict = field(default_factory=dict)
    #: (column, path text) -> docs_with_path (cardinality seeds).
    docs_with_path: dict = field(default_factory=dict)
    #: How many distinct (column, path) facts were checked.
    checked: int = 0


def static_prefilter_facts(database, candidates) -> StaticFacts:
    """Summary-backed emptiness facts for the planner.

    For every candidate whose context lets an empty result eliminate a
    binding (the same :data:`FILTERING_CONTEXTS` contract index
    prefilters rely on), count the documents containing its path.  A
    path present in *no* document proves the conjunct can never hold:
    the planner replaces the whole column scan with the empty set —
    no probes, no document evaluation.

    Negated candidates never qualify; a disjunction qualifies only
    when every branch on the same column is statically empty.
    """
    facts = StaticFacts()
    by_disjunction: dict[int, list] = {}
    seen: dict[tuple, int] = {}
    for candidate in candidates:
        if candidate.context not in FILTERING_CONTEXTS or \
                candidate.negated:
            continue
        key = (candidate.column, str(candidate.path))
        if key in seen:
            count = seen[key]
        else:
            table, _sep, column = candidate.column.partition(".")
            try:
                count = database.docs_with_path(table, column,
                                                candidate.path)
                total = len(database.documents(table, column))
            except ReproError:
                continue
            if total == 0:
                continue  # an empty table proves nothing yet
            seen[key] = count
            facts.checked += 1
            facts.docs_with_path[key] = count
        if candidate.in_disjunction:
            by_disjunction.setdefault(
                candidate.disjunction_group, []).append(
                (candidate, count))
            continue
        if count == 0:
            facts.empty_columns.setdefault(candidate.column,
                                           str(candidate.path))
    for members in by_disjunction.values():
        columns = {candidate.column for candidate, _count in members}
        if len(columns) == 1 and all(count == 0
                                     for _candidate, count in members):
            column = next(iter(columns))
            facts.empty_columns.setdefault(
                column, str(members[0][0].path))
    return facts
