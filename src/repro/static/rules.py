"""The rules engine behind ``repro lint``.

:func:`lint_statement` runs every static check the engine knows over
one XQuery or SQL/XML statement and returns reason-coded
:class:`~repro.static.diagnostics.Diagnostic` findings:

* parse and inference errors (``SE001``–``SE005``) straight from the
  abstract interpreter in :mod:`repro.static.infer`;
* predicate-level pitfall warnings from the extracted candidates —
  non-filtering contexts (``SW320``, §3.2/§3.4), uncast joins
  (``SW301``, Tip 1), existential between pairs (``SW310``, §3.10);
* index-aware warnings when a database is supplied: for a predicate no
  index can serve, the dominant pattern failure is reported as
  namespace drift (``SW307``), ``/text()`` misalignment (``SW308``) or
  an attribute-axis mistake (``SW309``);
* data-aware drift detection, also database-backed but needing no
  index: when a predicate path matches *no* stored document but a
  namespace-erased / text-stripped / attribute-flipped variant does,
  the lint names the variant that would have matched — turning the
  silent empty result of §3.7–§3.9 into an explanation.
"""

from __future__ import annotations

from ..core.between import detect_between
from ..core.eligibility import analyze_candidates
from ..core.patterns import (LinearPattern, PathPattern, PatternStep,
                             StepTest, erase_namespaces)
from ..core.predicates import FILTERING_CONTEXTS, extract_candidates
from ..core.report import Reason
from ..errors import CatalogError, ReproError
from .diagnostics import Code, Diagnostic, DiagnosticSink
from .infer import infer_module, refine_candidates

__all__ = ["lint_statement"]

#: Index-verdict reasons that map onto pitfall warning codes.
_REASON_TO_CODE = {
    Reason.NAMESPACE_MISMATCH: Code.NAMESPACE_DRIFT,
    Reason.TEXT_MISALIGNMENT: Code.TEXT_MISALIGNMENT,
    Reason.ATTRIBUTE_AXIS: Code.ATTRIBUTE_AXIS,
}


def lint_statement(statement: str, database=None,
                   language: str = "auto") -> list[Diagnostic]:
    """All static findings for one statement.

    ``language`` is ``'xquery'``, ``'sql'`` or ``'auto'`` (SQL when the
    text starts with SELECT/VALUES, matching
    :func:`repro.core.eligibility.analyze_eligibility`).  ``database``
    unlocks the schema-, summary- and index-aware checks; without it
    the purely statement-local rules still run.
    """
    if language == "auto":
        head = statement.lstrip().upper()
        language = ("sql" if head.startswith(("SELECT", "VALUES"))
                    else "xquery")
    sink = DiagnosticSink()
    if language == "sql":
        _lint_sql(statement, database, sink)
    else:
        _lint_xquery(statement, database, sink)
    return sink.findings


# ---------------------------------------------------------------------------
# XQuery
# ---------------------------------------------------------------------------


def _lint_xquery(statement: str, database, sink: DiagnosticSink) -> None:
    from ..xquery.parser import parse_xquery
    try:
        module = parse_xquery(statement)
    except ReproError as error:
        sink.emit(Code.SYNTAX_ERROR, str(error))
        return
    inference = infer_module(module, database=database)
    for finding in inference.diagnostics:
        sink.add(finding)
    candidates = extract_candidates(module)
    refine_candidates(module, candidates)
    _lint_candidates(candidates, database, sink)


# ---------------------------------------------------------------------------
# SQL
# ---------------------------------------------------------------------------


def _lint_sql(statement: str, database, sink: DiagnosticSink) -> None:
    from ..sql.parser import parse_statement
    try:
        statement_ast = parse_statement(statement)
    except ReproError as error:
        sink.emit(Code.SYNTAX_ERROR, str(error))
        return
    _check_sql_names(statement_ast, database, sink)
    if database is None:
        return
    from ..sql.analyzer import extract_sql_candidates
    try:
        candidates = extract_sql_candidates(database, statement)
    except CatalogError as error:
        sink.emit(Code.UNKNOWN_NAME, str(error))
        return
    except ReproError as error:
        sink.emit(Code.SYNTAX_ERROR, str(error))
        return
    for candidate in candidates:
        _lint_embedded_xquery(candidate, database, sink)
    _lint_candidates(candidates, database, sink)


def _check_sql_names(statement_ast, database, sink: DiagnosticSink
                     ) -> None:
    if database is None:
        return
    from ..sql import ast as sql_ast
    tables = [entry for entry in
              getattr(statement_ast, "from_refs", None) or []
              if isinstance(entry, sql_ast.TableRef)]
    for table_ref in tables:
        name = getattr(table_ref, "name", None)
        if not name:
            continue
        try:
            database.table(name)
        except CatalogError:
            sink.emit(Code.UNKNOWN_NAME,
                      f"unknown table {name}", subject=name)
        except AttributeError:
            return  # database object exposes no table lookup


def _lint_embedded_xquery(candidate, database,
                          sink: DiagnosticSink) -> None:
    """Run inference over the XQuery embedded in an SQL candidate."""
    module = getattr(candidate, "module", None)
    if module is None:
        return
    inference = infer_module(module, database=database,
                             report_unknown_vars=False)
    for finding in inference.diagnostics:
        sink.add(finding)


# ---------------------------------------------------------------------------
# Candidate-level rules (shared between the two languages)
# ---------------------------------------------------------------------------


def _lint_candidates(candidates, database, sink: DiagnosticSink) -> None:
    _check_contexts(candidates, sink)
    _check_uncast_joins(candidates, sink)
    _check_between(candidates, sink)
    if database is not None:
        _check_index_verdicts(candidates, database, sink)
        _check_path_drift(candidates, database, sink)


def _check_contexts(candidates, sink: DiagnosticSink) -> None:
    for candidate in candidates:
        if candidate.context in FILTERING_CONTEXTS:
            continue
        sink.emit(
            Code.NON_FILTERING_CONTEXT,
            f"predicate sits in a {candidate.context.value} context; "
            f"its empty result eliminates nothing, so no index can "
            f"serve it",
            subject=candidate.description, column=candidate.column)


def _check_uncast_joins(candidates, sink: DiagnosticSink) -> None:
    """Tip 1: a comparison between two paths with no provable type."""
    by_comparison: dict[int, list] = {}
    for candidate in candidates:
        if candidate.comparison_id is not None:
            by_comparison.setdefault(candidate.comparison_id,
                                     []).append(candidate)
    for members in by_comparison.values():
        if len(members) < 2:
            continue
        if any(member.operand_type is not None for member in members):
            continue  # inference proved a side's type: a real probe
        first = members[0]
        sink.emit(
            Code.UNCAST_JOIN,
            f"join {first.description} compares two untyped paths; "
            f"add xs:double(.) / xs:string(.) casts so an index can "
            f"serve either side",
            subject=first.description, column=first.column)


def _check_between(candidates, sink: DiagnosticSink) -> None:
    for group in detect_between(candidates):
        if group.single_scan:
            continue
        sink.emit(
            Code.EXISTENTIAL_BETWEEN,
            f"range pair on {group.lower.column} uses existential "
            f"general comparisons over a possibly non-singleton path; "
            f"it is two independent scans, not a between",
            subject=group.description, column=group.lower.column)


def _check_index_verdicts(candidates, database,
                          sink: DiagnosticSink) -> None:
    """For predicates no index serves, surface the pattern pitfalls."""
    filtering = [candidate for candidate in candidates
                 if candidate.context in FILTERING_CONTEXTS
                 and not candidate.negated]
    report = analyze_candidates(database, filtering)
    for candidate, predicate_report in zip(filtering, report.predicates):
        verdicts = predicate_report.verdicts
        if not verdicts or any(verdict.eligible for verdict in verdicts):
            continue
        for verdict in verdicts:
            for reason in verdict.reasons:
                code = _REASON_TO_CODE.get(reason)
                if code is None:
                    continue
                sink.emit(
                    code,
                    f"index {verdict.index_name} cannot serve "
                    f"{candidate.description}: {reason.description}",
                    subject=candidate.description,
                    column=candidate.column,
                    detail=verdict.detail)


def _check_path_drift(candidates, database,
                      sink: DiagnosticSink) -> None:
    """§3.7–§3.9 against the *data*: a path matching nothing where a
    close variant matches is almost certainly the variant's pitfall."""
    seen: set[tuple] = set()
    for candidate in candidates:
        key = (candidate.column, str(candidate.path))
        if key in seen:
            continue
        seen.add(key)
        table, _sep, column = candidate.column.partition(".")
        try:
            if database.docs_with_path(table, column,
                                       candidate.path) > 0:
                continue
            if not database.documents(table, column):
                continue  # empty table: nothing to compare against
        except ReproError:
            continue
        for code, variant, note in _drift_variants(candidate.path):
            try:
                count = database.docs_with_path(table, column, variant)
            except ReproError:
                continue
            if count > 0:
                sink.emit(
                    code,
                    f"path '{candidate.path}' matches no stored "
                    f"document, but {note} '{variant}' matches "
                    f"{count}", subject=str(candidate.path),
                    column=candidate.column)
                break


def _drift_variants(path: PathPattern):
    """Close variants of a path, each tagged with the pitfall it
    diagnoses when it matches where the original does not."""
    erased = erase_namespaces(path)
    if erased.alternatives != path.alternatives:
        yield (Code.NAMESPACE_DRIFT, erased,
               "the namespace-erased variant")
    stripped = _strip_trailing_text(path)
    if stripped is not None:
        yield (Code.TEXT_MISALIGNMENT, stripped,
               "the element (without /text()) variant")
    appended = _append_text(path)
    if appended is not None:
        yield (Code.TEXT_MISALIGNMENT, appended,
               "the /text() variant")
    flipped = _flip_final_axis(path)
    if flipped is not None:
        yield (Code.ATTRIBUTE_AXIS, flipped,
               "the attribute-axis variant")


def _strip_trailing_text(path: PathPattern) -> PathPattern | None:
    alternatives = []
    changed = False
    for alternative in path.alternatives:
        steps = alternative.steps
        if steps and steps[-1].test.kind == "text":
            steps = steps[:-1]
            changed = True
        if not steps:
            return None
        alternatives.append(LinearPattern(tuple(steps)))
    return PathPattern(tuple(alternatives)) if changed else None


def _append_text(path: PathPattern) -> PathPattern | None:
    alternatives = []
    for alternative in path.alternatives:
        steps = alternative.steps
        if not steps or steps[-1].test.kind != "element":
            return None
        text_step = PatternStep(StepTest("text"))
        alternatives.append(LinearPattern(steps + (text_step,)))
    return PathPattern(tuple(alternatives))


def _flip_final_axis(path: PathPattern) -> PathPattern | None:
    """``…/price`` <-> ``…/@price`` — the §3.9 confusion, both ways."""
    alternatives = []
    changed = False
    for alternative in path.alternatives:
        steps = alternative.steps
        if not steps:
            return None
        final = steps[-1]
        if final.test.kind == "element" and final.test.local:
            flipped = StepTest("attribute", final.test.uri,
                               final.test.local)
        elif final.test.kind == "attribute" and final.test.local:
            flipped = StepTest("element", final.test.uri,
                               final.test.local)
        else:
            return None
        changed = True
        steps = steps[:-1] + (PatternStep(flipped, final.gap),)
        alternatives.append(LinearPattern(steps))
    return PathPattern(tuple(alternatives)) if changed else None
