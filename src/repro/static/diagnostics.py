"""Reason-coded static diagnostics.

Every finding the static analyzer emits carries a stable code, a
severity, and the paper section (plus tip number, where one exists)
that explains it — the same explanation-first philosophy as
:mod:`repro.core.report`, extended from index eligibility to whole-
statement linting.

Codes come in two families:

* ``SE…`` — static *errors*: the statement is wrong or provably
  useless (unknown names, incomparable comparison types per §3.1,
  paths that are statically empty given every document's path summary);
* ``SW…`` — pitfall *warnings*: the statement runs, but §3 says it
  will not run the way its author thinks (namespace drift, ``/text()``
  misalignment, attribute-axis mistakes, uncast joins, existential
  between pairs, non-filtering predicate contexts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Code(enum.Enum):
    """Stable reason codes for static findings."""

    # value = (code, severity, paper section, tip, title)
    SYNTAX_ERROR = (
        "SE001", "error", "2.1", None,
        "the statement does not parse")
    UNKNOWN_FUNCTION = (
        "SE002", "error", "2.1", None,
        "call to a function that is neither built in nor declared")
    UNKNOWN_VARIABLE = (
        "SE003", "error", "2.1", None,
        "reference to a variable that is not in scope")
    INCOMPARABLE_TYPES = (
        "SE004", "error", "3.1", 1,
        "comparison between statically incomparable types; it can "
        "never be true")
    EMPTY_PATH = (
        "SE005", "error", "2.1", None,
        "path matches no node in any stored document (per the path "
        "summaries); the expression is statically empty")
    UNKNOWN_NAME = (
        "SE006", "error", "3.2", None,
        "SQL reference to an unknown table or column")
    UNCAST_JOIN = (
        "SW301", "warning", "3.1", 1,
        "join predicate has no provable comparison type; no index can "
        "serve it (Tip 1: add xs:double(.) / xs:string(.) casts)")
    NAMESPACE_DRIFT = (
        "SW307", "warning", "3.7", 10,
        "query and data/index disagree on namespaces; the same local "
        "names exist in another namespace")
    TEXT_MISALIGNMENT = (
        "SW308", "warning", "3.8", 11,
        "/text() steps are misaligned between query, data and index; "
        "an element's string value differs from its text child under "
        "mixed content")
    ATTRIBUTE_AXIS = (
        "SW309", "warning", "3.9", 12,
        "attribute nodes are only reached through the attribute axis; "
        "//* and //node() contain no attributes")
    EXISTENTIAL_BETWEEN = (
        "SW310", "warning", "3.10", None,
        "range pair uses existential general-comparison semantics; it "
        "is not a between unless the operand is provably a singleton")
    NON_FILTERING_CONTEXT = (
        "SW320", "warning", "3.2", None,
        "predicate sits in a context that preserves empty results "
        "(let binding, constructor content, select list, XMLTABLE "
        "column); it filters nothing and no index applies")

    def __init__(self, code, severity, section, tip, title):
        self.code = code
        self.severity = severity
        self.section = section
        self.tip = tip
        self.title = title

    def __str__(self) -> str:
        tip = f", Tip {self.tip}" if self.tip else ""
        return f"{self.code} (§{self.section}{tip})"


@dataclass
class Diagnostic:
    """One static finding, ready for human or JSON rendering."""

    code: Code
    message: str
    #: Where the finding anchors: an expression/path/pattern rendering.
    subject: str = ""
    #: ``table.column`` when the finding is tied to an XML column.
    column: str = ""
    detail: str = ""

    @property
    def severity(self) -> str:
        return self.code.severity

    def to_dict(self) -> dict:
        payload = {
            "code": self.code.code,
            "severity": self.code.severity,
            "section": self.code.section,
            "tip": self.code.tip,
            "title": self.code.title,
            "message": self.message,
        }
        for key in ("subject", "column", "detail"):
            value = getattr(self, key)
            if value:
                payload[key] = value
        return payload

    def __str__(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        detail = f" — {self.detail}" if self.detail else ""
        return (f"{self.code.severity} {self.code}: "
                f"{self.message}{subject}{detail}")


@dataclass
class DiagnosticSink:
    """Deduplicating collector shared by the inference walker and the
    rules engine."""

    findings: list = field(default_factory=list)
    _seen: set = field(default_factory=set)

    def add(self, diagnostic: Diagnostic) -> None:
        key = (diagnostic.code, diagnostic.message, diagnostic.subject)
        if key not in self._seen:
            self._seen.add(key)
            self.findings.append(diagnostic)

    def emit(self, code: Code, message: str, subject: str = "",
             column: str = "", detail: str = "") -> None:
        self.add(Diagnostic(code, message, subject, column, detail))

    @property
    def errors(self) -> list:
        return [finding for finding in self.findings
                if finding.severity == "error"]

    @property
    def warnings(self) -> list:
        return [finding for finding in self.findings
                if finding.severity == "warning"]
