"""The XDM sequence-type lattice.

A static type is a set of *item types* plus *cardinality bounds*
``[low, high]`` (``high=None`` meaning unbounded) — the ``(prime(T),
quantifier(T))`` factorization of the XQuery 1.0 Formal Semantics,
with exact integer bounds instead of the four occurrence indicators so
the planner can seed cardinality estimates from them.  The classic
indicators are recovered for display: ``0`` (empty), ``1``, ``?``,
``*``, ``+``.

Item kinds cover the node taxonomy (``element(n)``, ``attribute(n)``,
``text()``, ``document-node()``, ``comment()``,
``processing-instruction()``, ``node()``) and the atomic ``xs:*`` /
``xdt:*`` types the engine implements.  The lattice operations are:

* :func:`union_type` — alternation (if/else branches, typeswitch);
* :func:`concat_type` — sequence concatenation (the comma operator);
* :func:`iterate` — the type of a ``for``-bound variable;
* :func:`atomized` — fn:data() over the type, consulting no schema
  (schema-typed atomization lives in :mod:`repro.static.infer`, which
  knows the document paths).

Section 3.1 comparability is a small algebra over *categories*
(numeric, string, boolean, date, dateTime, untyped): two types are
statically incomparable when both are concretely typed and their
category sets are disjoint — the static error behind Query 3's
surprise, surfaced before the query runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..xdm import atomic

__all__ = ["ItemType", "SeqType", "EMPTY", "ANY", "atomized",
           "category_of", "comparison_categories", "concat_type",
           "index_type_for", "item", "iterate", "one", "opt",
           "statically_incomparable", "star", "union_type"]

#: Node kinds (everything else is an atomic type name).
_NODE_KINDS = frozenset({
    "element", "attribute", "text", "comment",
    "processing-instruction", "document-node", "node"})


@dataclass(frozen=True)
class ItemType:
    """One item kind: a node test or an atomic type.

    ``kind`` is a node kind from ``_NODE_KINDS``, an atomic type name
    (``xs:double``, ``xdt:untypedAtomic``, …), or ``item`` (⊤).
    ``uri``/``local`` narrow element/attribute kinds to a name;
    ``None`` wildcards (so ``element()`` is ``ItemType('element')``).
    """

    kind: str
    uri: Optional[str] = None
    local: Optional[str] = None

    @property
    def is_node(self) -> bool:
        return self.kind in _NODE_KINDS

    @property
    def is_atomic(self) -> bool:
        return self.kind not in _NODE_KINDS and self.kind != "item"

    def __str__(self) -> str:
        if self.kind in ("element", "attribute"):
            if self.local is None:
                return f"{self.kind}()"
            prefix = f"{{{self.uri}}}" if self.uri else ""
            return f"{self.kind}({prefix}{self.local})"
        if self.kind in ("text", "comment", "processing-instruction",
                         "document-node", "node"):
            return f"{self.kind}()"
        return self.kind


#: The ⊤ item.
ITEM = ItemType("item")


def item(kind: str, uri: str | None = None,
         local: str | None = None) -> ItemType:
    return ItemType(kind, uri, local)


@dataclass(frozen=True)
class SeqType:
    """A sequence type: alternation of item types × cardinality bounds."""

    items: frozenset  # frozenset[ItemType]
    low: int = 0
    high: Optional[int] = None   # None = unbounded

    def __post_init__(self):
        if self.high is not None and self.high < self.low:
            object.__setattr__(self, "high", self.low)

    # -- occurrence -----------------------------------------------------

    @property
    def occurrence(self) -> str:
        """The classic indicator nearest to the exact bounds."""
        if self.high == 0:
            return "0"
        if (self.low, self.high) == (1, 1):
            return "1"
        if self.low == 0:
            return "?" if self.high == 1 else "*"
        return "+"

    @property
    def possibly_empty(self) -> bool:
        return self.low == 0

    @property
    def is_empty(self) -> bool:
        return self.high == 0

    def __str__(self) -> str:
        if self.is_empty:
            return "empty-sequence()"
        kinds = " | ".join(sorted(str(entry) for entry in self.items)) \
            or "item"
        if len(self.items) > 1:
            kinds = f"({kinds})"
        suffix = {"1": ""}.get(self.occurrence, self.occurrence)
        if suffix == "0":
            suffix = ""
        return f"{kinds}{suffix}"

    def bounds_text(self) -> str:
        high = "∞" if self.high is None else str(self.high)
        return f"[{self.low}, {high}]"

    # -- helpers --------------------------------------------------------

    def with_bounds(self, low: int, high: Optional[int]) -> "SeqType":
        return SeqType(self.items, low, high)

    def at_least_empty(self) -> "SeqType":
        """The same type with the low bound relaxed to 0 (filtering)."""
        return SeqType(self.items, 0, self.high)


EMPTY = SeqType(frozenset(), 0, 0)
ANY = SeqType(frozenset({ITEM}), 0, None)


def one(item_type: ItemType) -> SeqType:
    return SeqType(frozenset({item_type}), 1, 1)


def opt(item_type: ItemType) -> SeqType:
    return SeqType(frozenset({item_type}), 0, 1)


def star(item_types: Iterable[ItemType]) -> SeqType:
    return SeqType(frozenset(item_types), 0, None)


# ---------------------------------------------------------------------------
# Lattice operations
# ---------------------------------------------------------------------------


def union_type(left: SeqType, right: SeqType) -> SeqType:
    """Alternation: either branch's value (if/else, typeswitch arms)."""
    high = (None if left.high is None or right.high is None
            else max(left.high, right.high))
    return SeqType(left.items | right.items,
                   min(left.low, right.low), high)


def concat_type(left: SeqType, right: SeqType) -> SeqType:
    """Sequence concatenation: the comma operator (never nests, §3.4)."""
    high = (None if left.high is None or right.high is None
            else left.high + right.high)
    return SeqType(left.items | right.items, left.low + right.low, high)


def iterate(binding: SeqType) -> SeqType:
    """The type of a ``for`` variable: exactly one of the prime items."""
    if binding.is_empty:
        return EMPTY
    return SeqType(binding.items or frozenset({ITEM}), 1, 1)


_NUMERIC_TYPES = frozenset({
    atomic.T_DOUBLE, atomic.T_DECIMAL, atomic.T_INTEGER, atomic.T_LONG,
    "xs:float", "xs:int"})

#: atomic type -> §3.1 comparison category.
_CATEGORY = {
    **{name: "numeric" for name in _NUMERIC_TYPES},
    atomic.T_STRING: "string",
    atomic.T_BOOLEAN: "boolean",
    atomic.T_DATE: "date",
    atomic.T_DATETIME: "dateTime",
    atomic.T_QNAME: "QName",
}


def category_of(item_type: ItemType) -> str:
    """Comparison category: a concrete category, ``any`` for untyped
    atomics / nodes / ⊤ (they cast to the other side at run time)."""
    if item_type.is_node or item_type.kind == "item":
        return "any"
    return _CATEGORY.get(item_type.kind, "any")


def atomized(seq: SeqType) -> SeqType:
    """fn:data() over the type: nodes become untyped atomics.

    Without schema knowledge an untyped node atomizes to exactly one
    ``xdt:untypedAtomic``; the bounds carry over unchanged.  Callers
    with schema knowledge (the abstract interpreter) refine the item
    type afterwards.
    """
    if seq.is_empty:
        return EMPTY
    items = frozenset(
        ItemType(atomic.T_UNTYPED) if entry.is_node else
        (ItemType(atomic.T_ANY_ATOMIC) if entry.kind == "item" else entry)
        for entry in seq.items)
    return SeqType(items, seq.low, seq.high)


def comparison_categories(seq: SeqType) -> frozenset:
    """The §3.1 category set of a type's atomized values."""
    return frozenset(category_of(entry) for entry in atomized(seq).items)


def statically_incomparable(left: SeqType, right: SeqType) -> bool:
    """True when a comparison between the two types can *never*
    succeed: both sides carry only concrete categories and the sets are
    disjoint (e.g. ``xs:double`` vs ``xs:string`` — §3.1).  Untyped
    data (category ``any``) casts to the other side, so it is
    comparable with everything.
    """
    left_categories = comparison_categories(left)
    right_categories = comparison_categories(right)
    if not left_categories or not right_categories:
        return False  # an empty operand makes the comparison empty/false
    if "any" in left_categories or "any" in right_categories:
        return False
    return not (left_categories & right_categories)


#: category -> XML index type (the Section 2.1 index type taxonomy).
_CATEGORY_TO_INDEX = {
    "numeric": "DOUBLE",
    "string": "VARCHAR",
    "date": "DATE",
    "dateTime": "TIMESTAMP",
}


def index_type_for(seq: SeqType) -> str | None:
    """The index type a comparison against ``seq`` would need, or None
    when the static type is untyped / mixed — exactly the Tip-1
    distinction: only a provably-typed operand yields an index type."""
    categories = comparison_categories(seq)
    if len(categories) != 1:
        return None
    return _CATEGORY_TO_INDEX.get(next(iter(categories)))
