"""Static analysis: type & cardinality inference for XQuery / SQL-XML.

The paper's whole contribution is *static* reasoning — Definition 1 and
Sections 3.1–3.10 decide index eligibility and pitfalls from the query
text alone.  This package makes that reasoning a reusable compiler
layer:

* :mod:`repro.static.types` — an XDM sequence-type lattice (item kinds
  × occurrence bounds) with the union / concatenation / atomization
  operations of the XQuery Formal Semantics;
* :mod:`repro.static.infer` — an abstract interpreter that walks the
  XQuery AST, consulting registered schemas and per-document path
  summaries, and assigns every subexpression a static type, cardinality
  bounds and constant value where provable;
* :mod:`repro.static.diagnostics` — reason-coded findings
  (``SE…`` static errors, ``SW…`` pitfall warnings);
* :mod:`repro.static.rules` — the rules engine behind ``repro lint``,
  unifying the §3.1 / §3.7 / §3.8 / §3.9 / Tip-1 pitfall checks over
  both query languages.

Consumers: the planner prunes statically-empty branches and seeds its
cardinality estimates from inferred bounds; the eligibility analyzer
takes comparison-type verdicts from inference instead of surface cast
syntax; the CLI exposes everything as ``repro lint``.
"""

from .diagnostics import Code, Diagnostic
from .infer import Inference, infer_module, refine_candidates
from .rules import lint_statement
from .types import ItemType, SeqType

__all__ = ["Code", "Diagnostic", "Inference", "ItemType", "SeqType",
           "infer_module", "lint_statement", "refine_candidates"]
