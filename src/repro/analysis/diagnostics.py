"""Reason-coded findings for the repo's own concurrency sanitizer.

Same explanation-first philosophy as :mod:`repro.static.diagnostics`,
aimed at the engine's source instead of user statements: every finding
carries a stable ``SA4xx`` code and renders as
``path:line: CODE — message`` (the format ``scripts/lint_repo.py``
always used, so editors and CI greps keep working).

Codes:

* ``SA401``–``SA406`` — the interprocedural concurrency passes
  (lock order, upgrades, blocking under locks / in coroutines,
  fork safety, guard-tick discipline);
* ``SA407``–``SA410`` — the four original lexical rules, migrated
  onto the call-graph engine.

False positives are silenced in place with a ``# sa: ok(SA4xx)``
pragma on (or immediately above) the offending line — parallel to the
long-standing ``# lint: broad-except-ok`` escape, which is still
honoured for ``SA408``.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

__all__ = ["SACode", "SAFinding", "suppressed"]

#: ``# sa: ok(SA403)`` or ``# sa: ok(SA403: reason text)``.  The
#: closing paren may land on a continuation line — reasons are
#: encouraged to be real sentences — so it is not required here.
_PRAGMA = re.compile(r"#\s*sa:\s*ok\(\s*(SA\d{3})\b")

#: The pre-SA escape hatch for broad excepts, kept working.
LEGACY_BROAD_EXCEPT_PRAGMA = "lint: broad-except-ok"


class SACode(enum.Enum):
    """Stable reason codes for sanitizer findings."""

    # value = (code, title)
    LOCK_ORDER = (
        "SA401",
        "two call paths acquire the same pair of locks in opposite "
        "orders — a potential deadlock")
    LOCK_UPGRADE = (
        "SA402",
        "read->write upgrade attempt on one lock; RWLock raises at "
        "run time, classify the statement before acquiring")
    BLOCKING_UNDER_LOCK = (
        "SA403",
        "blocking call (fsync/socket/pipe/join/sleep) reachable while "
        "a write lock is held")
    BLOCKING_IN_ASYNC = (
        "SA404",
        "synchronous blocking call inside an async coroutine; it "
        "stalls the event loop — dispatch via run_in_executor")
    FORK_WITH_STATE = (
        "SA405",
        "Process(...).start() reachable while a lock or file handle "
        "is held; the child inherits it mid-operation")
    GUARD_TICK = (
        "SA406",
        "row/item loop is not dominated by a QueryGuard.tick call; "
        "deadlines (57014) and budgets (54000) cannot interrupt it")
    LOCK_DISCIPLINE = (
        "SA407",
        "catalog state mutated outside 'with self._rwlock.write()'; "
        "snapshot readers rely on copy-on-write under the writer lock")
    BROAD_EXCEPT = (
        "SA408",
        "broad except swallows engine errors; catch ReproError, "
        "re-raise, or annotate the reason")
    METRICS_GATING = (
        "SA409",
        "METRICS call outside an 'if METRICS.enabled:' guard; the "
        "disabled hot path pays for bookkeeping")
    FSYNC_DISCIPLINE = (
        "SA410",
        "raw file primitive in durability code; all I/O goes through "
        "durability/fsio.py where the write->fsync->rename protocol "
        "and fault points live")

    def __init__(self, code: str, title: str):
        self.code = code
        self.title = title

    def __str__(self) -> str:
        return self.code


@dataclass
class SAFinding:
    """One sanitizer finding, ready for text or JSON rendering."""

    code: SACode
    path: str          # repo-relative, stable across machines
    line: int
    message: str
    #: Optional second anchor (the other half of a lock-order pair).
    related: str = ""
    #: Optional alternate suppression point ``(path, line)`` — for
    #: reachability findings, the resolved callee's ``def`` line, so
    #: one pragma there accepts every call site (e.g. the WAL append
    #: that fsyncs inside the writer section *by design*).
    suppress_at: tuple | None = None

    def to_dict(self) -> dict:
        payload = {
            "code": self.code.code,
            "title": self.code.title,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.related:
            payload["related"] = self.related
        return payload

    def __str__(self) -> str:
        related = f" [{self.related}]" if self.related else ""
        return (f"{self.path}:{self.line}: {self.code.code} — "
                f"{self.message}{related}")


def suppressed(source_lines: list[str], line: int, code: SACode) -> bool:
    """True when ``line`` (1-based) carries a matching suppression.

    The pragma may sit on the flagged line itself or anywhere in the
    contiguous comment block directly above it (multi-line reasons are
    encouraged).  ``SA408`` additionally honours the legacy
    broad-except pragma.
    """
    def _matches(text: str) -> bool:
        for match in _PRAGMA.finditer(text):
            if match.group(1) == code.code:
                return True
        return (code is SACode.BROAD_EXCEPT
                and LEGACY_BROAD_EXCEPT_PRAGMA in text)

    if not 1 <= line <= len(source_lines):
        return False
    if _matches(source_lines[line - 1]):
        return True
    lineno = line - 1
    while lineno >= 1 and source_lines[lineno - 1].lstrip().startswith("#"):
        if _matches(source_lines[lineno - 1]):
            return True
        lineno -= 1
    return False
