"""The runtime half of the concurrency sanitizer (``REPRO_SANITIZE=1``).

When installed, the RWLock's acquire/release paths report into a
global lock-order graph: every first acquisition records an edge from
each lock the thread already holds, stamped with the acquiring stack,
and a cycle detected **at acquire time** produces a violation carrying
both stacks — the inverted pair is caught the first time it happens,
not the day the schedules interleave into a real deadlock.  The same
state asserts no lock is held across ``fork``, detects mutation seen
through a pinned :class:`~repro.storage.snapshot.Snapshot`, and
verifies WAL append order equals apply order in
:class:`~repro.durability.engine.DurableDatabase`.

Violations are *recorded*, not raised: a sanitizer must observe the
engine, not change its control flow.  They surface three ways —

* ``sanitizer.*`` counters in :data:`repro.obs.metrics.METRICS`
  (when metrics are enabled),
* :func:`violations` / :func:`drain` for tests and tools,
* a hard pytest failure: the autouse fixture in ``tests/conftest.py``
  drains after every test and asserts the list is empty.

The disabled cost is one module-global load and an ``is None`` test
per lock operation (``ACTIVE`` below), mirroring the
``if METRICS.enabled:`` discipline; ``benchmarks/bench_sanitizer.py``
keeps that claim honest.

Everything here is stdlib-only (plus the metrics registry) so the
low-level modules that call in — ``core/rwlock.py``,
``storage/snapshot.py`` — can import it without cycles.
"""

from __future__ import annotations

import os
import threading
import traceback
from contextlib import contextmanager

from ..obs.metrics import METRICS

__all__ = ["SanitizerState", "Violation", "install", "uninstall",
           "current", "installed", "violations", "drain",
           "install_from_env"]

#: The live state, or None.  Call sites guard with
#: ``if sanitizer.ACTIVE is not None`` — a module-attribute load and
#: an identity test, free enough for the lock hot path.
ACTIVE: "SanitizerState | None" = None

_ENV_FLAG = "REPRO_SANITIZE"


class Violation:
    """One recorded invariant breach."""

    __slots__ = ("kind", "message", "stack", "related_stack")

    def __init__(self, kind: str, message: str, stack: str = "",
                 related_stack: str = ""):
        self.kind = kind          # lock_order | upgrade | fork | ...
        self.message = message
        self.stack = stack
        self.related_stack = related_stack

    def render(self) -> str:
        parts = [f"sanitizer.{self.kind}: {self.message}"]
        if self.stack:
            parts.append("--- acquiring stack ---\n" + self.stack)
        if self.related_stack:
            parts.append("--- conflicting stack ---\n"
                         + self.related_stack)
        return "\n".join(parts)

    def __repr__(self) -> str:
        return f"<Violation {self.kind}: {self.message[:60]}>"


class _Held:
    __slots__ = ("lock_id", "mode", "depth")

    def __init__(self, lock_id: int, mode: str):
        self.lock_id = lock_id
        self.mode = mode
        self.depth = 1


def _stack() -> str:
    return "".join(traceback.format_stack(limit=12)[:-2])


class SanitizerState:
    """Global lock-order graph + per-thread hold tracking.

    The internal ``_mutex`` is a leaf lock: every critical section is
    a few dict operations and never calls back into the engine, so it
    cannot participate in the cycles it is hunting.
    """

    def __init__(self):
        self._mutex = threading.Lock()
        #: Strong references keyed by id() — retaining the lock objects
        #: prevents id reuse from stitching phantom edges between a
        #: dead lock and a new one at the same address.
        self._objects: dict[int, object] = {}
        self._names: dict[int, str] = {}
        #: lock-order edges: a_id -> {b_id: stack that added the edge}.
        self._edges: dict[int, dict[int, str]] = {}
        #: thread ident -> [_Held] in acquisition order.  Kept in one
        #: dict (not threading.local) so the fork check can see every
        #: thread's holds.
        self._held: dict[int, list] = {}
        self._violations: list[Violation] = []

    # -- bookkeeping ----------------------------------------------------

    def _register(self, lock, name: str | None) -> int:
        lock_id = id(lock)
        if lock_id not in self._objects:
            self._objects[lock_id] = lock
            self._names[lock_id] = name or type(lock).__name__
        return lock_id

    def _name(self, lock_id: int) -> str:
        return f"{self._names.get(lock_id, '?')}@{lock_id:#x}"

    def _reaches(self, start: int, goal: int) -> bool:
        seen = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False

    def note_violation(self, kind: str, message: str, stack: str = "",
                       related_stack: str = "") -> None:
        violation = Violation(kind, message, stack, related_stack)
        with self._mutex:
            self._violations.append(violation)
        if METRICS.enabled:
            METRICS.inc(f"sanitizer.{kind}")
            METRICS.inc("sanitizer.violations")

    # -- RWLock hooks ---------------------------------------------------

    def on_acquire(self, lock, mode: str, name: str | None = None
                   ) -> None:
        """Called at acquire entry, *before* any blocking wait — so an
        inverted order is reported while both threads still run."""
        ident = threading.get_ident()
        with self._mutex:
            lock_id = self._register(lock, name)
            held = self._held.setdefault(ident, [])
            for entry in held:
                if entry.lock_id == lock_id:
                    if entry.mode == "read" and mode == "write":
                        # The RWLock raises on upgrade — the acquire
                        # never succeeds, so the hold depth must not
                        # change here.
                        self.record_upgrade(lock_id)
                        return
                    entry.depth += 1
                    return
            conflicts = [
                (entry.lock_id,
                 self._edges.get(lock_id, {}).get(entry.lock_id, ""))
                for entry in held
                if self._reaches(lock_id, entry.lock_id)]
            new_edges = [entry.lock_id for entry in held
                         if lock_id not in
                         self._edges.get(entry.lock_id, ())]
            if new_edges:
                stack = _stack()
                for held_id in new_edges:
                    self._edges.setdefault(held_id, {})[lock_id] = stack
            held.append(_Held(lock_id, mode))
        for held_id, related in conflicts:
            self.note_violation(
                "lock_order",
                f"acquiring {self._name(lock_id)} ({mode}) while "
                f"holding {self._name(held_id)}; the opposite order "
                f"was seen earlier — potential deadlock",
                stack=_stack(), related_stack=related)

    def record_upgrade(self, lock_id: int) -> None:
        # Called with _mutex held; defer the violation append.
        violation = Violation(
            "upgrade",
            f"read->write upgrade attempted on {self._name(lock_id)}",
            stack=_stack())
        self._violations.append(violation)
        if METRICS.enabled:
            METRICS.inc("sanitizer.upgrade")
            METRICS.inc("sanitizer.violations")

    def on_release(self, lock, mode: str) -> None:
        ident = threading.get_ident()
        with self._mutex:
            held = self._held.get(ident)
            if not held:
                return
            lock_id = id(lock)
            for index in range(len(held) - 1, -1, -1):
                if held[index].lock_id == lock_id:
                    held[index].depth -= 1
                    if held[index].depth == 0:
                        del held[index]
                    break
            if not held:
                del self._held[ident]

    # -- fork safety ----------------------------------------------------

    def check_fork(self, where: str = "fork") -> None:
        """No instrumented lock may be held across a fork.

        The forking thread must hold nothing at all; *other* threads
        may legitimately be inside shared read sections (the pool
        forks workers while readers run), but a concurrent **write**
        hold means the child clones catalog state mid-mutation."""
        ident = threading.get_ident()
        with self._mutex:
            mine = list(self._held.get(ident, ()))
            other_writes = [
                entry for thread, entries in self._held.items()
                if thread != ident for entry in entries
                if entry.mode == "write"]
        for entry in mine:
            self.note_violation(
                "fork", f"{where}: forking thread holds "
                f"{entry.mode}({self._name(entry.lock_id)}); the "
                f"child would clone a held lock", stack=_stack())
        for entry in other_writes:
            self.note_violation(
                "fork", f"{where}: another thread holds "
                f"write({self._name(entry.lock_id)}) across the "
                f"fork; the child clones mid-mutation state",
                stack=_stack())

    # -- snapshot pinning -----------------------------------------------

    def fingerprint_snapshot(self, snapshot) -> None:
        snapshot._sanitizer_rows = {
            name: (id(table.rows), len(table.rows))
            for name, table in snapshot.tables.items()}

    def verify_snapshot(self, snapshot) -> None:
        expected = getattr(snapshot, "_sanitizer_rows", None)
        if expected is None:
            return
        for name, (rows_id, length) in expected.items():
            table = snapshot.tables.get(name)
            if table is None:
                continue
            if id(table.rows) == rows_id and len(table.rows) != length:
                self.note_violation(
                    "snapshot_mutation",
                    f"table {name!r}: the row list pinned by "
                    f"{snapshot!r} changed length {length} -> "
                    f"{len(table.rows)} in place; writers must "
                    f"replace containers, never mutate them",
                    stack=_stack())

    # -- WAL order ------------------------------------------------------

    def note_wal_append(self, engine, lsn: int) -> None:
        rwlock = getattr(engine, "_rwlock", None)
        if rwlock is not None and \
                getattr(rwlock, "_writer", None) is not \
                threading.current_thread():
            self.note_violation(
                "wal_order",
                f"WAL append of LSN {lsn} outside the writer's "
                f"critical section; append order is only apply order "
                f"while the exclusive lock spans both", stack=_stack())
        last = getattr(engine, "_sanitizer_last_lsn", None)
        if last is not None and lsn != last + 1:
            self.note_violation(
                "wal_order",
                f"WAL LSN jumped {last} -> {lsn}; appends must be "
                f"contiguous within one engine", stack=_stack())
        engine._sanitizer_last_lsn = lsn

    # -- inspection -----------------------------------------------------

    def violations(self) -> list:
        with self._mutex:
            return list(self._violations)

    def drain(self) -> list:
        with self._mutex:
            drained = list(self._violations)
            self._violations.clear()
            return drained

    def held_by_current_thread(self) -> list:
        with self._mutex:
            return [(self._names.get(entry.lock_id, "?"), entry.mode)
                    for entry in
                    self._held.get(threading.get_ident(), ())]


def install() -> SanitizerState:
    """Install a fresh global state (idempotent per call: replaces)."""
    global ACTIVE
    ACTIVE = SanitizerState()
    return ACTIVE


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


def current() -> SanitizerState | None:
    return ACTIVE


@contextmanager
def installed():
    """A fresh state for the duration of a block (tests); restores
    whatever was active before — including None."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = SanitizerState()
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous


def install_from_env() -> SanitizerState | None:
    """Install when ``REPRO_SANITIZE=1`` (called on package import)."""
    if os.environ.get(_ENV_FLAG) == "1" and ACTIVE is None:
        return install()
    return ACTIVE


def violations() -> list:
    return ACTIVE.violations() if ACTIVE is not None else []


def drain() -> list:
    return ACTIVE.drain() if ACTIVE is not None else []
