"""Guard-tick discipline (SA406).

The server's contract — deadlines (57014) and result budgets (54000)
abort a statement *while it runs* — only holds if every loop that
scales with data volume consults the :class:`~repro.xquery.guard.
QueryGuard`.  This pass walks the two executors' row/item loops and
demands each is *dominated* by a ``.tick(`` call: a tick earlier in
the same function (the evaluator's pre-loop ``guard.tick(len(items)
+ 1)`` pattern), or a tick inside the loop body.

Qualifying loops (``for`` statements only; comprehensions are bounded
by an already-guarded producer):

* ``sql/executor.py`` — iteration over ``envs`` / ``group_envs``,
  anything named or attributed ``rows``, ``self._rows_for(...)`` /
  ``self._xmltable_rows(...)``, and ``enumerate(items)``;
* ``xquery/evaluator.py`` — iteration over the bare name ``items``
  (the context sequence) or ``enumerate(items)``; attribute and call
  forms (``expr.items``, ``mapping.items()``) are query-sized.

Loops that are provably bounded by something the caller already
ticked carry ``# sa: ok(SA406)`` pragmas with the reason.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, _dotted
from .diagnostics import SACode, SAFinding

__all__ = ["check_guard_ticks"]

_SQL_NAMES = frozenset({"envs", "group_envs", "rows"})
_SQL_CALLS = frozenset({"_rows_for", "_xmltable_rows"})


def _loop_iter_name(node: ast.For) -> tuple[str | None, bool]:
    """``(canonical name, is_call)`` for what the loop iterates."""
    iter_expr = node.iter
    if (isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id == "enumerate" and iter_expr.args):
        iter_expr = iter_expr.args[0]
    if isinstance(iter_expr, ast.Call):
        dotted = _dotted(iter_expr.func)
        if dotted is not None:
            return dotted.rsplit(".", 1)[-1], True
        return None, True
    dotted = _dotted(iter_expr)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1], isinstance(iter_expr,
                                                     ast.Attribute)
    return None, False


def _qualifies(module: str, name: str | None, is_call: bool) -> bool:
    if name is None:
        return False
    if module == "sql.executor":
        if is_call:
            return name in _SQL_CALLS or name == "rows"
        return name in _SQL_NAMES
    if module == "xquery.evaluator":
        # Only the bare context-sequence name: ``expr.items`` and
        # ``dict.items()`` are query-sized, not data-sized.
        return name == "items" and not is_call
    return False


def _tick_lines(function) -> list:
    return sorted(
        node.lineno for node in ast.walk(function.node)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "tick")


def check_guard_ticks(graph: CallGraph) -> list:
    findings: list = []
    for function in graph.functions.values():
        if function.module not in ("sql.executor", "xquery.evaluator"):
            continue
        ticks = _tick_lines(function)
        if not ticks:
            ticks = []
        for node in ast.walk(function.node):
            if not isinstance(node, ast.For):
                continue
            name, is_call = _loop_iter_name(node)
            if not _qualifies(function.module, name, is_call):
                continue
            end = node.end_lineno or node.lineno
            dominated = any(tick <= end for tick in ticks)
            if dominated:
                continue
            findings.append(SAFinding(
                SACode.GUARD_TICK, function.relpath, node.lineno,
                f"{function.key} iterates {name} without a "
                f"QueryGuard.tick; a deadline or budget cannot "
                f"interrupt this loop"))
    return findings
