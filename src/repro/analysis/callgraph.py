"""A module-level call graph over ``src/repro/`` for the SA passes.

Pure ``ast`` — no imports of the engine itself, so the analyzer can
run on a tree that does not import cleanly.  The graph is deliberately
*under*-approximate: a call is resolved only when the target is
provable from local structure (``self.method`` through the class and
its bases, ``self._attr.method`` through a ``self._attr = Class(...)``
assignment, plain names through module defs and ``import`` statements,
``Class(...)`` to ``__init__``).  Dynamic dispatch (``getattr``,
callables passed as values) stays unresolved, which keeps the
interprocedural passes free of phantom paths at the cost of missing
some real ones — the right trade for a lint that must exit 0 on a
healthy tree.

Lock model
----------

A lock acquisition is a ``with`` item of the shape

* ``with <expr>.read():`` / ``with <expr>.write():`` — reader-writer
  acquisition in the named mode, or
* ``with <expr>:`` where the final attribute looks like a lock
  (``*lock*`` or ``_cond``) — a plain mutex.

Lock *identity* is ``Owner.attr`` where ``Owner`` is the class whose
method bodies assign ``self.attr = …`` (walking base classes, so
``DurableDatabase`` and ``Database`` agree on ``Database._rwlock``).
A non-``self`` expression falls back to the unique owning class when
exactly one class in the package defines the attribute, else to its
dotted source text — coarse, but every lock in this codebase has a
distinct attribute name per owner.

Each function records its direct acquisitions and every call site,
both annotated with the ordered set of locks lexically held at that
point; the passes in :mod:`repro.analysis.locks` & friends propagate
those facts over the resolved edges.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

__all__ = ["CallGraph", "FunctionInfo", "CallSite", "LockOp",
           "build_graph", "Project", "load_project"]

_LOCKISH = ("lock", "_cond")


def _dotted(expr: ast.expr) -> str | None:
    """``a.b.c`` rendered, or None for anything not a name chain."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _looks_like_lock(name: str) -> bool:
    last = name.rsplit(".", 1)[-1]
    return "lock" in last.lower() or last == "_cond"


@dataclass
class LockOp:
    """One lexical lock acquisition inside a function body."""

    lock: str                 # canonical identity, e.g. Database._rwlock
    mode: str                 # "read" | "write" | "lock"
    lineno: int
    held: tuple               # ((lock, mode), ...) held before this one


@dataclass
class CallSite:
    """One call expression and what it could statically resolve to."""

    lineno: int
    text: str                 # rendered callee for messages
    targets: tuple            # resolved FunctionInfo keys (may be empty)
    held: tuple               # ((lock, mode), ...) held at the call


@dataclass
class FunctionInfo:
    key: str                  # "module:Class.method" | "module:func"
    module: str
    path: pathlib.Path
    relpath: str              # repo-relative, for findings
    name: str
    cls: str | None
    node: object              # the ast.FunctionDef / AsyncFunctionDef
    is_async: bool
    lineno: int
    acquires: list = field(default_factory=list)   # [LockOp]
    calls: list = field(default_factory=list)      # [CallSite]


@dataclass
class _ClassInfo:
    name: str
    module: str
    bases: list               # base-class source names
    methods: dict             # name -> FunctionInfo key
    self_attrs: set           # attrs assigned as self.attr = ...
    attr_types: dict          # attr -> class source name from self.a = C()


@dataclass
class _ModuleInfo:
    module: str
    path: pathlib.Path
    tree: ast.Module
    source_lines: list
    functions: dict = field(default_factory=dict)   # name -> key
    classes: dict = field(default_factory=dict)     # name -> _ClassInfo
    imports: dict = field(default_factory=dict)     # name -> dotted module
    imported_names: dict = field(default_factory=dict)  # name -> (mod, attr)


@dataclass
class Project:
    """Parsed sources: the shared input of every pass."""

    root: pathlib.Path              # the package dir (src/repro)
    repo: pathlib.Path              # repo root, for relative paths
    modules: dict = field(default_factory=dict)     # module -> _ModuleInfo

    def relpath(self, path: pathlib.Path) -> str:
        try:
            return str(path.relative_to(self.repo))
        except ValueError:
            return str(path)

    def source_lines(self, relpath: str) -> list:
        for info in self.modules.values():
            if self.relpath(info.path) == relpath:
                return info.source_lines
        return []


def load_project(root: pathlib.Path,
                 files: list[pathlib.Path] | None = None) -> Project:
    root = pathlib.Path(root).resolve()
    repo = root.parent.parent if root.parent.name == "src" else root
    project = Project(root=root, repo=repo)
    paths = (sorted(files) if files is not None
             else sorted(root.rglob("*.py")))
    for path in paths:
        path = pathlib.Path(path).resolve()
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        try:
            relative = path.relative_to(root)
            module = ".".join(relative.with_suffix("").parts)
            if module.endswith("__init__"):
                module = module[: -len(".__init__")] or "__init__"
        except ValueError:
            module = path.stem
        project.modules[module] = _ModuleInfo(
            module=module, path=path, tree=tree,
            source_lines=source.splitlines())
    return project


class CallGraph:
    """Resolved functions, classes and lock facts for one project."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, _ClassInfo] = {}     # "module:Class"
        self._attr_owners: dict[str, list] = {}      # attr -> [_ClassInfo]
        self._index()
        self._analyze_bodies()

    # -- indexing -------------------------------------------------------

    def _index(self) -> None:
        for info in self.project.modules.values():
            self._index_imports(info)
            for node in info.tree.body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    self._add_function(info, node, None)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(info, node)
        for cls in self.classes.values():
            for attr in cls.self_attrs:
                self._attr_owners.setdefault(attr, []).append(cls)

    def _index_imports(self, info: _ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom):
                target = self._resolve_import(info.module, node)
                if target is None:
                    continue
                for alias in node.names:
                    info.imported_names[alias.asname or alias.name] = (
                        target, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports[alias.asname or alias.name] = alias.name

    def _resolve_import(self, module: str,
                        node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            name = node.module or ""
            if name == "repro" or name.startswith("repro."):
                return name[len("repro."):] or ""
            return None
        parts = module.split(".")
        # level 1 = this module's package, 2 = its parent, ...
        base = parts[: len(parts) - node.level] if len(parts) >= \
            node.level else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def _index_class(self, info: _ModuleInfo, node: ast.ClassDef) -> None:
        cls = _ClassInfo(
            name=node.name, module=info.module,
            bases=[rendered for base in node.bases
                   if (rendered := _dotted(base)) is not None],
            methods={}, self_attrs=set(), attr_types={})
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                function = self._add_function(info, item, node.name)
                cls.methods[item.name] = function.key
                self._collect_self_attrs(item, cls)
        info.classes[node.name] = cls
        self.classes[f"{info.module}:{node.name}"] = cls

    def _collect_self_attrs(self, method, cls: _ClassInfo) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.self_attrs.add(target.attr)
                    if (isinstance(node.value, ast.Call)
                            and (callee := _dotted(node.value.func))
                            is not None):
                        leaf = callee.rsplit(".", 1)[-1]
                        if leaf[:1].isupper():
                            cls.attr_types[target.attr] = leaf

    def _add_function(self, info: _ModuleInfo, node,
                      cls: str | None) -> FunctionInfo:
        name = f"{cls}.{node.name}" if cls else node.name
        key = f"{info.module}:{name}"
        function = FunctionInfo(
            key=key, module=info.module, path=info.path,
            relpath=self.project.relpath(info.path),
            name=node.name, cls=cls, node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            lineno=node.lineno)
        self.functions[key] = function
        if cls is None:
            info.functions[node.name] = key
        return function

    # -- class / lock resolution ----------------------------------------

    def _class_by_name(self, module: str, name: str) -> _ClassInfo | None:
        info = self.project.modules.get(module)
        if info is not None:
            if name in info.classes:
                return info.classes[name]
            if name in info.imported_names:
                target_module, attr = info.imported_names[name]
                target = self.project.modules.get(target_module)
                if target is not None and attr in target.classes:
                    return target.classes[attr]
        for cls in self.classes.values():
            if cls.name == name:
                return cls
        return None

    def _mro(self, cls: _ClassInfo) -> list:
        """The class plus resolvable bases, nearest first."""
        out, queue, seen = [], [cls], set()
        while queue:
            current = queue.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            out.append(current)
            for base in current.bases:
                resolved = self._class_by_name(current.module,
                                               base.rsplit(".", 1)[-1])
                if resolved is not None:
                    queue.append(resolved)
        return out

    def _lock_owner(self, cls: _ClassInfo | None, attr: str) -> str | None:
        if cls is not None:
            for candidate in reversed(self._mro(cls)):
                if attr in candidate.self_attrs:
                    return candidate.name
            return cls.name
        owners = self._attr_owners.get(attr, [])
        roots = {self._lock_owner(owner, attr) for owner in owners}
        if len(roots) == 1:
            return roots.pop()
        return None

    def lock_identity(self, dotted: str, module: str,
                      cls_name: str | None) -> str:
        attr = dotted.rsplit(".", 1)[-1]
        if dotted.startswith("self.") and dotted.count(".") == 1:
            cls = (self._class_by_name(module, cls_name)
                   if cls_name else None)
            owner = self._lock_owner(cls, attr)
            if owner:
                return f"{owner}.{attr}"
        else:
            owner = self._lock_owner(None, attr)
            if owner:
                return f"{owner}.{attr}"
        return dotted

    # -- body analysis --------------------------------------------------

    def _analyze_bodies(self) -> None:
        for function in self.functions.values():
            self._walk_body(function)

    def _lock_in_with_item(self, item: ast.withitem, function
                           ) -> tuple[str, str] | None:
        expr = item.context_expr
        if (isinstance(expr, ast.Call) and not expr.args
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("read", "write")):
            base = _dotted(expr.func.value)
            if base is not None and _looks_like_lock(base):
                return (self.lock_identity(base, function.module,
                                           function.cls),
                        expr.func.attr)
        dotted = _dotted(expr)
        if dotted is not None and _looks_like_lock(dotted):
            return (self.lock_identity(dotted, function.module,
                                       function.cls), "lock")
        return None

    def _walk_body(self, function: FunctionInfo) -> None:
        def visit(node, held: tuple) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return  # nested defs execute later, not here
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = held
                for item in node.items:
                    lock = self._lock_in_with_item(item, function)
                    if lock is not None:
                        function.acquires.append(LockOp(
                            lock=lock[0], mode=lock[1],
                            lineno=node.lineno, held=inner))
                        inner = inner + (lock,)
                    else:
                        visit(item.context_expr, held)
                for child in node.body:
                    visit(child, inner)
                return
            if isinstance(node, ast.Call):
                self._record_call(function, node, held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for child in function.node.body:
            visit(child, ())

    def _record_call(self, function: FunctionInfo, node: ast.Call,
                     held: tuple) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if (dotted.endswith((".read", ".write"))
                and _looks_like_lock(dotted.rsplit(".", 1)[0])):
            return  # modeled as a lock acquisition, not a call
        targets = tuple(self.resolve_call(function, dotted))
        function.calls.append(CallSite(
            lineno=node.lineno, text=dotted, targets=targets, held=held))

    def resolve_call(self, function: FunctionInfo, dotted: str) -> list:
        """FunctionInfo keys ``dotted`` could reach from ``function``."""
        info = self.project.modules.get(function.module)
        if info is None:
            return []
        parts = dotted.split(".")
        if parts[0] == "self" and function.cls is not None:
            cls = self._class_by_name(function.module, function.cls)
            if cls is None:
                return []
            if len(parts) == 2:
                return self._method_key(cls, parts[1])
            if len(parts) == 3:
                type_name = None
                for candidate in self._mro(cls):
                    if parts[1] in candidate.attr_types:
                        type_name = candidate.attr_types[parts[1]]
                        break
                if type_name is None:
                    return []
                target = self._class_by_name(function.module, type_name)
                if target is None:
                    return []
                return self._method_key(target, parts[2])
            return []
        if len(parts) == 1:
            name = parts[0]
            if name in info.functions:
                return [info.functions[name]]
            if name in info.classes:
                return self._method_key(info.classes[name], "__init__")
            if name in info.imported_names:
                module, attr = info.imported_names[name]
                target = self.project.modules.get(module)
                if target is None:
                    return []
                if attr in target.functions:
                    return [target.functions[attr]]
                if attr in target.classes:
                    return self._method_key(target.classes[attr],
                                            "__init__")
            return []
        if len(parts) == 2 and parts[0] in info.imported_names:
            module, attr = info.imported_names[parts[0]]
            submodule = self.project.modules.get(
                f"{module}.{attr}" if attr else module)
            if submodule is not None and parts[1] in submodule.functions:
                return [submodule.functions[parts[1]]]
        return []

    def _method_key(self, cls: _ClassInfo, method: str) -> list:
        for candidate in self._mro(cls):
            if method in candidate.methods:
                return [candidate.methods[method]]
        return []

    def callers_of(self, key: str) -> list:
        """``(caller FunctionInfo, CallSite)`` pairs that reach key."""
        out = []
        for function in self.functions.values():
            for call in function.calls:
                if key in call.targets:
                    out.append((function, call))
        return out


def build_graph(project: Project) -> CallGraph:
    return CallGraph(project)
