"""The repo's own concurrency sanitizer: static passes + runtime mode.

Two halves, one vocabulary of ``SA4xx`` reason codes
(:mod:`repro.analysis.diagnostics`):

* **Static** — ``repro check`` (:mod:`repro.analysis.runner`) builds a
  call graph over the package (:mod:`repro.analysis.callgraph`) and
  runs interprocedural lock-order/upgrade analysis
  (:mod:`repro.analysis.locks`), blocking-under-lock and
  blocking-in-coroutine detection (:mod:`repro.analysis.blocking`),
  fork-safety (:mod:`repro.analysis.forksafety`), guard-tick
  discipline (:mod:`repro.analysis.guardticks`) and the four migrated
  lexical rules (:mod:`repro.analysis.lexical`).
* **Dynamic** — ``REPRO_SANITIZE=1``
  (:mod:`repro.analysis.sanitizer`) instruments the RWLock with a
  global lock-order graph (cycles reported at acquire time with both
  stacks), asserts no lock is held across fork, detects mutation
  through pinned snapshots, and verifies WAL append order equals
  apply order.

This ``__init__`` stays import-light: the heavy static machinery
loads only when ``run_checks`` / ``main`` are first touched, so the
sanitizer hooks in the lock hot path cost nothing extra at import.
"""

from __future__ import annotations

from . import sanitizer

__all__ = ["sanitizer", "run_checks", "main", "SACode", "SAFinding"]


def __getattr__(name: str):
    if name in ("run_checks", "main"):
        from . import runner
        return getattr(runner, name)
    if name in ("SACode", "SAFinding"):
        from . import diagnostics
        return getattr(diagnostics, name)
    raise AttributeError(
        f"module 'repro.analysis' has no attribute {name!r}")
