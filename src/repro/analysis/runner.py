"""Orchestration for ``repro check``: parse once, run every pass.

``run_checks`` loads the package sources into one :class:`Project`,
builds the call graph, runs the four interprocedural passes plus the
migrated lexical rules, drops findings silenced by ``# sa: ok(SA4xx)``
pragmas, and returns the rest sorted by location.  ``main`` is the
process entry point shared by the CLI subcommand and the
``scripts/lint_repo.py`` shim: prints findings (text or JSON), exits
1 when any remain.
"""

from __future__ import annotations

import json
import pathlib
import sys

from .blocking import check_blocking
from .callgraph import build_graph, load_project
from .diagnostics import suppressed
from .forksafety import check_fork_safety
from .guardticks import check_guard_ticks
from .lexical import check_lexical_rules
from .locks import check_lock_order

__all__ = ["run_checks", "main"]

#: The package directory this module ships in — the default target.
PACKAGE_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_checks(root: pathlib.Path | str | None = None,
               files: list | None = None) -> list:
    """Every SA finding on ``root`` (default: the installed package)."""
    project = load_project(
        pathlib.Path(root) if root is not None else PACKAGE_ROOT,
        files=files)
    graph = build_graph(project)
    findings = []
    findings.extend(check_lock_order(graph))
    findings.extend(check_blocking(graph))
    findings.extend(check_fork_safety(graph))
    findings.extend(check_guard_ticks(graph))
    findings.extend(check_lexical_rules(project))
    kept = []
    for finding in findings:
        lines = project.source_lines(finding.path)
        if lines and suppressed(lines, finding.line, finding.code):
            continue
        if finding.suppress_at is not None:
            other = project.source_lines(finding.suppress_at[0])
            if other and suppressed(other, finding.suppress_at[1],
                                    finding.code):
                continue
        kept.append(finding)
    kept.sort(key=lambda finding: (finding.path, finding.line,
                                   finding.code.code))
    return kept


def main(argv: list | None = None, out=sys.stdout) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    as_json = "--json" in arguments
    paths = [pathlib.Path(argument) for argument in arguments
             if argument != "--json"]
    findings = run_checks(files=[path.resolve() for path in paths]
                          or None)
    if as_json:
        print(json.dumps([finding.to_dict() for finding in findings],
                         indent=2), file=out)
    else:
        for finding in findings:
            print(finding, file=out)
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not as_json:
        file_count = len(load_project(PACKAGE_ROOT).modules)
        print(f"repro check: {file_count} files clean", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
