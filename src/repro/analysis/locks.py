"""Interprocedural lock-order and upgrade analysis (SA401, SA402).

Every function's *effective* acquisition set — the locks it may take
directly or through any resolvable callee — is computed by a fixpoint
over the call graph.  Order edges are then recorded wherever a lock is
acquired (lexically, or by a callee) while another is already held;
an edge pair ``A→B`` and ``B→A`` between distinct locks is a potential
deadlock (SA401), and an edge ``read(L)→write(L)`` is the upgrade the
RWLock refuses at run time (SA402).

Reentrancy follows the engine's own rules: holding ``write(L)``
permits any re-acquisition of ``L``, and ``read(L)→read(L)`` is the
legal shared re-entry — neither produces an edge.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .diagnostics import SACode, SAFinding

__all__ = ["check_lock_order", "effective_acquires"]


def effective_acquires(graph: CallGraph) -> dict:
    """``key -> {(lock, mode)}`` reachable acquisitions per function."""
    effects = {key: {(op.lock, op.mode) for op in function.acquires}
               for key, function in graph.functions.items()}
    changed = True
    while changed:
        changed = False
        for key, function in graph.functions.items():
            current = effects[key]
            before = len(current)
            for call in function.calls:
                for target in call.targets:
                    current |= effects.get(target, set())
            if len(current) != before:
                changed = True
    return effects


class _Edge:
    __slots__ = ("path", "line", "text")

    def __init__(self, path: str, line: int, text: str):
        self.path = path
        self.line = line
        self.text = text


def _record(edges: dict, findings: list, seen_upgrades: set,
            held: tuple, lock: str, mode: str,
            function, lineno: int, via: str | None) -> None:
    for held_lock, held_mode in held:
        if held_lock == lock:
            if held_mode == "write" or mode in ("read", "lock") or \
                    held_mode == "lock":
                continue  # legal re-entry (or plain-mutex recursion)
            site = (function.relpath, lineno)
            if site in seen_upgrades:
                continue
            seen_upgrades.add(site)
            suffix = f" via {via}" if via else ""
            findings.append(SAFinding(
                SACode.LOCK_UPGRADE, function.relpath, lineno,
                f"{function.key} acquires write({lock}){suffix} while "
                f"holding read({lock}); RWLock raises on upgrade"))
            continue
        pair = (held_lock, lock)
        if pair not in edges:
            suffix = f" via {via}" if via else ""
            edges[pair] = _Edge(
                function.relpath, lineno,
                f"{function.key} holds {held_mode}({held_lock}) and "
                f"acquires {mode}({lock}){suffix}")


def check_lock_order(graph: CallGraph) -> list:
    effects = effective_acquires(graph)
    edges: dict = {}
    findings: list = []
    seen_upgrades: set = set()
    for function in graph.functions.values():
        for op in function.acquires:
            _record(edges, findings, seen_upgrades, op.held,
                    op.lock, op.mode, function, op.lineno, None)
        for call in function.calls:
            if not call.held:
                continue
            for target in call.targets:
                for lock, mode in sorted(effects.get(target, ())):
                    _record(edges, findings, seen_upgrades, call.held,
                            lock, mode, function, call.lineno,
                            call.text)
    reported: set = set()
    for (first, second), edge in sorted(edges.items()):
        if (second, first) not in edges:
            continue
        pair = frozenset((first, second))
        if pair in reported:
            continue
        reported.add(pair)
        other = edges[(second, first)]
        findings.append(SAFinding(
            SACode.LOCK_ORDER, edge.path, edge.line,
            f"lock-order inversion between {first} and {second}: "
            f"{edge.text}",
            related=f"{other.path}:{other.line}: {other.text}"))
    return findings
