"""Fork-safety analysis (SA405).

``multiprocessing`` with the ``fork`` start method clones the whole
address space: a lock some parent thread holds mid-acquisition is
cloned *held forever* in the child, and an open file descriptor is
cloned mid-write.  This pass finds every ``x.start()`` where ``x`` was
bound from a ``…Process(...)`` call in the same function, and flags
the site when

* a lock is lexically held there (the ``with`` stack), or
* a lock is held at any resolvable call site of the enclosing
  function, propagated transitively (the pool's ``_spawn_workers``
  pattern: the constructor must release the read lock *before*
  spawning — exactly what it does, and exactly what this proves), or
* the site sits inside a ``with open(...)`` block.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, _dotted
from .diagnostics import SACode, SAFinding

__all__ = ["check_fork_safety"]


def _entry_held(graph: CallGraph) -> dict:
    """key -> {(lock, mode)} held by some caller when key is entered."""
    entry = {key: set() for key in graph.functions}
    changed = True
    while changed:
        changed = False
        for function in graph.functions.values():
            inherited = entry[function.key]
            for call in function.calls:
                for target in call.targets:
                    if target not in entry:
                        continue
                    incoming = set(call.held) | inherited
                    if not incoming <= entry[target]:
                        entry[target] |= incoming
                        changed = True
    return entry


def _process_vars(function) -> set:
    """Local names bound from a ``…Process(...)`` constructor call."""
    names = set()
    for node in ast.walk(function.node):
        if not (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)):
            continue
        dotted = _dotted(node.value.func)
        if dotted is None or \
                dotted.rsplit(".", 1)[-1] != "Process":
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _open_blocks(function) -> list:
    """(start, end) line ranges of ``with open(...)`` blocks."""
    ranges = []
    for node in ast.walk(function.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Name)
                    and expr.func.id == "open"):
                ranges.append((node.lineno,
                               node.end_lineno or node.lineno))
    return ranges


def check_fork_safety(graph: CallGraph) -> list:
    entry = _entry_held(graph)
    findings: list = []
    for function in graph.functions.values():
        process_vars = _process_vars(function)
        if not process_vars:
            continue
        open_ranges = _open_blocks(function)
        starts = []
        for node in ast.walk(function.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "start"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in process_vars):
                starts.append(node.lineno)
        if not starts:
            continue
        lexical = {call.lineno: call.held for call in function.calls
                   if call.held}
        inherited = entry.get(function.key, set())
        for lineno in starts:
            held = set(lexical.get(lineno, ())) | inherited
            if held:
                locks = ", ".join(sorted(
                    f"{mode}({lock})" for lock, mode in held))
                findings.append(SAFinding(
                    SACode.FORK_WITH_STATE, function.relpath, lineno,
                    f"{function.key} forks a Process while {locks} "
                    f"is held; the child clones the held lock"))
                continue
            for start, end in open_ranges:
                if start <= lineno <= end:
                    findings.append(SAFinding(
                        SACode.FORK_WITH_STATE, function.relpath,
                        lineno,
                        f"{function.key} forks a Process inside a "
                        f"'with open(...)' block; the child inherits "
                        f"the open descriptor"))
                    break
    return findings
