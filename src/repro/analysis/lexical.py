"""The four original self-lint rules, migrated (SA407–SA410).

Logic is unchanged from the ``scripts/lint_repo.py`` originals — the
rules were battle-tested over PRs 4–8 — but they now emit reason-coded
:class:`~repro.analysis.diagnostics.SAFinding` objects through the
same runner, pragma machinery and CLI as the interprocedural passes.

* **SA407 lock discipline** (``storage/catalog.py``): in a class that
  owns ``self._rwlock``, attribute mutations and ``Table`` mutator
  calls outside ``__init__`` must sit inside
  ``with self._rwlock.write():``.
* **SA408 exception hygiene** (everywhere): no bare ``except:`` / no
  ``except Exception:`` unless the handler re-raises or carries the
  (legacy) ``# lint: broad-except-ok`` pragma.
* **SA409 obs gating** (everywhere but ``obs/``): ``METRICS.inc`` /
  ``METRICS.observe`` must be inside ``if METRICS.enabled:``.
* **SA410 fsync discipline** (``durability/`` except ``fsio.py``): no
  builtin ``open()``, no ``os.*`` / ``shutil.*``, no pathlib I/O
  methods — those live only in ``fsio.py``.
"""

from __future__ import annotations

import ast

from .callgraph import Project
from .diagnostics import SACode, SAFinding

__all__ = ["check_lexical_rules"]

_TABLE_MUTATORS = frozenset({"new_row", "remove_row"})
_RAW_IO_MODULES = frozenset({"os", "shutil"})
_PATHLIB_IO_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
    "rename", "replace", "unlink", "touch", "rmdir", "mkdir"})


def check_lexical_rules(project: Project) -> list:
    findings: list = []
    for info in project.modules.values():
        relpath = project.relpath(info.path)
        parts = info.path.parts
        findings.extend(_broad_excepts(relpath, info.tree))
        if info.path.name == "catalog.py":
            findings.extend(_lock_discipline(relpath, info.tree))
        if "obs" not in parts:
            findings.extend(_metrics_gating(relpath, info.tree))
        if "durability" in parts and info.path.name != "fsio.py":
            findings.extend(_fsync_discipline(relpath, info.tree))
    return findings


# -- SA407: catalog mutations only under the write lock ----------------


def _is_write_lock_with(node: ast.With) -> bool:
    for item in node.items:
        call = item.context_expr
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "write"
                and isinstance(call.func.value, ast.Attribute)
                and call.func.value.attr == "_rwlock"):
            return True
    return False


def _owns_rwlock(class_node: ast.ClassDef) -> bool:
    return any(
        isinstance(node, ast.Assign)
        and any(isinstance(target, ast.Attribute)
                and target.attr == "_rwlock"
                for target in node.targets)
        for node in ast.walk(class_node))


def _lock_discipline(relpath: str, tree: ast.Module) -> list:
    findings: list = []
    for class_node in (node for node in tree.body
                       if isinstance(node, ast.ClassDef)):
        if not _owns_rwlock(class_node):
            continue
        for method in (node for node in class_node.body
                       if isinstance(node, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))):
            if method.name in ("__init__", "__post_init__"):
                continue
            _check_method(relpath, method, findings)
    return findings


def _check_method(relpath: str, method, findings: list) -> None:
    def visit(node, locked: bool) -> None:
        if isinstance(node, ast.With) and _is_write_lock_with(node):
            locked = True
        if not locked:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr != "_rwlock"):
                        findings.append(SAFinding(
                            SACode.LOCK_DISCIPLINE, relpath,
                            node.lineno,
                            f"self.{target.attr} mutated in "
                            f"{method.name}() outside "
                            f"'with self._rwlock.write()'"))
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _TABLE_MUTATORS):
                findings.append(SAFinding(
                    SACode.LOCK_DISCIPLINE, relpath, node.lineno,
                    f"table mutator .{node.func.attr}() called in "
                    f"{method.name}() outside "
                    f"'with self._rwlock.write()'"))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for child in ast.iter_child_nodes(method):
        visit(child, False)


# -- SA408: no unexcused broad excepts ---------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return (isinstance(handler.type, ast.Name)
            and handler.type.id in ("Exception", "BaseException"))


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) and node.exc is None
               for node in ast.walk(handler))


def _broad_excepts(relpath: str, tree: ast.Module) -> list:
    findings: list = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or \
                not _is_broad(node):
            continue
        if _reraises(node):
            continue
        what = ("bare except:" if node.type is None
                else f"except {node.type.id}:")
        findings.append(SAFinding(
            SACode.BROAD_EXCEPT, relpath, node.lineno,
            f"{what} swallows engine errors; catch ReproError (or a "
            f"subclass), re-raise, or annotate "
            f"'# lint: broad-except-ok (reason)'"))
    return findings


# -- SA409: METRICS calls stay behind the enabled guard ----------------


def _mentions_metrics_enabled(test: ast.expr) -> bool:
    return any(
        isinstance(node, ast.Attribute) and node.attr == "enabled"
        and isinstance(node.value, ast.Name)
        and node.value.id == "METRICS"
        for node in ast.walk(test))


def _metrics_gating(relpath: str, tree: ast.Module) -> list:
    findings: list = []

    def visit(node, guarded: bool) -> None:
        if isinstance(node, ast.If) and \
                _mentions_metrics_enabled(node.test):
            for child in node.body:
                visit(child, True)
            for child in node.orelse:
                visit(child, guarded)
            return
        if (not guarded and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("inc", "observe")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "METRICS"):
            findings.append(SAFinding(
                SACode.METRICS_GATING, relpath, node.lineno,
                f"METRICS.{node.func.attr}() outside an "
                f"'if METRICS.enabled:' guard: the disabled path "
                f"pays for bookkeeping"))
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    for child in tree.body:
        visit(child, False)
    return findings


# -- SA410: raw file primitives only inside durability/fsio.py ---------


def _fsync_discipline(relpath: str, tree: ast.Module) -> list:
    findings: list = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            findings.append(SAFinding(
                SACode.FSYNC_DISCIPLINE, relpath, node.lineno,
                "builtin open() in durability code; all file I/O "
                "goes through durability/fsio.py, where the "
                "write→fsync→rename protocol and fault points live"))
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in _RAW_IO_MODULES):
                findings.append(SAFinding(
                    SACode.FSYNC_DISCIPLINE, relpath, node.lineno,
                    f"{func.value.id}.{func.attr}() bypasses the "
                    f"fsync discipline; use the durability/fsio.py "
                    f"helper"))
            elif (func.attr in _PATHLIB_IO_METHODS
                    and not (isinstance(func.value, ast.Name)
                             and func.value.id == "fsio")):
                findings.append(SAFinding(
                    SACode.FSYNC_DISCIPLINE, relpath, node.lineno,
                    f".{func.attr}() on a path bypasses the fsync "
                    f"discipline; use the durability/fsio.py helper"))
    return findings
