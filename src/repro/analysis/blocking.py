"""Blocking-call reachability (SA403, SA404).

SA403: a blocking primitive — fsync, socket/pipe traffic, ``join``,
``sleep``, ``select`` — reachable (directly or through resolvable
callees) while a **write** lock is held stalls every reader and writer
behind the exclusive section.  Some such sections are the design
(group-commit fsync happens inside the writer section on purpose);
those carry ``# sa: ok(SA403)`` pragmas at the call site.

SA404: the same primitives called *synchronously* inside an
``async def`` coroutine under ``server/`` stall the event loop for
every connection.  Passing a blocking callable to ``run_in_executor``
is the sanctioned escape — that is a reference, not a call, so it does
not trip the pass.
"""

from __future__ import annotations

import ast

from .callgraph import CallGraph, _dotted
from .diagnostics import SACode, SAFinding

__all__ = ["check_blocking"]

#: Final attribute / plain names that block the calling thread.
_BLOCKING_LEAVES = frozenset({
    "fsync", "fdatasync", "sendall", "send", "send_bytes", "recv",
    "recv_bytes", "accept", "connect", "join", "sleep", "select",
    "poll", "wait"})

#: Leaves only blocking with an explicit prefix (``time.sleep`` yes,
#: ``foo.sleep`` also yes; bare ``sleep()`` resolved locally is not
#: a stdlib block).
_ASYNC_BLOCKING_LEAVES = _BLOCKING_LEAVES | {"shutdown", "result"}


def _direct_blocking(function) -> list:
    """``(lineno, text)`` for lexically blocking calls in a body."""
    out = []
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in _BLOCKING_LEAVES and "." in dotted \
                and not dotted.endswith("path.join"):
            out.append((node.lineno, dotted))
    return out


def _effective_blocking(graph: CallGraph) -> dict:
    """key -> {(text, origin_key)} blocking ops reachable from key."""
    effects = {key: {(text, key) for _line, text
                     in _direct_blocking(function)}
               for key, function in graph.functions.items()}
    changed = True
    while changed:
        changed = False
        for key, function in graph.functions.items():
            current = effects[key]
            before = len(current)
            for call in function.calls:
                for target in call.targets:
                    current |= effects.get(target, set())
            if len(current) != before:
                changed = True
    return effects


def _write_held(held: tuple) -> str | None:
    for lock, mode in held:
        if mode == "write":
            return lock
    return None


def check_blocking(graph: CallGraph) -> list:
    effects = _effective_blocking(graph)
    findings: list = []
    for function in graph.functions.values():
        blocking_lines = dict(
            (line, text) for line, text in _direct_blocking(function))
        # Direct blocking calls under a lexically held write lock: the
        # held set is per call site, recorded by the graph walk.
        for call in function.calls:
            lock = _write_held(call.held)
            if lock is None:
                continue
            if call.lineno in blocking_lines and \
                    blocking_lines[call.lineno] == call.text:
                findings.append(SAFinding(
                    SACode.BLOCKING_UNDER_LOCK, function.relpath,
                    call.lineno,
                    f"{function.key} calls blocking {call.text}() while "
                    f"holding write({lock})"))
                continue
            for target in call.targets:
                reachable = effects.get(target, set())
                if reachable:
                    text, origin = sorted(reachable)[0]
                    callee = graph.functions.get(target)
                    findings.append(SAFinding(
                        SACode.BLOCKING_UNDER_LOCK, function.relpath,
                        call.lineno,
                        f"{function.key} holds write({lock}) and calls "
                        f"{call.text}(), which reaches blocking "
                        f"{text}() (in {origin})",
                        suppress_at=((callee.relpath, callee.lineno)
                                     if callee is not None else None)))
                    break
    findings.extend(_check_async(graph, effects))
    return findings


def _check_async(graph: CallGraph, effects: dict) -> list:
    findings: list = []
    for function in graph.functions.values():
        if not function.is_async or \
                not function.module.startswith("server"):
            continue
        awaited = {id(node.value) for node in ast.walk(function.node)
                   if isinstance(node, ast.Await)}
        # Calls inside a nested lambda/def are a callable being handed
        # somewhere (typically run_in_executor) — not loop-side work.
        deferred: set = set()
        for node in ast.walk(function.node):
            if isinstance(node, (ast.Lambda, ast.FunctionDef,
                                 ast.AsyncFunctionDef)) \
                    and node is not function.node:
                deferred |= {id(inner) for inner in ast.walk(node)}
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call) or id(node) in awaited \
                    or id(node) in deferred:
                continue
            dotted = _dotted(node.func)
            if dotted is None or "." not in dotted:
                continue
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf not in _ASYNC_BLOCKING_LEAVES:
                continue
            if leaf == "shutdown" and not any(
                    keyword.arg == "wait"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords):
                continue
            findings.append(SAFinding(
                SACode.BLOCKING_IN_ASYNC, function.relpath, node.lineno,
                f"async {function.key} calls blocking {dotted}() on "
                f"the event loop; dispatch it via run_in_executor"))
        for call in function.calls:
            for target in call.targets:
                callee = graph.functions.get(target)
                if callee is None or callee.is_async:
                    continue
                reachable = effects.get(target, set())
                if reachable:
                    text, origin = sorted(reachable)[0]
                    findings.append(SAFinding(
                        SACode.BLOCKING_IN_ASYNC, function.relpath,
                        call.lineno,
                        f"async {function.key} calls {call.text}(), "
                        f"which reaches blocking {text}() "
                        f"(in {origin}); dispatch via run_in_executor",
                        suppress_at=(callee.relpath, callee.lineno)))
                    break
    return findings
