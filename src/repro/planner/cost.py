"""Cost model: estimated selectivity of index probes.

The paper's companion work (Balmin et al., "Cost-based optimization in
DB2 XML", IBM Systems Journal 2006 — reference [2]) makes index choice
cost-based: an eligible index is only *used* when the probe is expected
to prune enough of the collection to pay for itself.  This module
provides that estimate:

* each XML index lazily maintains an equi-depth histogram over its
  keys plus a distinct-document count;
* :meth:`CostModel.probe_fraction` estimates the fraction of documents
  a range probe would keep;
* the planner (opt-in via ``cost_based=True``) skips probes whose
  estimated surviving fraction exceeds ``prefilter_threshold`` — a
  barely-selective prefilter costs an index scan and saves almost no
  document processing.

The default execution mode remains rule-based (every eligible index is
used) because that is the behaviour the paper's eligibility claims are
stated — and tested — against.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


class KeyHistogram:
    """Equi-depth histogram over a B+Tree's keys.

    Rebuilt lazily from the leaf chain when marked stale; queries cost
    O(log buckets).
    """

    def __init__(self, tree, buckets: int = 64):
        self.tree = tree
        self.buckets = buckets
        self._boundaries: list = []
        self._total = 0
        self._built_at = -1

    def _rebuild(self) -> None:
        keys = list(self.tree.keys())
        self._total = len(keys)
        if not keys:
            self._boundaries = []
        else:
            step = max(1, len(keys) // self.buckets)
            self._boundaries = keys[::step]
            if self._boundaries[-1] != keys[-1]:
                self._boundaries.append(keys[-1])
        self._built_at = len(self.tree)

    def _ensure_fresh(self) -> None:
        # Rebuild when the tree has grown/shrunk by more than 25 %.
        current = len(self.tree)
        if self._built_at < 0 or self._built_at == 0 or \
                abs(current - self._built_at) > max(8, self._built_at // 4):
            self._rebuild()

    def range_fraction(self, low, high) -> float:
        """Estimated fraction of keys in [low, high] (None = open)."""
        self._ensure_fresh()
        if not self._boundaries or self._total == 0:
            return 0.0
        buckets = len(self._boundaries)
        try:
            low_position = (bisect.bisect_left(self._boundaries, low)
                            if low is not None else 0)
            high_position = (bisect.bisect_right(self._boundaries, high)
                             if high is not None else buckets)
        except TypeError:
            return 1.0  # incomparable key types: assume everything
        width = max(0, high_position - low_position)
        return min(1.0, width / buckets)


@dataclass
class ProbeEstimate:
    """What the cost model thinks one probe will do."""

    key_fraction: float          # fraction of index entries in range
    docs_fraction: float         # fraction of table docs kept (approx)
    worthwhile: bool
    note: str = ""


@dataclass
class CostModel:
    """Selectivity-threshold cost model for prefilter decisions."""

    #: Skip a probe expected to keep more than this fraction of docs.
    prefilter_threshold: float = 0.9
    #: Optional feedback calibration (an object with a ``factor``
    #: attribute — see :class:`repro.autopilot.calibrate.CostCalibration`).
    #: EXPLAIN ANALYZE q-errors drive ``factor`` toward the value that
    #: would have made past estimates exact; ``None`` means the
    #: uncalibrated model (factor 1.0).
    calibration: object | None = None
    #: Cache of histograms keyed by index object id.
    _histograms: dict = field(default_factory=dict)

    @property
    def calibration_factor(self) -> float:
        factor = getattr(self.calibration, "factor", 1.0)
        # A corrupt persisted factor must never zero out or explode the
        # estimate; the calibration store clamps too, this is the belt.
        return min(10.0, max(0.1, float(factor)))

    def histogram_for(self, index) -> KeyHistogram:
        histogram = self._histograms.get(id(index))
        if histogram is None:
            histogram = KeyHistogram(index.tree)
            self._histograms[id(index)] = histogram
        return histogram

    def estimate_probe(self, index, low, high, total_docs: int,
                       docs_with_path: int | None = None
                       ) -> ProbeEstimate:
        """Estimate a range probe against ``index``.

        ``docs_fraction`` is approximated as: (docs present in the
        index / table docs) × (key fraction in range), i.e. assuming
        entries spread evenly over documents — the standard
        independence assumption.

        ``docs_with_path`` — the number of documents whose path summary
        contains the *query's* path (see
        :meth:`repro.storage.catalog.Database.docs_with_path`) — caps
        the structural coverage: a document without the path cannot
        survive the probe, however wide the key range.
        """
        if total_docs <= 0:
            return ProbeEstimate(0.0, 0.0, True, "empty table")
        key_fraction = self.histogram_for(index).range_fraction(low, high)
        docs_in_index = index.distinct_doc_count()
        coverage = min(1.0, docs_in_index / total_docs)
        summary_note = ""
        if docs_with_path is not None:
            path_coverage = min(1.0, docs_with_path / total_docs)
            if path_coverage < coverage:
                coverage = path_coverage
                summary_note = (f", path summary caps coverage at "
                                f"{path_coverage:.2f}")
        # The entries-per-document factor widens the estimate when
        # documents hold several entries, but survivors are still a
        # subset of the covered documents — never exceed ``coverage``.
        # The calibration factor folds EXPLAIN ANALYZE feedback into
        # the independence-assumption part of the estimate only; the
        # structural ``coverage`` cap is exact and stays uncalibrated.
        factor = self.calibration_factor
        docs_fraction = min(1.0, coverage,
                            coverage * key_fraction * factor *
                            max(1.0, len(index) / max(1, docs_in_index)))
        worthwhile = docs_fraction <= self.prefilter_threshold
        calibration_note = (f", calibration x{factor:.2f}"
                            if factor != 1.0 else "")
        note = (f"estimated surviving fraction "
                f"{docs_fraction:.2f} "
                f"({'use' if worthwhile else 'skip'} probe, "
                f"threshold {self.prefilter_threshold}{summary_note}"
                f"{calibration_note})")
        return ProbeEstimate(key_fraction, docs_fraction, worthwhile,
                             note)
