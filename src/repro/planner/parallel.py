"""Partition-parallel XQuery execution: fan one query across document
partitions.

The serving-layer counterpart of the paper's collection model: a
``db2-fn:xmlcolumn`` query touches many independent documents, so a
descendant-heavy or multi-document query can be split by document —
each worker evaluates the *same* compiled query over a disjoint slice
of the column and the orchestrator concatenates the slices in document
order.  This mirrors the path/document partitioning surveyed for
RadegastXDB and Sedna-style engines, scaled down to a thread pool.

Soundness gate (:func:`partition_reference`) — a query is partitioned
only when splitting provably cannot change its answer:

* exactly one ``db2-fn:xmlcolumn`` call, with a literal reference, and
  no ``db2-fn:sqlquery`` anywhere (including prolog functions) — a
  nested SQL call would need database re-entry from worker threads;
* the body is that call, a relative path rooted at it (no predicates
  on the call step itself — those would filter the *global* document
  sequence), or a FLWOR whose first clause is a plain ``for`` (no
  position variable) over such a path;
* no ``order by`` in the top FLWOR — its sort is over the whole
  binding stream.

Everything per-binding (where clauses, nested FLWORs, constructors)
distributes over concatenation; per-step predicates apply within one
context node and never cross documents.  Anything else falls back to
the serial path, counted in ``parallel.serial_fallbacks`` and broken
down by cause in ``parallel.fallback_reason.<reason>`` (see
:data:`FALLBACK_REASONS`); both the thread backend here and the
process backend (:mod:`repro.parallel.pool`) record through the same
:func:`record_fallback` helper so dashboards see one taxonomy.

Execution: the orchestrator takes the database read lock ONCE for the
whole fan-out, captures a :class:`~repro.storage.snapshot.Snapshot`,
plans index prefilters a single time, then hands each worker a
:class:`~repro.planner.plan.PrefilteredDatabase` view of the snapshot
restricted to its partition.  Workers run lock-free (the gate bans the
only construct that would re-enter the lock), so a queued writer can
never deadlock against the pool.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from ..obs.metrics import METRICS
from ..xdm.qname import DB2FN_NS
from ..xdm.sequence import Item, document_order
from ..xdm.nodes import Node
from ..xquery import ast
from ..xquery.evaluator import evaluate_module
from ..core.querycache import compile_query
from .plan import PrefilteredDatabase, QueryResult, plan_prefilters
from .stats import ExecutionStats

__all__ = ["partition_reference", "execute_xquery_parallel",
           "record_fallback", "FALLBACK_REASONS"]

#: Every reason a parallel entry point may decline to fan out.  The
#: reason becomes a metric suffix (``parallel.fallback_reason.<r>``)
#: and a ``serial-fallback`` trace-span attribute, so the set is a
#: stable contract shared by the thread and process backends.
FALLBACK_REASONS = (
    "gate-rejected",     # partition_reference refused the query shape
    "single-worker",     # max_workers/processes <= 1: nothing to fan to
    "too-few-docs",      # fewer documents than would pay for a fan-out
    "freshness",         # replicas behind the required LSN / version
    "write-statements",  # batch contains writes: primary-only
    "worker-error",      # a worker process failed or timed out
    "pool-closed",       # the process pool was already shut down
)


def record_fallback(reason: str, tracer=None) -> None:
    """Count one serial fallback under its reason.

    Keeps the legacy aggregate ``parallel.serial_fallbacks`` in step
    with the per-reason family, and (when a tracer is active) records a
    ``serial-fallback`` span carrying ``reason`` so traces explain why
    a query ran serially.
    """
    if reason not in FALLBACK_REASONS:
        raise ValueError(f"unknown fallback reason {reason!r}")
    if METRICS.enabled:
        METRICS.inc("parallel.serial_fallbacks")
        METRICS.inc(f"parallel.fallback_reason.{reason}")
    if tracer is not None:
        with tracer.span("serial-fallback", reason=reason):
            pass


def _db2_calls(module: ast.Module) -> tuple[list, bool]:
    """(xmlcolumn calls, saw_sqlquery) across body AND prolog bodies."""
    scope: list[object] = list(ast.walk(module.body))
    for function in module.prolog.functions.values():
        scope.extend(ast.walk(function.body))
    xmlcolumn_calls = []
    saw_sqlquery = False
    for node in scope:
        if not isinstance(node, ast.FunctionCall):
            continue
        if node.name.uri != DB2FN_NS:
            continue
        if node.name.local == "xmlcolumn":
            xmlcolumn_calls.append(node)
        elif node.name.local == "sqlquery":
            saw_sqlquery = True
    return xmlcolumn_calls, saw_sqlquery


def _rooted_at(expr, call) -> bool:
    """Is ``expr`` the call itself or a relative path rooted at it with
    no predicates on the root step (which would be global filters)?"""
    if expr is call:
        return True
    if isinstance(expr, ast.PathExpr) and not expr.absolute and expr.steps:
        first = expr.steps[0]
        return (isinstance(first, ast.ExprStep) and first.expr is call
                and not first.predicates)
    return False


def partition_reference(module: ast.Module) -> str | None:
    """The ``TABLE.COLUMN`` reference to partition on, or None when the
    query is not provably partitionable (serial fallback)."""
    calls, saw_sqlquery = _db2_calls(module)
    if saw_sqlquery or len(calls) != 1:
        return None
    call = calls[0]
    if len(call.args) != 1:
        return None
    argument = call.args[0]
    if not (isinstance(argument, ast.Literal)
            and isinstance(argument.value.value, str)):
        return None
    reference = argument.value.value
    body = module.body
    if _rooted_at(body, call):
        return reference
    if isinstance(body, ast.FLWORExpr):
        if not body.clauses:
            return None
        first = body.clauses[0]
        if not isinstance(first, ast.ForClause) or first.position_var:
            return None
        if not _rooted_at(first.expr, call):
            return None
        if any(isinstance(clause, ast.OrderByClause)
               for clause in body.clauses):
            return None
        return reference
    return None


def _partition(doc_ids: list[int], workers: int) -> list[list[int]]:
    """Contiguous row-order chunks — concatenation preserves order."""
    chunk, remainder = divmod(len(doc_ids), workers)
    partitions: list[list[int]] = []
    start = 0
    for position in range(workers):
        size = chunk + (1 if position < remainder else 0)
        if size == 0:
            break
        partitions.append(doc_ids[start:start + size])
        start += size
    return partitions


def execute_xquery_parallel(database, query: str, max_workers: int = 4,
                            use_indexes: bool = True,
                            tracer=None) -> QueryResult:
    """Fan ``query`` across document partitions of its xmlcolumn.

    Byte-identical to the serial answer: the gate admits only queries
    whose result distributes over document concatenation, partitions
    are contiguous in row (= document) order, and pure path bodies get
    a final document-order merge.  Non-partitionable queries (or
    ``max_workers <= 1``) run serially through ``database.xquery``.
    """
    compiled = compile_query(query)
    reference = partition_reference(compiled.module)
    if reference is None or max_workers <= 1:
        record_fallback("gate-rejected" if reference is None
                        else "single-worker", tracer)
        return database.xquery(query, use_indexes=use_indexes,
                               tracer=tracer)

    started = time.perf_counter() if METRICS.enabled else 0.0
    stats = ExecutionStats()
    with database._rwlock.read():
        snapshot = database.snapshot()
        doc_ids = [stored.doc_id for stored in snapshot.documents(
            *snapshot._split_reference(reference))]
        allowed: set[int] | None = None
        if use_indexes:
            candidates = list(compiled.candidates)
            prefilters = plan_prefilters(snapshot, candidates, stats)
            for column, prefilter in prefilters.items():
                if column.lower() != reference.lower():
                    continue  # single-column query: nothing else applies
                docs = prefilter.run(stats)
                allowed = docs if allowed is None else (allowed & docs)
                for note in prefilter.notes:
                    stats.note(note)
                stats.note(f"prefilter {column}: {len(docs)} documents "
                           f"survive")
        if allowed is not None:
            doc_ids = [doc_id for doc_id in doc_ids if doc_id in allowed]
        partitions = _partition(doc_ids, max_workers)
        stats.note(f"partition-parallel: {len(doc_ids)} documents of "
                   f"{reference} across {len(partitions)} workers")

        def run_partition(partition: list[int]
                          ) -> tuple[list[Item], ExecutionStats, object]:
            worker_stats = ExecutionStats()
            worker_tracer = None
            if tracer is not None:
                from ..obs.trace import Tracer
                worker_tracer = Tracer(statement=query, language="xquery")
            view = PrefilteredDatabase(snapshot,
                                       {reference: set(partition)})
            if worker_tracer is not None:
                with worker_tracer.span("partition-eval",
                                        documents=len(partition)) as span:
                    items = evaluate_module(compiled.module, database=view,
                                            stats=worker_stats)
                    span.set(actual_rows=len(items), unit="items")
            else:
                items = evaluate_module(compiled.module, database=view,
                                        stats=worker_stats)
            return items, worker_stats, worker_tracer

        if tracer is not None:
            context = tracer.span("parallel-exec",
                                  partitions=len(partitions),
                                  max_workers=max_workers,
                                  reference=reference)
        else:
            context = _null_context()
        with context:
            if len(partitions) <= 1:
                outcomes = [run_partition(partition)
                            for partition in partitions]
            else:
                with ThreadPoolExecutor(
                        max_workers=len(partitions)) as pool:
                    outcomes = list(pool.map(run_partition, partitions))

        items: list[Item] = []
        for worker, (worker_items, worker_stats,
                     worker_tracer) in enumerate(outcomes):
            items.extend(worker_items)
            stats.merge(worker_stats)
            if tracer is not None and worker_tracer is not None:
                tracer.attach(worker_tracer, worker=worker)

    if isinstance(compiled.module.body, (ast.PathExpr, ast.FunctionCall)) \
            and all(isinstance(item, Node) for item in items):
        # A pure path body is globally document-order sorted in serial
        # execution; re-merge so out-of-creation-order ingests still
        # serialize identically.
        items = document_order(items)
    if METRICS.enabled:
        METRICS.inc("parallel.fanouts")
        METRICS.inc("parallel.partitions", len(partitions))
        METRICS.observe("parallel.seconds",
                        time.perf_counter() - started)
    return QueryResult(items, stats)


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None
