"""Access-path planning: turn eligibility verdicts into index prefilters.

The planner implements the execution model the paper's §2.1 sets out:
indexes are used to *filter documents from a collection* before the
query runs over the survivors (Definition 1's ``Q(I(P, D))``).

For a standalone XQuery, the planner:

1. extracts candidate predicates and checks their eligibility;
2. keeps eligible conjunctive predicates with statically-known bounds
   (plus whole eligible disjunction groups, unioned);
3. collapses between-pairs (Section 3.10) into a single range scan
   when the singleton guarantee holds, or two ANDed scans otherwise;
4. intersects the resulting doc-id sets per XML column; and
5. evaluates the query against a view of the database in which
   ``db2-fn:xmlcolumn`` returns only the surviving documents.

If nothing is eligible the query runs as a full collection scan — the
performance cliff every pitfall in Section 3 produces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.between import detect_between
from ..core.eligibility import analyze_candidates, check_index
from ..core.predicates import PredicateCandidate, extract_candidates
from ..core.querycache import cache_info, compile_query
from ..errors import ReproError
from ..obs.metrics import METRICS
from ..xdm.sequence import Item
from ..xquery.evaluator import evaluate_module
from .stats import ExecutionStats


@dataclass
class QueryResult:
    """Items + the statistics that make plans comparable."""

    items: list[Item]
    stats: ExecutionStats

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def serialize(self) -> list[str]:
        from ..xmlio.serializer import serialize
        return [serialize(item) for item in self.items]

    def serialized(self) -> str:
        from ..xmlio.serializer import serialize_sequence
        return serialize_sequence(self.items)


@dataclass
class _Probe:
    """One index range scan: bounds + residual path filter."""

    index: object
    low: object = None
    high: object = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    path_filter: object = None

    def run(self, stats: ExecutionStats) -> set[int]:
        return self.index.matching_documents(
            self.low, self.high, self.low_inclusive, self.high_inclusive,
            path_filter=self.path_filter, stats=stats)

    def bounds_text(self) -> str:
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        open_bracket = "[" if self.low_inclusive else "("
        close_bracket = "]" if self.high_inclusive else ")"
        return f"{open_bracket}{low}, {high}{close_bracket}"


def _bounds_for(candidate: PredicateCandidate, index) -> _Probe | None:
    """Translate an eligible predicate into B+Tree scan bounds."""
    if candidate.op == "exists":
        return _Probe(index, path_filter=candidate.path)
    if candidate.operand_value is None:
        return None  # join predicate: no static bound to scan with
    try:
        key = index.key_for_value(candidate.operand_value)
    except ReproError:
        # An uncastable bound legitimately disqualifies the probe (the
        # tolerant-index contract); anything else is a bug and raises.
        return None
    op = candidate.op
    if op in ("=", "eq"):
        return _Probe(index, low=key, high=key,
                      path_filter=candidate.path)
    if op in (">", "gt"):
        return _Probe(index, low=key, low_inclusive=False,
                      path_filter=candidate.path)
    if op in (">=", "ge"):
        return _Probe(index, low=key, path_filter=candidate.path)
    if op in ("<", "lt"):
        return _Probe(index, high=key, high_inclusive=False,
                      path_filter=candidate.path)
    if op in ("<=", "le"):
        return _Probe(index, high=key, path_filter=candidate.path)
    return None  # '!='/'ne' need two scans; not worth it for a prefilter


@dataclass
class ColumnPrefilter:
    """The planned index work for one XML column."""

    column: str
    #: Probes whose results are intersected (conjuncts).
    conjunct_probes: list[_Probe] = field(default_factory=list)
    #: Groups of probes whose results are unioned, then intersected in.
    disjunction_probes: list[list[_Probe]] = field(default_factory=list)
    #: Pre-computed doc-id sets (e.g. semi-join results), intersected.
    fixed_sets: list[set[int]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def run(self, stats: ExecutionStats, tracer=None,
            estimator=None) -> set[int]:
        result: set[int] | None = None
        for probe in self.conjunct_probes:
            docs = self._run_probe(probe, stats, tracer, estimator,
                                   "conjunct")
            result = docs if result is None else (result & docs)
        for group in self.disjunction_probes:
            union: set[int] = set()
            for probe in group:
                union |= self._run_probe(probe, stats, tracer, estimator,
                                         "disjunct")
            result = union if result is None else (result & union)
        for fixed in self.fixed_sets:
            if tracer is not None:
                with tracer.span("semi-join", column=self.column) as span:
                    span.set(actual_rows=len(fixed), unit="documents")
            result = set(fixed) if result is None else (result & fixed)
        return result if result is not None else set()

    def _run_probe(self, probe: _Probe, stats: ExecutionStats, tracer,
                   estimator, role: str) -> set[int]:
        if tracer is None:
            return probe.run(stats)
        with tracer.span("index-scan", index=probe.index.name,
                         column=self.column, role=role,
                         range=probe.bounds_text()) as span:
            entries_before = stats.index_entries_scanned
            docs = probe.run(stats)
            span.set(actual_rows=len(docs), unit="documents",
                     entries_scanned=(stats.index_entries_scanned -
                                      entries_before))
            if estimator is not None:
                estimate_attrs = estimator(self.column, probe)
                if estimate_attrs:
                    span.set(**estimate_attrs)
        return docs


def plan_prefilters(database, candidates: list[PredicateCandidate],
                    stats: ExecutionStats,
                    cost_model=None,
                    path_facts=None) -> dict[str, ColumnPrefilter]:
    """Choose index probes per XML column from eligible candidates.

    With ``cost_model`` set (see :mod:`repro.planner.cost`), probes
    whose estimated surviving-document fraction exceeds the model's
    threshold are skipped — an almost-unselective prefilter costs an
    index scan but saves nothing.  ``path_facts`` (the
    ``docs_with_path`` map of a
    :class:`repro.static.infer.StaticFacts`) seeds the cost model's
    document-coverage cap from counts the static pass already
    computed, instead of re-querying the summaries.
    """
    betweens = detect_between(candidates)
    between_members: dict[int, object] = {}
    for group in betweens:
        between_members[id(group.lower)] = group
        between_members[id(group.upper)] = group

    prefilters: dict[str, ColumnPrefilter] = {}
    handled_groups: set[int] = set()
    disjunctions: dict[int, list[tuple[PredicateCandidate, _Probe]]] = {}
    disjunction_sizes: dict[int, int] = {}

    for candidate in candidates:
        if candidate.in_disjunction:
            disjunction_sizes[candidate.disjunction_group] = \
                disjunction_sizes.get(candidate.disjunction_group, 0) + 1

    for candidate in candidates:
        table, _sep, column = candidate.column.partition(".")
        probe = None
        chosen_index = None
        for index in database.xml_indexes_on(table, column):
            verdict = check_index(index, candidate)
            if not verdict.eligible:
                continue
            probe = _bounds_for(candidate, index)
            if probe is not None:
                chosen_index = index
                break
        if probe is None:
            continue

        if cost_model is not None:
            table_name, _sep2, column_name = candidate.column.partition(".")
            total_docs = len(database.documents(table_name, column_name))
            docs_with_path = None
            if path_facts is not None:
                docs_with_path = path_facts.get(
                    (candidate.column, str(candidate.path)))
            if docs_with_path is None and candidate.path is not None:
                try:
                    docs_with_path = database.docs_with_path(
                        table_name, column_name, candidate.path)
                except ReproError:
                    docs_with_path = None  # no summaries: histogram only
            estimate = cost_model.estimate_probe(
                chosen_index, probe.low, probe.high, total_docs,
                docs_with_path=docs_with_path)
            if not estimate.worthwhile:
                stats.note(f"cost model skips {chosen_index.name} for "
                           f"{candidate.description}: {estimate.note}")
                continue
            stats.note(f"cost model keeps {chosen_index.name}: "
                       f"{estimate.note}")

        prefilter = prefilters.setdefault(
            candidate.column, ColumnPrefilter(candidate.column))

        if candidate.in_disjunction:
            disjunctions.setdefault(candidate.disjunction_group, []).append(
                (candidate, probe))
            continue

        group = between_members.get(id(candidate))
        if group is not None and group.single_scan:
            if id(group) in handled_groups:
                continue
            handled_groups.add(id(group))
            low_probe = _bounds_for(group.lower, chosen_index)
            high_probe = _bounds_for(group.upper, chosen_index)
            if low_probe is not None and high_probe is not None:
                merged = _Probe(chosen_index,
                                low=low_probe.low,
                                low_inclusive=low_probe.low_inclusive,
                                high=high_probe.high,
                                high_inclusive=high_probe.high_inclusive,
                                path_filter=candidate.path)
                prefilter.conjunct_probes.append(merged)
                prefilter.notes.append(
                    f"between collapsed to single range scan on "
                    f"{chosen_index.name} ({group.lower.description} AND "
                    f"{group.upper.description})")
                continue
        if group is not None and not group.single_scan:
            prefilter.notes.append(
                f"general-comparison range pair kept as separate scans "
                f"on {chosen_index.name} (existential semantics, §3.10)")
        prefilter.conjunct_probes.append(probe)
        prefilter.notes.append(
            f"index scan {chosen_index.name} for {candidate.description} "
            f"[{candidate.context.value}]")

    _plan_semi_joins(database, candidates, prefilters, stats)

    # Disjunction groups are usable only when every branch got a probe.
    for group_id, members in disjunctions.items():
        if len(members) != disjunction_sizes.get(group_id, -1):
            continue
        column = members[0][0].column
        prefilter = prefilters.setdefault(column, ColumnPrefilter(column))
        prefilter.disjunction_probes.append(
            [probe for _candidate, probe in members])
        prefilter.notes.append(
            f"disjunction answered by union of {len(members)} index scans")

    return {column: prefilter for column, prefilter in prefilters.items()
            if prefilter.conjunct_probes or prefilter.disjunction_probes
            or prefilter.fixed_sets}


def _plan_semi_joins(database, candidates: list[PredicateCandidate],
                     prefilters: dict[str, "ColumnPrefilter"],
                     stats: ExecutionStats) -> None:
    """Index-assisted semi-joins for XML-to-XML equality joins.

    When both sides of ``$i/custid/xs:double(.) = $j/id/xs:double(.)``
    (Query 4) are index-eligible, one linear pass over each index
    computes, per column, the documents whose join value appears on the
    other side.  Documents with no partner contribute no binding tuple
    (the where-conjunct eliminates them), so pre-filtering both columns
    is sound under Definition 1 — even when the other binding is itself
    filtered, since that only shrinks the true set further.
    """
    by_comparison: dict[int, list[PredicateCandidate]] = {}
    for candidate in candidates:
        if (candidate.comparison_id and candidate.operand_expr is not None
                and candidate.op in ("=", "eq")
                and not candidate.negated
                and not candidate.in_disjunction):
            by_comparison.setdefault(candidate.comparison_id,
                                     []).append(candidate)

    for pair in by_comparison.values():
        if len(pair) != 2 or pair[0].column == pair[1].column:
            continue
        sides = []
        for candidate in pair:
            table, _sep, column = candidate.column.partition(".")
            chosen = None
            for index in database.xml_indexes_on(table, column):
                if check_index(index, candidate).eligible:
                    chosen = index
                    break
            if chosen is None:
                break
            sides.append((candidate, chosen))
        if len(sides) != 2:
            continue
        (left, left_index), (right, right_index) = sides
        if left_index.index_type != right_index.index_type:
            continue  # keys would not be comparable
        left_docs_by_key = _keyed_docs(left_index, left.path, stats)
        right_docs_by_key = _keyed_docs(right_index, right.path, stats)
        common = left_docs_by_key.keys() & right_docs_by_key.keys()
        left_docs: set[int] = set()
        right_docs: set[int] = set()
        for key in common:
            left_docs |= left_docs_by_key[key]
            right_docs |= right_docs_by_key[key]
        for candidate, docs in ((left, left_docs), (right, right_docs)):
            prefilter = prefilters.setdefault(
                candidate.column, ColumnPrefilter(candidate.column))
            prefilter.fixed_sets.append(docs)
            prefilter.notes.append(
                f"semi-join prefilter via {left_index.name} ⋈ "
                f"{right_index.name}: {len(docs)} documents keep a "
                f"join partner for {candidate.description}")


def _keyed_docs(index, path_filter, stats: ExecutionStats
                ) -> dict[object, set[int]]:
    """One pass over an index: key -> doc ids (path-filtered)."""
    result: dict[object, set[int]] = {}
    scanned = 0
    for key, entry in index.tree.items():
        scanned += 1
        if path_filter is not None and \
                not path_filter.matches_path(list(entry.path)):
            continue
        result.setdefault(key, set()).add(entry.doc_id)
    stats.index_entries_scanned += scanned
    stats.record_index_use(index.name)
    if METRICS.enabled:
        METRICS.inc("index.probes")
        METRICS.inc("index.entries_scanned", scanned)
    return result


class PrefilteredDatabase:
    """A database view whose xmlcolumn() yields only surviving docs.

    This is exactly I(P, D) of Definition 1: the query runs unchanged
    over the pre-filtered collection.
    """

    def __init__(self, database, doc_filters: dict[str, set[int]]):
        self._database = database
        self._doc_filters = {column.lower(): docs
                             for column, docs in doc_filters.items()}

    def xmlcolumn(self, reference: str, stats=None) -> list[Item]:
        key = reference.lower()
        if key not in self._doc_filters:
            return self._database.xmlcolumn(reference, stats=stats)
        allowed = self._doc_filters[key]
        table, column = self._database._split_reference(reference)
        stored_docs = [stored for stored in
                       self._database.documents(table, column)
                       if stored.doc_id in allowed]
        if stats is not None:
            stats.docs_scanned += len(stored_docs)
        if METRICS.enabled:
            METRICS.inc("docs.scanned", len(stored_docs))
        return [stored.document for stored in stored_docs]

    def __getattr__(self, name):
        return getattr(self._database, name)


def _make_probe_estimator(database):
    """Span-attribute estimator for EXPLAIN ANALYZE (traced runs only).

    Returns ``estimate(column, probe) -> dict`` producing the
    ``estimated_rows`` attribute (histogram selectivity capped by
    path-summary document coverage) plus supporting attrs.  Plain
    executions never construct this, so they never pay for histograms.
    """
    from .cost import CostModel
    model = CostModel(calibration=getattr(database, "cost_calibration",
                                          None))

    def estimate(column: str, probe: _Probe) -> dict:
        table, _sep, column_name = column.partition(".")
        try:
            total_docs = len(database.documents(table, column_name))
        except ReproError:
            return {}
        docs_with_path = None
        if probe.path_filter is not None:
            try:
                docs_with_path = database.docs_with_path(
                    table, column_name, probe.path_filter)
            except ReproError:
                docs_with_path = None
        probe_estimate = model.estimate_probe(
            probe.index, probe.low, probe.high, total_docs,
            docs_with_path=docs_with_path)
        attrs = {"estimated_rows":
                 round(probe_estimate.docs_fraction * total_docs, 2)}
        if docs_with_path is not None:
            attrs["summary_cap_docs"] = docs_with_path
        return attrs

    return estimate


def _annotate_static_bounds(module, database, span) -> None:
    """Attach inferred result-cardinality bounds to a trace span.

    Traced runs only (EXPLAIN ANALYZE / ``--trace``): full inference
    walks the AST and consults path summaries, which the untraced hot
    path must not pay for.
    """
    from ..static.infer import infer_module
    try:
        inference = infer_module(module, database=database,
                                 report_unknown_vars=False)
    except ReproError:
        return
    body_type = inference.body_type
    span.set(inferred_type=str(body_type),
             estimated_low=body_type.low,
             estimated_high=("unbounded" if body_type.high is None
                             else body_type.high))


def execute_xquery(database, query: str,
                   use_indexes: bool = True,
                   cost_based: bool = False,
                   prefilter_threshold: float = 0.9,
                   rewrite_views: bool = False,
                   tracer=None,
                   variables: dict | None = None) -> QueryResult:
    """Plan and run a standalone XQuery.

    ``cost_based=True`` enables the selectivity cost model (see
    :mod:`repro.planner.cost`): eligible but barely-selective probes
    are skipped.  The default is the rule-based mode the paper's
    eligibility discussion assumes — every eligible index is used.

    ``rewrite_views=True`` attempts the §3.6 view-flattening rewrite
    before planning (see :mod:`repro.core.rewriter`); when the rewrite
    is blocked by a hazard the original query runs and the hazards are
    recorded in the plan notes.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) records per-stage
    spans — parse, plan, index-probe/index-scan, residual-eval — used
    by ``--trace`` and EXPLAIN ANALYZE.  ``None`` (the default) skips
    all span bookkeeping.

    ``variables`` binds external variables (name → item sequence) in
    the dynamic context — the server's session variables ride in here.
    """
    # The workload profiler (repro.autopilot) rides on the same cheap
    # guard discipline as METRICS: one attribute read when absent.
    profiler = getattr(database, "workload_profiler", None)
    started = (time.perf_counter()
               if METRICS.enabled or profiler is not None else 0.0)
    stats = ExecutionStats()
    if tracer is not None:
        hits_before = cache_info().hits
        with tracer.span("parse") as span:
            compiled = compile_query(query)
            span.set(cache=("hit" if cache_info().hits > hits_before
                            else "miss"),
                     candidates=len(compiled.candidates))
    else:
        compiled = compile_query(query)
    module = compiled.module
    candidates = list(compiled.candidates)
    if rewrite_views:
        from ..core.rewriter import rewrite_view_flattening
        rewrite = rewrite_view_flattening(module)
        for note in rewrite.notes:
            stats.note(note)
        for hazard in rewrite.hazards:
            stats.note(f"view flattening refused: {hazard}")
        if rewrite.module is not module:
            module = rewrite.module
            candidates = extract_candidates(module)
    runtime_db = database
    if use_indexes:
        from ..static.infer import static_prefilter_facts
        cost_model = None
        if cost_based:
            from .cost import CostModel
            cost_model = CostModel(
                prefilter_threshold=prefilter_threshold,
                calibration=getattr(database, "cost_calibration", None))
        if tracer is not None:
            with tracer.span("static-analysis") as span:
                facts = static_prefilter_facts(database, candidates)
                span.set(checks=facts.checked,
                         empty_columns=len(facts.empty_columns))
                _annotate_static_bounds(module, database, span)
        else:
            facts = static_prefilter_facts(database, candidates)
        if METRICS.enabled and facts.checked:
            METRICS.inc("static.checks", facts.checked)
        if tracer is not None:
            with tracer.span("plan") as span:
                prefilters = plan_prefilters(
                    database, candidates, stats, cost_model=cost_model,
                    path_facts=facts.docs_with_path)
                span.set(prefilter_columns=len(prefilters),
                         cost_based=cost_based)
        else:
            prefilters = plan_prefilters(
                database, candidates, stats, cost_model=cost_model,
                path_facts=facts.docs_with_path)
        pruned: dict[str, set[int]] = {}
        for column, path_text in facts.empty_columns.items():
            # A statically-empty filtering path behaves exactly like an
            # index probe that returned zero documents, minus the scan:
            # drop the column's probes and pin its document set to ∅.
            prefilters.pop(column, None)
            pruned[column] = set()
            stats.note(f"static prune {column}: path '{path_text}' "
                       f"matches no stored document; branch eliminated")
            if METRICS.enabled:
                METRICS.inc("static.empty_prunes")
            if tracer is not None:
                with tracer.span("static-prune", column=column,
                                 path=path_text) as span:
                    span.set(actual_rows=0, unit="documents")
        if prefilters or pruned:
            estimator = (_make_probe_estimator(database)
                         if tracer is not None else None)
            doc_filters: dict[str, set[int]] = dict(pruned)
            for column, prefilter in prefilters.items():
                if tracer is not None:
                    with tracer.span("index-probe", column=column) as span:
                        docs = prefilter.run(stats, tracer=tracer,
                                             estimator=estimator)
                        span.set(actual_rows=len(docs), unit="documents")
                else:
                    docs = prefilter.run(stats)
                doc_filters[column] = docs
                for note in prefilter.notes:
                    stats.note(note)
                stats.note(
                    f"prefilter {column}: {len(doc_filters[column])} "
                    f"documents survive")
            runtime_db = PrefilteredDatabase(database, doc_filters)
        else:
            stats.note("no eligible index: full collection scan")
    else:
        stats.note("indexes disabled: full collection scan")
    if tracer is not None:
        docs_before = stats.docs_scanned
        with tracer.span("residual-eval") as span:
            items = evaluate_module(module, database=runtime_db,
                                    variables=variables, stats=stats)
            span.set(actual_rows=len(items), unit="items",
                     docs_scanned=stats.docs_scanned - docs_before,
                     summary_lookups=stats.summary_lookups)
    else:
        items = evaluate_module(module, database=runtime_db,
                                variables=variables, stats=stats)
    if METRICS.enabled:
        METRICS.inc("queries.xquery")
        METRICS.observe("query.seconds", time.perf_counter() - started)
    if profiler is not None:
        profiler.observe_query(query, "xquery", stats,
                               time.perf_counter() - started)
    return QueryResult(items, stats)


def explain_xquery(database, query: str) -> str:
    """Human-readable plan + eligibility explanation."""
    compiled = compile_query(query)
    candidates = list(compiled.candidates)
    report = analyze_candidates(database, candidates, query, "xquery")
    stats = ExecutionStats()
    from ..static.infer import static_prefilter_facts
    facts = static_prefilter_facts(database, candidates)
    prefilters = plan_prefilters(database, candidates, stats,
                                 path_facts=facts.docs_with_path)
    lines = [report.explain(), "plan:"]
    for column, path_text in facts.empty_columns.items():
        prefilters.pop(column, None)
        lines.append(f"  {column}: statically empty "
                     f"(path '{path_text}' matches no stored document); "
                     f"branch pruned")
    if prefilters:
        for column, prefilter in prefilters.items():
            lines.append(f"  {column}:")
            for note in prefilter.notes:
                lines.append(f"    {note}")
    elif not facts.empty_columns:
        lines.append("  full collection scan")
    return "\n".join(lines)
