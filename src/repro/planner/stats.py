"""Execution statistics — the observable that makes the paper's
performance claims testable.

Every query run (XQuery or SQL) carries an ExecutionStats; the planner
records which access path it chose, the storage layer counts how many
documents/rows were touched and how many index entries were scanned.
Benchmarks and tests assert on these counters: an eligible index must
reduce ``docs_scanned``; an ineligible one must leave it at the full
collection size.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExecutionStats:
    #: XML documents materialized from columns (full-scan cost driver).
    docs_scanned: int = 0
    #: Relational rows examined by the SQL executor.
    rows_scanned: int = 0
    #: Index entries touched across all probes.
    index_entries_scanned: int = 0
    #: Number of separate index range scans performed ("between" as one
    #: scan vs two ANDed scans, Section 3.10).
    index_scans: int = 0
    #: Path-summary lookups that answered a step chain without a tree
    #: walk (the structural acceleration fast path).
    summary_lookups: int = 0
    #: Names of indexes actually used.
    indexes_used: list[str] = field(default_factory=list)
    #: Human-readable plan decisions, in order.
    plan_notes: list[str] = field(default_factory=list)

    def record_index_use(self, name: str) -> None:
        if name not in self.indexes_used:
            self.indexes_used.append(name)
        self.index_scans += 1

    def note(self, message: str) -> None:
        self.plan_notes.append(message)

    def merge(self, other: "ExecutionStats") -> None:
        """Fold a partition worker's counters into this (orchestrator)
        stats object; notes are appended in worker order."""
        self.docs_scanned += other.docs_scanned
        self.rows_scanned += other.rows_scanned
        self.index_entries_scanned += other.index_entries_scanned
        self.index_scans += other.index_scans
        self.summary_lookups += other.summary_lookups
        for name in other.indexes_used:
            if name not in self.indexes_used:
                self.indexes_used.append(name)
        self.plan_notes.extend(other.plan_notes)

    def explain(self) -> str:
        lines = list(self.plan_notes)
        lines.append(
            f"docs_scanned={self.docs_scanned} "
            f"rows_scanned={self.rows_scanned} "
            f"index_entries_scanned={self.index_entries_scanned} "
            f"index_scans={self.index_scans} "
            f"summary_lookups={self.summary_lookups} "
            f"indexes_used={self.indexes_used}")
        return "\n".join(lines)
