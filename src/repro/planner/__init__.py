"""Planner: index-prefilter plan selection and execution statistics."""

from .plan import (ColumnPrefilter, PrefilteredDatabase, QueryResult,
                   execute_xquery, explain_xquery, plan_prefilters)
from .stats import ExecutionStats

__all__ = ["ColumnPrefilter", "ExecutionStats", "PrefilteredDatabase",
           "QueryResult", "execute_xquery", "explain_xquery",
           "plan_prefilters"]
