"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo`` — build the paper's 3-table schema with generated data and
  run the Query 1 index-vs-scan comparison;
* ``load DIR`` + ``query`` / ``sql`` / ``explain`` / ``advise`` /
  ``lint`` / ``describe`` — load every ``*.xml`` file under a
  directory into a
  single-column ``docs(doc XML)`` table (with optional indexes) and run
  statements against it;
* durability: ``--data DIR`` on any query subcommand opens (and
  recovers) a durable database directory instead of an empty in-memory
  one; ``ingest`` populates such a directory with the paper schema,
  ``checkpoint`` writes an atomic checkpoint and truncates the WAL,
  ``recover --verify`` replays and integrity-checks a directory, and
  ``q1`` … ``q30`` answer the paper's numbered queries from one;
* ``check`` — the concurrency sanitizer's static half: interprocedural
  lock-order / blocking / fork-safety / guard-tick passes over the
  package source (``--json`` for tooling, exit 1 on findings).

Examples::

    python -m repro demo
    python -m repro query --load ./feeds \\
        --index "//item/title AS VARCHAR" \\
        "db2-fn:xmlcolumn('DOCS.DOC')//title"
    python -m repro query --load ./feeds --explain-analyze \\
        --metrics --trace trace.json \\
        "db2-fn:xmlcolumn('DOCS.DOC')//item[title = 'x']"
    python -m repro ingest --data ./state
    python -m repro q1 --data ./state
    python -m repro recover --data ./state --verify
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys

from . import Database
from .core.advisor import advise
from .workload import OrderProfile, populate_paper_schema
from .workload.paperqueries import load_paper_fixture, run_paper_query
from .xmlio.serializer import serialize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="An XML database reproducing 'On the Path to "
                    "Efficient XML Queries' (VLDB 2006)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the Query 1 demo")
    demo.add_argument("--orders", type=int, default=300)

    for name, help_text in [
            ("query", "run an XQuery"),
            ("sql", "run an SQL/XML statement"),
            ("explain", "explain index eligibility and the plan"),
            ("advise", "run the Tips 1-12 advisor"),
            ("lint", "static-check a statement (reason-coded "
                     "errors and pitfall warnings)"),
            ("describe", "print the catalog")]:
        sub = commands.add_parser(name, help=help_text)
        _add_data_arguments(sub)
        sub.add_argument("--load", metavar="DIR", default=None,
                         help="directory of *.xml files loaded into "
                              "docs(doc XML)")
        sub.add_argument("--index", action="append", default=[],
                         metavar="'PATTERN AS TYPE'",
                         help="XML index over the docs column "
                              "(repeatable)")
        sub.add_argument("--no-indexes", action="store_true",
                         help="disable index usage at run time")
        sub.add_argument("--indent", action="store_true",
                         help="pretty-print XML results")
        if name in ("query", "sql"):
            sub.add_argument("--explain-analyze", action="store_true",
                             help="execute and print the operator tree "
                                  "with actual cardinalities and "
                                  "timings")
            sub.add_argument("--metrics", action="store_true",
                             help="print engine metric counters after "
                                  "the statement")
            sub.add_argument("--trace", metavar="FILE", default=None,
                             help="write the span trace as JSON to "
                                  "FILE ('-' for stdout)")
        if name == "lint":
            sub.add_argument("--json", action="store_true",
                             help="emit findings as a JSON array")
        if name == "query":
            sub.add_argument("--workers", type=int, default=1,
                             metavar="N",
                             help="fan the query across N document-"
                                  "partition workers (falls back to "
                                  "serial when not partitionable)")
            sub.add_argument("--processes", type=int, default=1,
                             metavar="N",
                             help="fan the query across N worker "
                                  "PROCESSES serving log-shipped read "
                                  "replicas — escapes the GIL on "
                                  "multi-core hosts (falls back to "
                                  "serial when not partitionable)")
        if name != "describe":
            sub.add_argument("statement", help="the query text")

    ingest = commands.add_parser(
        "ingest", help="populate a durable data directory with the "
                       "paper schema (fixture docs, or --orders N "
                       "generated ones) and checkpoint it")
    _add_data_arguments(ingest, required=True)
    ingest.add_argument("--orders", type=int, default=0,
                        help="generate N orders instead of loading the "
                             "engineered fixture documents")
    ingest.add_argument("--customers", type=int, default=20)
    ingest.add_argument("--products", type=int, default=10)

    checkpoint = commands.add_parser(
        "checkpoint", help="write an atomic checkpoint of a data "
                           "directory and truncate its WAL")
    _add_data_arguments(checkpoint, required=True)

    recover = commands.add_parser(
        "recover", help="recover a data directory (checkpoint + WAL "
                        "replay) and report what was done")
    _add_data_arguments(recover, required=True)
    recover.add_argument("--verify", action="store_true",
                         help="check rebuilt path summaries against "
                              "the checkpoint (exit 1 on mismatch)")

    check = commands.add_parser(
        "check", help="run the concurrency sanitizer's static passes "
                      "(lock order, blocking-under-lock, fork safety, "
                      "guard ticks, lexical rules) over the package "
                      "source; exit 1 on findings")
    check.add_argument("--json", action="store_true",
                       help="machine-readable findings")
    check.add_argument("paths", nargs="*",
                       help="restrict to specific source files "
                            "(default: the whole package)")

    serve = commands.add_parser(
        "serve", help="serve the database over a length-prefixed JSON "
                      "protocol: sessions, prepared statements, "
                      "admission control; SIGTERM drains gracefully")
    _add_data_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks a free one and prints "
                            "it (default: 0)")
    serve.add_argument("--max-active", type=int, default=4,
                       metavar="N",
                       help="statements executing concurrently "
                            "(engine threads; default: 4)")
    serve.add_argument("--max-queue", type=int, default=16,
                       metavar="N",
                       help="statements allowed to wait for a slot; "
                            "arrivals beyond this are shed with "
                            "SQLSTATE 53300 (default: 16)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-statement deadline (SQLSTATE "
                            "57014 on overrun; default: none)")
    serve.add_argument("--max-rows", type=int, default=None,
                       metavar="N",
                       help="default per-statement row budget "
                            "(SQLSTATE 54000; default: none)")
    serve.add_argument("--max-bytes", type=int, default=None,
                       metavar="N",
                       help="default per-statement serialized-result "
                            "byte budget (SQLSTATE 54000; default: "
                            "none)")
    serve.add_argument("--fixture", action="store_true",
                       help="without --data: serve an in-memory "
                            "database preloaded with the paper fixture")
    serve.add_argument("--metrics", action="store_true",
                       help="enable the engine metrics registry; the "
                            "'stats' op then includes it")
    serve.add_argument("--auto-index", action="store_true",
                       help="run the self-driving index policy: a "
                            "background thread watches the observed "
                            "workload and builds beneficial XML "
                            "indexes online")
    serve.add_argument("--auto-index-interval", type=float, default=1.0,
                       metavar="SECONDS",
                       help="seconds between auto-index advise/apply "
                            "cycles (default: 1.0)")

    autopilot = commands.add_parser(
        "autopilot", help="self-driving indexing: profile a workload, "
                          "advise CREATE INDEX DDL, optionally build "
                          "it online and calibrate the cost model")
    _add_data_arguments(autopilot)
    autopilot.add_argument("--fixture", action="store_true",
                           help="without --data: use an in-memory "
                                "database preloaded with the paper "
                                "fixture (no indexes)")
    autopilot.add_argument("--observe", metavar="FILE", default=None,
                           help="execute statements from FILE (one per "
                                "line, '#' comments) so the profiler "
                                "sees them; '-' reads stdin")
    autopilot.add_argument("--paper", action="store_true",
                           help="observe the paper's 30-query workload")
    autopilot.add_argument("--advise", action="store_true",
                           help="print ranked CREATE INDEX advice for "
                                "the observed workload")
    autopilot.add_argument("--apply", action="store_true",
                           help="build the advised indexes online "
                                "(implies --advise)")
    autopilot.add_argument("--limit", type=int, default=None,
                           metavar="N",
                           help="build at most N advised indexes")
    autopilot.add_argument("--calibrate", action="store_true",
                           help="EXPLAIN ANALYZE the hottest profiled "
                                "statements and feed q-errors back "
                                "into the cost model")
    autopilot.add_argument("--json", action="store_true",
                           help="emit the full autopilot report as "
                                "JSON")

    for number in range(1, 31):
        paper = commands.add_parser(
            f"q{number}", help=f"answer paper query {number} from a "
                               f"recovered data directory")
        _add_data_arguments(paper, required=True)
    return parser


def _add_data_arguments(sub, required: bool = False) -> None:
    sub.add_argument("--data", metavar="DIR", default=None,
                     required=required,
                     help="durable database directory (WAL + "
                          "checkpoints); recovered on open")
    sub.add_argument("--fsync", choices=["always", "batch", "off"],
                     default="always",
                     help="WAL fsync policy for writes (default: "
                          "always)")
    sub.add_argument("--buffer-pool-bytes", type=int, default=None,
                     metavar="N",
                     help="cap resident document memory at N bytes; "
                          "cold documents are evicted LRU (and, with "
                          "--data, spilled under DIR/spool) and "
                          "re-materialized on demand (default: "
                          "unlimited, or $REPRO_BUFFER_POOL_BYTES)")


def load_directory(database: Database, directory: str,
                   index_specs: list[str]) -> int:
    database.create_table("docs", [("name", "VARCHAR(255)"),
                                   ("doc", "XML")])
    count = 0
    root = pathlib.Path(directory)
    for path in sorted(root.rglob("*.xml")):
        database.insert("docs", {"name": path.name,
                                 "doc": path.read_text()})
        count += 1
    for position, spec in enumerate(index_specs, start=1):
        pattern, _sep, index_type = spec.rpartition(" AS ")
        if not pattern:
            pattern, index_type = spec, "VARCHAR"
        database.create_xml_index(f"cli_idx_{position}", "docs", "doc",
                                  pattern.strip(), index_type.strip())
    return count


def run_demo(orders: int, out=sys.stdout) -> None:
    database = Database()
    populate_paper_schema(
        database, orders=orders, customers=max(5, orders // 10),
        products=20,
        profile=OrderProfile(price_low=1, price_high=200))
    query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price>190] return $i")
    fast = database.xquery(query)
    slow = database.xquery(query, use_indexes=False)
    print(f"collection: {orders} orders", file=out)
    print(f"query: {query}", file=out)
    print(f"with li_price index: {len(fast)} results, "
          f"{fast.stats.docs_scanned} documents touched", file=out)
    print(f"full collection scan: {len(slow)} results, "
          f"{slow.stats.docs_scanned} documents touched", file=out)
    print(database.explain(query), file=out)


def run_lint(database: Database, statement: str,
             as_json: bool = False, out=sys.stdout) -> int:
    """``repro lint``: print findings; exit 1 on error-severity ones."""
    import json

    from .static import lint_statement
    findings = lint_statement(statement, database=database)
    if as_json:
        print(json.dumps([finding.to_dict() for finding in findings],
                         indent=2), file=out)
    elif not findings:
        print("clean: no static errors or pitfall warnings", file=out)
    else:
        for finding in findings:
            print(str(finding), file=out)
    return 1 if any(finding.severity == "error"
                    for finding in findings) else 0


def run_ingest(arguments, out) -> int:
    from .durability import DurableDatabase
    with DurableDatabase(
            arguments.data, fsync_policy=arguments.fsync,
            buffer_pool_bytes=arguments.buffer_pool_bytes) as database:
        if arguments.orders:
            populate_paper_schema(database, orders=arguments.orders,
                                  customers=arguments.customers,
                                  products=arguments.products)
        else:
            load_paper_fixture(database)
        rows = sum(len(table.rows)
                   for table in database.tables.values())
        info = database.checkpoint()
        print(f"ingested {rows} rows into {len(database.tables)} "
              f"tables; checkpoint at LSN {info.last_lsn} "
              f"({info.bytes_written} bytes)", file=out)
    return 0


def run_checkpoint(arguments, out) -> int:
    from .durability import DurableDatabase
    with DurableDatabase(
            arguments.data, fsync_policy=arguments.fsync,
            buffer_pool_bytes=arguments.buffer_pool_bytes) as database:
        print(database.last_recovery.render(), file=out)
        info = database.checkpoint()
        print(f"checkpoint at LSN {info.last_lsn}: {info.tables} "
              f"table(s), {info.rows} row(s), {info.bytes_written} "
              f"bytes", file=out)
    return 0


def run_recover(arguments, out) -> int:
    from .durability import DurableDatabase
    with DurableDatabase(
            arguments.data, fsync_policy=arguments.fsync,
            buffer_pool_bytes=arguments.buffer_pool_bytes,
            verify=arguments.verify) as database:
        result = database.last_recovery
        print(result.render(), file=out)
        if result.verify is not None and not result.verify.ok:
            return 1
    return 0


def run_paper_query_command(number: int, arguments, out) -> int:
    from .durability import DurableDatabase
    with DurableDatabase(
            arguments.data, fsync_policy=arguments.fsync,
            buffer_pool_bytes=arguments.buffer_pool_bytes) as database:
        print(run_paper_query(database, number), file=out)
        recovery = database.last_recovery
        print(f"# recovered: checkpoint_lsn={recovery.checkpoint_lsn} "
              f"replayed={recovery.replayed}", file=out)
    return 0


def run_serve(arguments, out) -> int:
    """``repro serve``: the network front door.

    Prints ``serving on HOST:PORT`` once the socket is bound (scripts
    parse that line), then blocks until SIGTERM/SIGINT completes a
    graceful drain: stop accepting, finish in-flight statements, flush
    the WAL, print ``drained``, exit 0.
    """
    import asyncio

    from .server import ReproServer

    async def _serve(database) -> None:
        server = ReproServer(
            database, host=arguments.host, port=arguments.port,
            max_active=arguments.max_active,
            max_queue=arguments.max_queue,
            default_timeout=arguments.timeout,
            default_max_rows=arguments.max_rows,
            default_max_bytes=arguments.max_bytes)
        host, port = await server.start()
        server.install_signal_handlers()
        print(f"serving on {host}:{port}", file=out, flush=True)
        await server.serve_until_drained()
        print("drained", file=out, flush=True)

    with contextlib.ExitStack() as lifecycle:
        if arguments.metrics:
            from .obs.metrics import enabled_metrics
            lifecycle.enter_context(enabled_metrics())
        if arguments.data:
            from .durability import DurableDatabase
            database = lifecycle.enter_context(
                DurableDatabase(
                    arguments.data, fsync_policy=arguments.fsync,
                    buffer_pool_bytes=arguments.buffer_pool_bytes))
        else:
            database = Database(
                buffer_pool_bytes=arguments.buffer_pool_bytes)
            if arguments.fixture:
                load_paper_fixture(database)
        if arguments.auto_index:
            from .autopilot import AutoIndexPolicy
            lifecycle.enter_context(AutoIndexPolicy(
                database.autopilot(),
                interval=arguments.auto_index_interval))
        asyncio.run(_serve(database))
    return 0


def run_autopilot(arguments, out) -> int:
    """``repro autopilot``: observe → advise → apply → calibrate."""
    import json

    with contextlib.ExitStack() as lifecycle:
        if arguments.data:
            from .durability import DurableDatabase
            database = lifecycle.enter_context(
                DurableDatabase(
                    arguments.data, fsync_policy=arguments.fsync,
                    buffer_pool_bytes=arguments.buffer_pool_bytes))
        else:
            database = Database(
                buffer_pool_bytes=arguments.buffer_pool_bytes)
            if arguments.fixture:
                load_paper_fixture(database, with_indexes=False)
        pilot = database.autopilot()
        if arguments.paper:
            from .workload.paperqueries import PAPER_QUERIES
            for number in sorted(PAPER_QUERIES):
                run_paper_query(database, number)
        if arguments.observe:
            source = (sys.stdin.read() if arguments.observe == "-"
                      else pathlib.Path(arguments.observe).read_text())
            statements = [line.strip() for line in source.splitlines()
                          if line.strip()
                          and not line.lstrip().startswith("#")]
            pilot.observe(statements)
        advising = arguments.advise or arguments.apply or \
            not (arguments.paper or arguments.observe
                 or arguments.calibrate)
        if advising:
            advice = pilot.advise()
        if arguments.apply:
            pilot.apply(limit=arguments.limit)
        if arguments.calibrate:
            pilot.calibrate()
        if arguments.json:
            print(json.dumps(pilot.to_dict(), indent=2), file=out)
            return 0
        if advising and not pilot.last_advice and not pilot.applied:
            print("no advice: every profiled predicate is served or "
                  "below the benefit bar", file=out)
        print(pilot.report(), file=out)
    return 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.command == "demo":
        run_demo(arguments.orders, out=out)
        return 0
    if arguments.command == "ingest":
        return run_ingest(arguments, out)
    if arguments.command == "checkpoint":
        return run_checkpoint(arguments, out)
    if arguments.command == "recover":
        return run_recover(arguments, out)
    if arguments.command == "check":
        from .analysis.runner import main as check_main
        return check_main(
            (["--json"] if arguments.json else []) + arguments.paths,
            out=out)
    if arguments.command == "serve":
        return run_serve(arguments, out)
    if arguments.command == "autopilot":
        return run_autopilot(arguments, out)
    if arguments.command.startswith("q") and \
            arguments.command[1:].isdigit():
        return run_paper_query_command(int(arguments.command[1:]),
                                       arguments, out)

    with contextlib.ExitStack() as lifecycle:
        if arguments.data:
            from .durability import DurableDatabase
            database = lifecycle.enter_context(
                DurableDatabase(
                    arguments.data, fsync_policy=arguments.fsync,
                    buffer_pool_bytes=arguments.buffer_pool_bytes))
        else:
            database = Database(
                buffer_pool_bytes=arguments.buffer_pool_bytes)
        if arguments.load:
            count = load_directory(database, arguments.load,
                                   arguments.index)
            print(f"loaded {count} documents from {arguments.load}",
                  file=out)
        return _run_statement_command(arguments, database, out)


def _run_statement_command(arguments, database, out) -> int:
    if arguments.command == "describe":
        print(database.describe(), file=out)
        return 0
    if arguments.command == "explain":
        print(database.explain(arguments.statement), file=out)
        return 0
    if arguments.command == "advise":
        items = advise(database, arguments.statement)
        if not items:
            print("no advice: the query avoids the catalogued "
                  "pitfalls", file=out)
        for item in items:
            print(str(item), file=out)
        return 0
    if arguments.command == "lint":
        return run_lint(database, arguments.statement,
                        as_json=arguments.json, out=out)
    from .obs.metrics import METRICS, enabled_metrics
    from .obs.trace import Tracer

    use_indexes = not arguments.no_indexes
    with contextlib.ExitStack() as stack:
        if arguments.metrics:
            stack.enter_context(enabled_metrics())

        if arguments.explain_analyze:
            analyzed = database.explain_analyze(arguments.statement,
                                                use_indexes=use_indexes)
            print(analyzed.render(), file=out)
            _write_trace(analyzed.tracer, arguments.trace, out)
        elif arguments.command == "sql":
            tracer = (Tracer(arguments.statement, "sql")
                      if arguments.trace else None)
            result = database.sql(arguments.statement,
                                  use_indexes=use_indexes, tracer=tracer)
            print("\t".join(result.columns), file=out)
            for row in result.serialize_rows():
                print("\t".join("NULL" if value is None else str(value)
                                for value in row), file=out)
            print(result.stats.explain(), file=out)
            _write_trace(tracer, arguments.trace, out)
        else:
            tracer = (Tracer(arguments.statement, "xquery")
                      if arguments.trace else None)
            if getattr(arguments, "processes", 1) > 1:
                with database.process_pool(
                        processes=arguments.processes) as pool:
                    result = pool.xquery(arguments.statement,
                                         use_indexes=use_indexes,
                                         tracer=tracer,
                                         indent=arguments.indent)
            elif getattr(arguments, "workers", 1) > 1:
                result = database.xquery_parallel(
                    arguments.statement, max_workers=arguments.workers,
                    use_indexes=use_indexes, tracer=tracer)
            else:
                result = database.xquery(arguments.statement,
                                         use_indexes=use_indexes,
                                         tracer=tracer)
            if hasattr(result, "items"):
                for item in result.items:
                    print(serialize(item, indent=arguments.indent),
                          file=out)
            else:
                # Pool results arrive pre-serialized from the workers.
                for text in result.serialize():
                    print(text, file=out)
            print(result.stats.explain(), file=out)
            _write_trace(tracer, arguments.trace, out)

        if arguments.metrics:
            print(METRICS.render(), file=out)
    return 0


def _write_trace(tracer, destination: str | None, out) -> None:
    if tracer is None or destination is None:
        return
    payload = tracer.to_json()
    if destination == "-":
        print(payload, file=out)
    else:
        pathlib.Path(destination).write_text(payload + "\n")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
