"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo`` — build the paper's 3-table schema with generated data and
  run the Query 1 index-vs-scan comparison;
* ``load DIR`` + ``query`` / ``sql`` / ``explain`` / ``advise`` /
  ``lint`` / ``describe`` — load every ``*.xml`` file under a
  directory into a
  single-column ``docs(doc XML)`` table (with optional indexes) and run
  statements against it.

Examples::

    python -m repro demo
    python -m repro query --load ./feeds \\
        --index "//item/title AS VARCHAR" \\
        "db2-fn:xmlcolumn('DOCS.DOC')//title"
    python -m repro explain --load ./feeds \\
        "db2-fn:xmlcolumn('DOCS.DOC')//item[title = 'x']"
    python -m repro query --load ./feeds --explain-analyze \\
        --metrics --trace trace.json \\
        "db2-fn:xmlcolumn('DOCS.DOC')//item[title = 'x']"
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys

from . import Database
from .core.advisor import advise
from .workload import OrderProfile, populate_paper_schema
from .xmlio.serializer import serialize


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="An XML database reproducing 'On the Path to "
                    "Efficient XML Queries' (VLDB 2006)")
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="run the Query 1 demo")
    demo.add_argument("--orders", type=int, default=300)

    for name, help_text in [
            ("query", "run an XQuery"),
            ("sql", "run an SQL/XML statement"),
            ("explain", "explain index eligibility and the plan"),
            ("advise", "run the Tips 1-12 advisor"),
            ("lint", "static-check a statement (reason-coded "
                     "errors and pitfall warnings)"),
            ("describe", "print the catalog")]:
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--load", metavar="DIR", default=None,
                         help="directory of *.xml files loaded into "
                              "docs(doc XML)")
        sub.add_argument("--index", action="append", default=[],
                         metavar="'PATTERN AS TYPE'",
                         help="XML index over the docs column "
                              "(repeatable)")
        sub.add_argument("--no-indexes", action="store_true",
                         help="disable index usage at run time")
        sub.add_argument("--indent", action="store_true",
                         help="pretty-print XML results")
        if name in ("query", "sql"):
            sub.add_argument("--explain-analyze", action="store_true",
                             help="execute and print the operator tree "
                                  "with actual cardinalities and "
                                  "timings")
            sub.add_argument("--metrics", action="store_true",
                             help="print engine metric counters after "
                                  "the statement")
            sub.add_argument("--trace", metavar="FILE", default=None,
                             help="write the span trace as JSON to "
                                  "FILE ('-' for stdout)")
        if name == "lint":
            sub.add_argument("--json", action="store_true",
                             help="emit findings as a JSON array")
        if name == "query":
            sub.add_argument("--workers", type=int, default=1,
                             metavar="N",
                             help="fan the query across N document-"
                                  "partition workers (falls back to "
                                  "serial when not partitionable)")
        if name != "describe":
            sub.add_argument("statement", help="the query text")
    return parser


def load_directory(database: Database, directory: str,
                   index_specs: list[str]) -> int:
    database.create_table("docs", [("name", "VARCHAR(255)"),
                                   ("doc", "XML")])
    count = 0
    root = pathlib.Path(directory)
    for path in sorted(root.rglob("*.xml")):
        database.insert("docs", {"name": path.name,
                                 "doc": path.read_text()})
        count += 1
    for position, spec in enumerate(index_specs, start=1):
        pattern, _sep, index_type = spec.rpartition(" AS ")
        if not pattern:
            pattern, index_type = spec, "VARCHAR"
        database.create_xml_index(f"cli_idx_{position}", "docs", "doc",
                                  pattern.strip(), index_type.strip())
    return count


def run_demo(orders: int, out=sys.stdout) -> None:
    database = Database()
    populate_paper_schema(
        database, orders=orders, customers=max(5, orders // 10),
        products=20,
        profile=OrderProfile(price_low=1, price_high=200))
    query = ("for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
             "//order[lineitem/@price>190] return $i")
    fast = database.xquery(query)
    slow = database.xquery(query, use_indexes=False)
    print(f"collection: {orders} orders", file=out)
    print(f"query: {query}", file=out)
    print(f"with li_price index: {len(fast)} results, "
          f"{fast.stats.docs_scanned} documents touched", file=out)
    print(f"full collection scan: {len(slow)} results, "
          f"{slow.stats.docs_scanned} documents touched", file=out)
    print(database.explain(query), file=out)


def run_lint(database: Database, statement: str,
             as_json: bool = False, out=sys.stdout) -> int:
    """``repro lint``: print findings; exit 1 on error-severity ones."""
    import json

    from .static import lint_statement
    findings = lint_statement(statement, database=database)
    if as_json:
        print(json.dumps([finding.to_dict() for finding in findings],
                         indent=2), file=out)
    elif not findings:
        print("clean: no static errors or pitfall warnings", file=out)
    else:
        for finding in findings:
            print(str(finding), file=out)
    return 1 if any(finding.severity == "error"
                    for finding in findings) else 0


def main(argv: list[str] | None = None, out=sys.stdout) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.command == "demo":
        run_demo(arguments.orders, out=out)
        return 0

    database = Database()
    if arguments.load:
        count = load_directory(database, arguments.load, arguments.index)
        print(f"loaded {count} documents from {arguments.load}",
              file=out)

    if arguments.command == "describe":
        print(database.describe(), file=out)
        return 0
    if arguments.command == "explain":
        print(database.explain(arguments.statement), file=out)
        return 0
    if arguments.command == "advise":
        items = advise(database, arguments.statement)
        if not items:
            print("no advice: the query avoids the catalogued "
                  "pitfalls", file=out)
        for item in items:
            print(str(item), file=out)
        return 0
    if arguments.command == "lint":
        return run_lint(database, arguments.statement,
                        as_json=arguments.json, out=out)
    from .obs.metrics import METRICS, enabled_metrics
    from .obs.trace import Tracer

    use_indexes = not arguments.no_indexes
    with contextlib.ExitStack() as stack:
        if arguments.metrics:
            stack.enter_context(enabled_metrics())

        if arguments.explain_analyze:
            analyzed = database.explain_analyze(arguments.statement,
                                                use_indexes=use_indexes)
            print(analyzed.render(), file=out)
            _write_trace(analyzed.tracer, arguments.trace, out)
        elif arguments.command == "sql":
            tracer = (Tracer(arguments.statement, "sql")
                      if arguments.trace else None)
            result = database.sql(arguments.statement,
                                  use_indexes=use_indexes, tracer=tracer)
            print("\t".join(result.columns), file=out)
            for row in result.serialize_rows():
                print("\t".join("NULL" if value is None else str(value)
                                for value in row), file=out)
            print(result.stats.explain(), file=out)
            _write_trace(tracer, arguments.trace, out)
        else:
            tracer = (Tracer(arguments.statement, "xquery")
                      if arguments.trace else None)
            if getattr(arguments, "workers", 1) > 1:
                result = database.xquery_parallel(
                    arguments.statement, max_workers=arguments.workers,
                    use_indexes=use_indexes, tracer=tracer)
            else:
                result = database.xquery(arguments.statement,
                                         use_indexes=use_indexes,
                                         tracer=tracer)
            for item in result.items:
                print(serialize(item, indent=arguments.indent), file=out)
            print(result.stats.explain(), file=out)
            _write_trace(tracer, arguments.trace, out)

        if arguments.metrics:
            print(METRICS.render(), file=out)
    return 0


def _write_trace(tracer, destination: str | None, out) -> None:
    if tracer is None or destination is None:
        return
    payload = tracer.to_json()
    if destination == "-":
        print(payload, file=out)
    else:
        pathlib.Path(destination).write_text(payload + "\n")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
