"""Schema-lite validation: per-document type annotation."""

from .schema import Schema, TypeDeclaration
from .validator import validate

__all__ = ["Schema", "TypeDeclaration", "validate"]
