"""Schema-lite: declarative type annotation schemas.

The paper's schema-flexibility story (Sections 1, 2, 3.1) needs three
behaviours from validation, all of which this module provides without a
full XML Schema implementation:

* **Per-document association**: a schema is chosen per document at
  insert time, never per column, so one XML column can mix documents
  validated against *conflicting* schema versions (the U.S. vs Canadian
  postal-code scenario of §2.1).
* **Type annotation**: validation attaches ``xs:*`` type annotations and
  typed values to elements/attributes; unvalidated documents stay
  ``xdt:untyped`` / ``xdt:untypedAtomic``.
* **List types**: a declaration may mark a node as list-typed, in which
  case its typed value is a whitespace-separated sequence of atomics —
  the case the §3.10 footnote says DB2's indexes prohibit.

A schema is a set of :class:`TypeDeclaration` rows.  Each declaration
names a *path suffix* — e.g. ``lineitem/@price`` or ``order/custid`` —
and a target type.  The longest matching suffix wins.  ``xsi:type``
attributes on elements override declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaValidationError
from ..xdm.qname import XSI_NS


@dataclass(frozen=True)
class TypeDeclaration:
    """Assign ``type_name`` to nodes whose path ends with ``path``.

    ``path`` is a ``/``-separated suffix of element local names; a final
    ``@name`` component targets an attribute.  ``is_list=True`` makes
    the typed value a whitespace-separated list of ``type_name`` atoms.
    """

    path: str
    type_name: str
    is_list: bool = False

    def __post_init__(self):
        components = tuple(part for part in self.path.split("/") if part)
        if not components:
            raise SchemaValidationError(f"empty declaration path {self.path!r}")
        for component in components[:-1]:
            if component.startswith("@"):
                raise SchemaValidationError(
                    f"attribute step must be last in {self.path!r}")
        object.__setattr__(self, "_components", components)

    @property
    def components(self) -> tuple[str, ...]:
        return self._components  # type: ignore[attr-defined]

    @property
    def targets_attribute(self) -> bool:
        return self.components[-1].startswith("@")

    def matches(self, path_locals: tuple[str, ...]) -> bool:
        """True when ``path_locals`` (root-to-node local names, attribute
        as ``@name``) ends with this declaration's components."""
        own = self.components
        if len(path_locals) < len(own):
            return False
        return path_locals[-len(own):] == own

    @property
    def specificity(self) -> int:
        return len(self.components)


@dataclass
class Schema:
    """A named set of type declarations, associated per document."""

    name: str
    declarations: list[TypeDeclaration] = field(default_factory=list)
    #: Reject documents containing elements/attributes that fail to cast.
    strict: bool = True

    def declare(self, path: str, type_name: str,
                is_list: bool = False) -> "Schema":
        """Add a declaration (returns self for chaining)."""
        self.declarations.append(TypeDeclaration(path, type_name, is_list))
        return self

    def lookup(self, path_locals: tuple[str, ...]) -> TypeDeclaration | None:
        """Most specific declaration matching a node path, if any."""
        best: TypeDeclaration | None = None
        for declaration in self.declarations:
            if declaration.matches(path_locals):
                if best is None or declaration.specificity > best.specificity:
                    best = declaration
        return best


def xsi_type_of(element) -> str | None:
    """The ``xsi:type`` annotation on an element, normalized to the
    engine's canonical ``xs:*`` spelling, or None."""
    attribute = element.attribute("type", XSI_NS)
    if attribute is None:
        return None
    value = attribute.string_value().strip()
    if ":" in value:
        value = "xs:" + value.split(":", 1)[1]
    else:
        value = "xs:" + value
    return value
