"""Per-document validation: walk a tree and attach type annotations."""

from __future__ import annotations

from ..errors import CastError, SchemaValidationError
from ..xdm.atomic import AtomicValue, cast, untyped
from ..xdm.nodes import AttributeNode, DocumentNode, ElementNode, Node
from .schema import Schema, TypeDeclaration, xsi_type_of

_KNOWN_TYPES = {
    "xs:string", "xs:double", "xs:decimal", "xs:integer", "xs:long",
    "xs:boolean", "xs:date", "xs:dateTime", "xdt:untypedAtomic",
}


def validate(document: DocumentNode, schema: Schema) -> None:
    """Validate ``document`` against ``schema`` in place.

    Matching elements/attributes get type annotations and typed values.
    In strict mode a value that cannot be cast raises
    :class:`SchemaValidationError` (modelling DB2 rejecting the insert);
    in lenient mode the node simply stays untyped.
    """
    root = document.root_element
    if root is None:
        raise SchemaValidationError("document has no root element")
    _validate_element(root, (), schema)


def _typed_values(text: str, declaration: TypeDeclaration
                  ) -> list[AtomicValue]:
    if declaration.type_name not in _KNOWN_TYPES:
        raise SchemaValidationError(
            f"unknown type {declaration.type_name!r} in schema")
    if declaration.is_list:
        tokens = text.split()
        return [cast(untyped(token), declaration.type_name)
                for token in tokens]
    return [cast(untyped(text), declaration.type_name)]


def _apply(node: ElementNode | AttributeNode, type_name: str,
           is_list: bool, schema: Schema, path: tuple[str, ...]) -> None:
    declaration = TypeDeclaration("/".join(path) or node.name.local,
                                  type_name, is_list)
    try:
        values = _typed_values(node.string_value(), declaration)
    except CastError as exc:
        if schema.strict:
            raise SchemaValidationError(
                f"value {node.string_value()!r} at "
                f"{'/'.join(path)} does not conform to {type_name}: {exc}"
            ) from exc
        return
    node.set_typed_value(type_name, values)


def _validate_element(element: ElementNode, parent_path: tuple[str, ...],
                      schema: Schema) -> None:
    path = parent_path + (element.name.local,)

    for attribute in element.attributes:
        attribute_path = path + (f"@{attribute.name.local}",)
        declaration = schema.lookup(attribute_path)
        if declaration is not None:
            _apply(attribute, declaration.type_name, declaration.is_list,
                   schema, attribute_path)

    override = xsi_type_of(element)
    declaration = schema.lookup(path)
    has_element_children = any(child.kind == "element"
                               for child in element.children)
    if override is not None and not has_element_children:
        _apply(element, override, False, schema, path)
    elif declaration is not None and not has_element_children:
        _apply(element, declaration.type_name, declaration.is_list,
               schema, path)

    for child in element.children:
        if isinstance(child, ElementNode):
            _validate_element(child, path, schema)
