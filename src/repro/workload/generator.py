"""Deterministic workload generators.

The paper's motivating workloads are "large numbers of small to medium
sized XML documents" over the customer/orders/products schema its
examples use, plus schema-flexible data like RSS feeds.  These
generators produce that data deterministically (seeded), with knobs for
the properties each pitfall experiment needs:

* price distributions with controllable predicate selectivity,
* namespace variants (Section 3.7),
* multi-price lineitems and 250/50-style outliers (Section 3.10),
* mixed-content prices like ``99.50<currency>USD</currency>``
  (Section 3.8),
* U.S. vs Canadian postal codes for schema evolution (Section 2.1),
* RSS-ish feeds with extension elements in foreign namespaces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..schema.schema import Schema

ORDER_NS = "http://ournamespaces.com/order"
CUSTOMER_NS = "http://ournamespaces.com/customer"


@dataclass
class OrderProfile:
    """Tuning knobs for generated order documents."""

    max_lineitems: int = 4
    price_low: float = 1.0
    price_high: float = 200.0
    #: Fraction of orders whose lineitem price is a non-numeric string.
    string_price_fraction: float = 0.0
    #: Fraction of lineitems whose price element has mixed content.
    mixed_text_fraction: float = 0.0
    #: Emit prices as child elements instead of attributes.
    element_prices: bool = False
    #: Wrap everything in the order namespace.
    namespace: str | None = None
    #: Also give each lineitem this many price children (list hazard).
    prices_per_item: int = 1


@dataclass
class Workload:
    """A generated workload: documents plus relational side tables."""

    orders: list[str] = field(default_factory=list)
    customers: list[str] = field(default_factory=list)
    products: list[tuple[str, str]] = field(default_factory=list)


class WorkloadGenerator:
    """Seeded generator for the paper's 3-table schema."""

    def __init__(self, seed: int = 20060912):
        self.random = random.Random(seed)

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------

    def price(self, profile: OrderProfile) -> str:
        value = self.random.uniform(profile.price_low, profile.price_high)
        return f"{value:.2f}"

    def order_document(self, order_id: int, customer_id: int,
                       product_ids: list[str],
                       profile: OrderProfile | None = None) -> str:
        profile = profile or OrderProfile()
        ns = f' xmlns="{profile.namespace}"' if profile.namespace else ""
        lineitem_count = self.random.randint(1, profile.max_lineitems)
        items: list[str] = []
        for _ in range(lineitem_count):
            product = self.random.choice(product_ids)
            quantity = self.random.randint(1, 9)
            prices = [self.price(profile)
                      for _ in range(profile.prices_per_item)]
            if self.random.random() < profile.string_price_fraction:
                prices[0] = f"{prices[0]} USD"
            if profile.element_prices:
                rendered = []
                for price in prices:
                    if self.random.random() < profile.mixed_text_fraction:
                        rendered.append(f"<price>{price}"
                                        f"<currency>USD</currency></price>")
                    else:
                        rendered.append(f"<price>{price}</price>")
                items.append(
                    f"<lineitem quantity=\"{quantity}\">"
                    f"{''.join(rendered)}"
                    f"<product><id>{product}</id></product></lineitem>")
            else:
                items.append(
                    f"<lineitem price=\"{prices[0]}\" "
                    f"quantity=\"{quantity}\">"
                    f"<product><id>{product}</id></product></lineitem>")
        return (f"<order{ns} id=\"{order_id}\">"
                f"<custid>{customer_id}</custid>"
                f"<date>2006-0{self.random.randint(1, 9)}-"
                f"{self.random.randint(10, 28)}</date>"
                f"{''.join(items)}</order>")

    # ------------------------------------------------------------------
    # Customers / products
    # ------------------------------------------------------------------

    def customer_document(self, customer_id: int,
                          namespace: str | None = None,
                          canadian: bool = False) -> str:
        ns = f' xmlns="{namespace}"' if namespace else ""
        if canadian:
            postal = (f"{self.random.choice('KLMNP')}"
                      f"{self.random.randint(0, 9)}"
                      f"{self.random.choice('ABCEGH')} "
                      f"{self.random.randint(0, 9)}"
                      f"{self.random.choice('KLMNP')}"
                      f"{self.random.randint(0, 9)}")
        else:
            postal = f"{self.random.randint(10000, 99999)}"
        nation = 1 if not canadian else 2
        return (f"<customer{ns} cid=\"{customer_id}\">"
                f"<id>{customer_id}</id>"
                f"<name>Customer {customer_id}</name>"
                f"<nation>{nation}</nation>"
                f"<address><city>City {customer_id % 17}</city>"
                f"<postalcode>{postal}</postalcode></address>"
                f"</customer>")

    def product_rows(self, count: int) -> list[tuple[str, str]]:
        adjectives = ["red", "blue", "green", "heavy", "light", "smart"]
        nouns = ["widget", "gadget", "sprocket", "flange", "gear"]
        rows = []
        for index in range(count):
            name = (f"{self.random.choice(adjectives)} "
                    f"{self.random.choice(nouns)} {index}")
            rows.append((f"P{index:05d}", name[:32]))
        return rows

    # ------------------------------------------------------------------
    # Whole workloads
    # ------------------------------------------------------------------

    def workload(self, orders: int = 100, customers: int = 20,
                 products: int = 10,
                 profile: OrderProfile | None = None,
                 canadian_fraction: float = 0.0) -> Workload:
        result = Workload()
        result.products = self.product_rows(products)
        product_ids = [pid for pid, _name in result.products]
        for customer_id in range(1, customers + 1):
            canadian = self.random.random() < canadian_fraction
            result.customers.append(
                self.customer_document(customer_id, canadian=canadian))
        for order_id in range(1, orders + 1):
            customer_id = self.random.randint(1, customers)
            result.orders.append(self.order_document(
                order_id, customer_id, product_ids, profile))
        return result

    # ------------------------------------------------------------------
    # RSS-ish extensible documents (the §1 "killer app")
    # ------------------------------------------------------------------

    def rss_feed(self, feed_id: int, item_count: int = 5) -> str:
        items = []
        for index in range(item_count):
            extras = ""
            if self.random.random() < 0.4:
                extras += (f'<dc:creator xmlns:dc='
                           f'"http://purl.org/dc/elements/1.1/">'
                           f"author{self.random.randint(1, 9)}"
                           f"</dc:creator>")
            if self.random.random() < 0.3:
                extras += (f'<geo:lat xmlns:geo='
                           f'"http://www.w3.org/2003/01/geo/">'
                           f"{self.random.uniform(-90, 90):.3f}</geo:lat>")
            items.append(
                f"<item><title>Feed {feed_id} item {index}</title>"
                f"<pubDate>2006-09-{self.random.randint(10, 28)}"
                f"</pubDate>{extras}</item>")
        return (f"<rss version=\"2.0\"><channel>"
                f"<title>Channel {feed_id}</title>"
                f"{''.join(items)}</channel></rss>")


# ---------------------------------------------------------------------------
# Schemas for the evolution scenario (§2.1 postal codes)
# ---------------------------------------------------------------------------

def us_customer_schema() -> Schema:
    """Version 1: numeric postal codes (U.S. ZIP)."""
    return (Schema("customer-v1")
            .declare("customer/id", "xs:double")
            .declare("customer/nation", "xs:double")
            .declare("address/postalcode", "xs:double"))


def intl_customer_schema() -> Schema:
    """Version 2: string postal codes (Canada and beyond)."""
    return (Schema("customer-v2")
            .declare("customer/id", "xs:double")
            .declare("customer/nation", "xs:double")
            .declare("address/postalcode", "xs:string"))


def populate_paper_schema(database, orders: int = 100,
                          customers: int = 20, products: int = 10,
                          profile: OrderProfile | None = None,
                          seed: int = 20060912,
                          with_indexes: bool = True) -> Workload:
    """Create and fill the paper's 3-table schema.

    Returns the generated workload.  With ``with_indexes``, creates the
    paper's running-example indexes (``li_price``, ``o_custid``,
    ``c_custid``).
    """
    generator = WorkloadGenerator(seed)
    workload = generator.workload(orders, customers, products, profile)
    database.create_table("customer", [("cid", "INTEGER"),
                                       ("cdoc", "XML")])
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("orddoc", "XML")])
    database.create_table("products", [("id", "VARCHAR(13)"),
                                       ("name", "VARCHAR(32)")])
    for index, document in enumerate(workload.customers, start=1):
        database.insert("customer", {"cid": index, "cdoc": document})
    for index, document in enumerate(workload.orders, start=1):
        database.insert("orders", {"ordid": index, "orddoc": document})
    for product_id, name in workload.products:
        database.insert("products", {"id": product_id, "name": name})
    if with_indexes:
        database.create_xml_index("li_price", "orders", "orddoc",
                                  "//lineitem/@price", "DOUBLE")
        database.create_xml_index("o_custid", "orders", "orddoc",
                                  "//custid", "DOUBLE")
        database.create_xml_index("c_custid", "customer", "cdoc",
                                  "/customer/id", "DOUBLE")
    return workload
