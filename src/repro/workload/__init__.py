"""Workload generation for experiments and benchmarks."""

from .generator import (OrderProfile, Workload, WorkloadGenerator,
                        intl_customer_schema, populate_paper_schema,
                        us_customer_schema)
from .paperqueries import (PAPER_INDEX_DDL, PAPER_QUERIES,
                           load_paper_fixture, run_paper_query)

__all__ = ["OrderProfile", "Workload", "WorkloadGenerator",
           "intl_customer_schema", "populate_paper_schema",
           "us_customer_schema", "PAPER_INDEX_DDL", "PAPER_QUERIES",
           "load_paper_fixture", "run_paper_query"]
