"""Workload generation for experiments and benchmarks."""

from .generator import (OrderProfile, Workload, WorkloadGenerator,
                        intl_customer_schema, populate_paper_schema,
                        us_customer_schema)

__all__ = ["OrderProfile", "Workload", "WorkloadGenerator",
           "intl_customer_schema", "populate_paper_schema",
           "us_customer_schema"]
