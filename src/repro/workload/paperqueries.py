"""The paper's 30 numbered queries and its engineered fixture data.

One canonical home for what was previously embedded in the test suite:
the fixture documents that hit every edge the paper discusses (mixed-
content prices, string prices, multi-price elements, missing prices),
the running-example index DDL, and the exact text of Queries 1–30.

Three consumers share it:

* ``tests/conftest.py`` builds its ``paper_db`` / ``indexed_db``
  fixtures from :func:`load_paper_fixture`;
* the CLI's ``repro ingest`` / ``repro q1`` … ``repro q30`` commands
  answer paper queries from a durable data directory;
* the crash-matrix test uses :func:`run_paper_query`'s canonical
  output as the byte-identity oracle between a recovered database and
  an uncrashed one.

:func:`run_paper_query` returns a *canonical string* — serialized
items (or tab-separated SQL rows) with expected engine errors rendered
as ``error: <Type>: <message>`` — so equality of two databases' answer
sets is plain string equality.
"""

from __future__ import annotations

from ..errors import ReproError
from ..xmlio.serializer import serialize

__all__ = ["PAPER_ORDERS", "PAPER_CUSTOMERS", "PAPER_PRODUCTS",
           "PAPER_INDEX_DDL", "PAPER_QUERIES", "load_paper_fixture",
           "run_paper_query"]

#: (ordid, document) — the running examples from the paper, §2.2/§3.
PAPER_ORDERS = [
    # Doc 1: the §2.2 example with no price attribute at all.
    (1, "<order><date>January 1, 2001</date>"
        "<lineitem><product><id>widget</id></product></lineitem>"
        "</order>"),
    # Doc 2: the §2.2 example with price 99.50.
    (2, "<order><date>January 1, 2002</date>"
        "<lineitem price=\"99.50\"><product><id>gadget</id></product>"
        "</lineitem></order>"),
    # Doc 3: qualifying order (price 150) plus a cheap item, custid.
    (3, "<order><custid>1001</custid>"
        "<lineitem price=\"150\" quantity=\"2\">"
        "<product><id>17</id></product></lineitem>"
        "<lineitem price=\"90\"><product><id>18</id></product>"
        "</lineitem></order>"),
    # Doc 4: string price "20 USD" (the §3.1 example).
    (4, "<order><custid>1002</custid>"
        "<lineitem price=\"20 USD\"><product><id>19</id></product>"
        "</lineitem></order>"),
    # Doc 5: element prices with the §3.10 multi-price 250/50 hazard.
    (5, "<order><custid>1001</custid>"
        "<lineitem><price>250</price><price>50</price>"
        "<product><id>20</id></product></lineitem></order>"),
    # Doc 6: the §3.8 mixed-content price (99.50USD as string value).
    (6, "<order><date>January 1, 2003</date><custid>1003</custid>"
        "<lineitem><price>99.50<currency>USD</currency></price>"
        "<product><id>21</id></product></lineitem></order>"),
    # Doc 7: price in range, element form.
    (7, "<order><custid>1002</custid>"
        "<lineitem><price>120</price><product><id>17</id></product>"
        "</lineitem></order>"),
]

PAPER_CUSTOMERS = [
    (1, "<customer><id>1001</id><name>Ann</name><nation>1</nation>"
        "</customer>"),
    (2, "<customer><id>1002</id><name>Bob</name><nation>2</nation>"
        "</customer>"),
    (3, "<customer><id>1003</id><name>Cyd</name><nation>1</nation>"
        "</customer>"),
]

PAPER_PRODUCTS = [
    ("17", "trusty widget"),
    ("18", "spare gadget"),
    ("19", "imported flange"),
    ("20", "bulk sprocket"),
    ("21", "mixed bundle"),
]

#: The running-example indexes (li_price, o_custid, c_custid).
PAPER_INDEX_DDL = [
    "CREATE INDEX li_price ON orders(orddoc) "
    "USING XMLPATTERN '//lineitem/@price' AS DOUBLE",
    "CREATE INDEX o_custid ON orders(orddoc) "
    "USING XMLPATTERN '//custid' AS DOUBLE",
    "CREATE INDEX c_custid ON customer(cdoc) "
    "USING XMLPATTERN '/customer/id' AS DOUBLE",
]


def load_paper_fixture(database, with_indexes: bool = True) -> None:
    """Create the 3-table paper schema and load the fixture documents.

    Works against any Database-API object (including
    ``DurableDatabase``)."""
    database.create_table("customer", [("cid", "INTEGER"),
                                       ("cdoc", "XML")])
    database.create_table("orders", [("ordid", "INTEGER"),
                                     ("orddoc", "XML")])
    database.create_table("products", [("id", "VARCHAR(13)"),
                                       ("name", "VARCHAR(32)")])
    for ordid, document in PAPER_ORDERS:
        database.insert("orders", {"ordid": ordid, "orddoc": document})
    for cid, document in PAPER_CUSTOMERS:
        database.insert("customer", {"cid": cid, "cdoc": document})
    for product_id, name in PAPER_PRODUCTS:
        database.insert("products", {"id": product_id, "name": name})
    if with_indexes:
        for ddl in PAPER_INDEX_DDL:
            database.execute(ddl)


_XMLCOL = "db2-fn:xmlcolumn('ORDERS.ORDDOC')"
_VIEW = ("let $view := for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "/order/lineitem return <item>{ $i/@quantity, "
         "<pid>{ $i/product/id/data(.) }</pid> }</item> ")

#: query number -> ("xquery" | "sql", statement text).
PAPER_QUERIES: dict[int, tuple[str, str]] = {
    1: ("xquery", f"for $i in {_XMLCOL}"
        "//order[lineitem/@price>100] return $i"),
    2: ("xquery", f"for $i in {_XMLCOL}"
        "//order[lineitem/@*>100] return $i"),
    3: ("xquery", f"for $i in {_XMLCOL}"
        '//order[lineitem/@price > "100" ] return $i'),
    4: ("xquery",
        'for $i in db2-fn:xmlcolumn("ORDERS.ORDDOC")/order '
        'for $j in db2-fn:xmlcolumn("CUSTOMER.CDOC")/customer '
        "where $i/custid/xs:double(.) = $j/id/xs:double(.) "
        "return $i"),
    5: ("sql", "SELECT XMLQuery('$order//lineitem[@price > 100]' "
        'passing orddoc as "order") FROM orders'),
    6: ("sql", "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")"
        "//lineitem[@price > 100] '))"),
    7: ("xquery", f"{_XMLCOL}//lineitem[@price > 100]"),
    8: ("sql", "SELECT ordid, orddoc FROM orders WHERE "
        "XMLExists('$order//lineitem[@price > 100]' "
        'passing orddoc as "order")'),
    9: ("sql", "SELECT ordid, orddoc FROM orders WHERE "
        "XMLExists('$order//lineitem/@price > 100' "
        'passing orddoc as "order")'),
    10: ("sql",
         "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' "
         'passing orddoc as "order") FROM orders WHERE '
         "XMLExists('$order//lineitem[@price > 100]' "
         'passing orddoc as "order")'),
    11: ("sql", "SELECT o.ordid, t.lineitem FROM orders o, "
         "XMLTable('$order//lineitem[@price > 100]' "
         'passing o.orddoc as "order" '
         "COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)"),
    12: ("sql", "SELECT o.ordid, t.lineitem, t.price FROM orders o, "
         "XMLTable('$order//lineitem' passing o.orddoc as \"order\" "
         "COLUMNS \"lineitem\" XML BY REF PATH '.', "
         "\"price\" DECIMAL(6,3) PATH '@price[. > 100]') "
         "as t(lineitem, price)"),
    13: ("sql", "SELECT p.name, XMLQuery('$order//lineitem' "
         'passing orddoc as "order") '
         "FROM products p, orders o "
         "WHERE XMLExists('$order//lineitem/product[id eq $pid]' "
         'passing o.orddoc as "order", p.id as "pid")'),
    14: ("sql", "SELECT p.name FROM products p, orders o "
         "WHERE ordid = 4 AND p.id = XMLCast(XMLQuery("
         "'$order//lineitem/product/id' passing o.orddoc as \"order\") "
         "as VARCHAR(13))"),
    15: ("sql", "SELECT c.cid, XMLQuery('$order//lineitem' "
         'passing o.orddoc as "order") '
         "FROM orders o, customer c, "
         "WHERE XMLCast(XMLQuery('$order/order/custid' "
         'passing o.orddoc as "order") as DOUBLE) = '
         "XMLCast(XMLQuery('$cust/customer/id' "
         'passing c.cdoc as "cust") as DOUBLE)'),
    16: ("sql", "SELECT c.cid, XMLQuery('$order//lineitem' "
         'passing o.orddoc as "order") '
         "FROM customer c, orders o "
         "WHERE XMLExists('$order/order[custid/xs:double(.) = "
         "$cust/customer/id/xs:double(.)]' "
         'passing o.orddoc as "order", c.cdoc as "cust")'),
    17: ("xquery", f"for $doc in {_XMLCOL} "
         "for $item in $doc//lineitem[@price > 100] "
         "return <result>{$item}</result>"),
    18: ("xquery", f"for $doc in {_XMLCOL} "
         "let $item:= $doc//lineitem[@price > 100] "
         "return <result>{$item}</result>"),
    19: ("xquery", f"for $ord in {_XMLCOL}/order "
         "return <result>{$ord/lineitem[@price > 100]}</result>"),
    20: ("xquery", f"for $ord in {_XMLCOL}/order "
         "where $ord/lineitem/@price > 100 "
         "return <result>{$ord/lineitem}</result>"),
    21: ("xquery", f"for $ord in {_XMLCOL}/order "
         "let $price := $ord/lineitem/@price "
         "where $price > 100 "
         "return <result>{$ord/lineitem}</result>"),
    22: ("xquery", f"for $ord in {_XMLCOL}/order "
         "return $ord/lineitem[@price > 100]"),
    23: ("xquery", f"{_XMLCOL}/order/lineitem"),
    24: ("xquery", f"for $ord in (for $o in {_XMLCOL}/order "
         "return <my_order>{$o/*}</my_order>) "
         "return $ord/my_order"),
    # Query 25 raises XPDY0050 by design; the canonical output records
    # the error.
    25: ("xquery", "let $order := <neworder>{"
         f"{_XMLCOL}/order[custid > 1001]"
         "}</neworder> return $order[//customer/name]"),
    26: ("xquery", _VIEW +
         "for $j in $view where $j/pid = '17' return $j"),
    27: ("xquery", "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')"
         "/order/lineitem "
         "where $i/product/id = '17' "
         "return $i/@price"),
    # Query 28 is the paper's namespace query; over the namespace-less
    # fixture documents its answer is deterministically empty, which is
    # exactly what a byte-identity oracle needs.
    28: ("xquery",
         'declare default element namespace '
         '"http://ournamespaces.com/order"; '
         'declare namespace c="http://ournamespaces.com/customer"; '
         'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
         "/order[lineitem/@price > 1000] "
         'for $cust in db2-fn:xmlcolumn("CUSTOMER.CDOC")'
         "/c:customer[c:nation = 1] "
         "where $ord/custid = $cust/id return $ord"),
    29: ("xquery", 'for $ord in db2-fn:xmlcolumn("ORDERS.ORDDOC")'
         '/order[lineitem/price/text() = "99.50"] return $ord'),
    30: ("xquery", f"for $i in {_XMLCOL}"
         "//order[lineitem[@price>100 and @price<200]] return $i"),
}


def run_paper_query(database, number: int) -> str:
    """Canonical output of paper query ``number`` against ``database``.

    Engine errors the paper predicts (e.g. Query 25's XPDY0050) are
    part of the canonical answer, rendered deterministically."""
    kind, statement = PAPER_QUERIES[number]
    try:
        if kind == "sql":
            result = database.sql(statement)
            lines = ["\t".join(result.columns)]
            for row in result.serialize_rows():
                lines.append("\t".join(
                    "NULL" if value is None else str(value)
                    for value in row))
            return "\n".join(lines)
        result = database.xquery(statement)
        return "\n".join(serialize(item) for item in result.items)
    except ReproError as error:
        return f"error: {type(error).__name__}: {error}"
