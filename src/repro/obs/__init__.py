"""Engine-wide observability: metrics, tracing, EXPLAIN ANALYZE.

The paper's argument is built on *observing* the performance cliff
between index-eligible and ineligible queries (§2.2, §3.1–3.10).  This
package supplies the runtime evidence:

* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms (index probes, B+Tree node visits,
  path-summary hits, query-cache hit ratio, documents scanned).
  Disabled by default; every instrumented call site in the engine is
  guarded so the disabled cost is one attribute load and a branch.
* :mod:`repro.obs.trace` — span-based structured tracing with nested
  per-stage timings (parse → plan → index probe → residual predicate →
  serialize), emitted as JSON.
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE: execute the plan and
  annotate each operator with its actual cardinality, actual time, and
  estimated-vs-actual error, making planner misestimates (e.g. the
  path-summary coverage caps) visible.
"""

from .metrics import METRICS, MetricsRegistry, enabled_metrics
from .trace import Span, Tracer, validate_trace

__all__ = [
    "METRICS", "MetricsRegistry", "enabled_metrics",
    "Span", "Tracer", "validate_trace",
    "explain_analyze",
]


def __getattr__(name: str):
    # explain imports the planner; load lazily to keep obs import-light
    # (storage modules import obs.metrics at module import time).
    if name == "explain_analyze":
        from .explain import explain_analyze
        return explain_analyze
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
