"""EXPLAIN ANALYZE: run the plan, annotate operators with actuals.

``EXPLAIN`` prints what the planner *intends*; ``EXPLAIN ANALYZE``
executes the statement under a :class:`repro.obs.trace.Tracer` and
turns the span tree into an operator tree where every operator carries

* **actual cardinality** (documents for index probes, rows/items for
  the statement),
* **actual wall time**, and
* **estimated-vs-actual error** where the planner produced an estimate
  (index probes: histogram selectivity × path-summary coverage cap).

The q-error convention is used for estimation error:
``max(actual/estimated, estimated/actual)`` — 1.0 is a perfect
estimate, and the factor reads the same whether the planner over- or
under-estimated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .trace import Span, Tracer

__all__ = ["OperatorNode", "AnalyzedStatement", "explain_analyze"]

#: Span attributes lifted into first-class OperatorNode fields.
_LIFTED = ("actual_rows", "estimated_rows", "unit")


@dataclass
class OperatorNode:
    """One plan operator with its measured runtime behaviour."""

    name: str
    time_ms: float
    actual_rows: float | None = None
    estimated_rows: float | None = None
    unit: str = "rows"
    attrs: dict = field(default_factory=dict)
    children: list["OperatorNode"] = field(default_factory=list)

    @classmethod
    def from_span(cls, span: Span, origin: float = 0.0) -> "OperatorNode":
        attrs = dict(span.attrs)
        lifted = {key: attrs.pop(key) for key in _LIFTED if key in attrs}
        node = cls(
            name=span.name,
            time_ms=round(span.duration * 1000.0, 4),
            actual_rows=lifted.get("actual_rows"),
            estimated_rows=lifted.get("estimated_rows"),
            unit=lifted.get("unit", "rows"),
            attrs=attrs,
            children=[cls.from_span(child) for child in span.children])
        return node

    def q_error(self) -> float | None:
        """max(actual/est, est/actual); None when either is unknown."""
        if self.estimated_rows is None or self.actual_rows is None:
            return None
        estimated = max(float(self.estimated_rows), 1e-9)
        actual = max(float(self.actual_rows), 1e-9)
        return max(actual / estimated, estimated / actual)

    def find(self, name: str) -> list["OperatorNode"]:
        """All descendants (and self) with the given operator name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> dict:
        error = self.q_error()
        return {
            "operator": self.name,
            "time_ms": self.time_ms,
            "actual_rows": self.actual_rows,
            "estimated_rows": self.estimated_rows,
            "q_error": round(error, 3) if error is not None else None,
            "unit": self.unit,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        parts = []
        if self.estimated_rows is not None:
            parts.append(f"est {self.unit}={self.estimated_rows:g}")
        if self.actual_rows is not None:
            parts.append(f"actual {self.unit}={self.actual_rows:g}")
        error = self.q_error()
        if error is not None:
            parts.append(f"err={error:.2f}x")
        for key, value in self.attrs.items():
            parts.append(f"{key}={value}")
        parts.append(f"time={self.time_ms:.3f} ms")
        line = "  " * indent + f"-> {self.name}  [{', '.join(parts)}]"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class AnalyzedStatement:
    """EXPLAIN ANALYZE output: result + operator tree + raw trace."""

    statement: str
    language: str             # 'xquery' | 'sql'
    root: OperatorNode
    items: list              # XQuery items, or SQL row tuples
    columns: list[str]       # SQL column names ([] for XQuery)
    stats: object            # planner ExecutionStats
    tracer: Tracer

    def __len__(self) -> int:
        return len(self.items)

    def operators(self, name: str) -> list[OperatorNode]:
        return self.root.find(name)

    def to_dict(self) -> dict:
        return {
            "statement": self.statement,
            "language": self.language,
            "plan": self.root.to_dict(),
            "trace": self.tracer.to_dict(),
        }

    def render(self) -> str:
        lines = [f"EXPLAIN ANALYZE ({self.language})",
                 f"statement: {self.statement}"]
        lines.append(self.root.render())
        return "\n".join(lines)


def _root_operator(tracer: Tracer, name: str,
                   actual_rows: int, unit: str) -> OperatorNode:
    root = OperatorNode(name=name,
                        time_ms=round(tracer.total_seconds() * 1000.0, 4),
                        actual_rows=actual_rows, unit=unit)
    root.children = [OperatorNode.from_span(span)
                     for span in tracer.roots]
    return root


def explain_analyze(database, statement: str,
                    use_indexes: bool = True) -> AnalyzedStatement:
    """Execute ``statement`` (XQuery or SQL) with full instrumentation.

    Estimation (cost-model histograms, path-summary coverage caps) is
    computed *only* on this path — plain executions never pay for it.

    When the database carries a ``cost_calibration`` (see
    :mod:`repro.autopilot.calibrate`), every index-scan operator's
    (estimated, actual) pair is fed back into it, closing the
    cost-model feedback loop instead of discarding the q-errors.
    """
    head = statement.lstrip().upper()
    if head.startswith(("SELECT", "VALUES", "INSERT", "DELETE")):
        analyzed = _analyze_sql(database, statement, use_indexes)
    else:
        analyzed = _analyze_xquery(database, statement, use_indexes)
    _feed_calibration(database, analyzed)
    return analyzed


def _feed_calibration(database, analyzed: AnalyzedStatement) -> None:
    calibration = getattr(database, "cost_calibration", None)
    if calibration is None:
        return
    for node in analyzed.operators("index-scan"):
        if node.estimated_rows is not None and \
                node.actual_rows is not None:
            calibration.observe(float(node.estimated_rows),
                                float(node.actual_rows))


def _analyze_xquery(database, statement: str,
                    use_indexes: bool) -> AnalyzedStatement:
    from ..planner.plan import execute_xquery
    from ..xmlio.serializer import serialize_sequence

    tracer = Tracer(statement, "xquery")
    result = execute_xquery(database, statement, use_indexes=use_indexes,
                            tracer=tracer)
    with tracer.span("serialize") as span:
        text = serialize_sequence(result.items)
        span.set(actual_rows=len(result.items), unit="items",
                 bytes=len(text.encode("utf-8", "replace")))
    root = _root_operator(tracer, "xquery", len(result.items), "items")
    return AnalyzedStatement(statement, "xquery", root, result.items,
                             [], result.stats, tracer)


def _analyze_sql(database, statement: str,
                 use_indexes: bool) -> AnalyzedStatement:
    from ..sql.executor import execute_sql

    tracer = Tracer(statement, "sql")
    result = execute_sql(database, statement, use_indexes=use_indexes,
                         tracer=tracer)
    with tracer.span("serialize") as span:
        rendered = result.serialize_rows()
        span.set(actual_rows=len(rendered), unit="rows")
    root = _root_operator(tracer, "sql", len(result.rows), "rows")
    return AnalyzedStatement(statement, "sql", root, list(result.rows),
                             list(result.columns), result.stats, tracer)
