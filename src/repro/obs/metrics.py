"""Process-wide metrics registry: counters, gauges, histograms.

One global :data:`METRICS` instance is shared by every engine layer.
It is **disabled by default**: every instrumented call site is written
as ``if METRICS.enabled: METRICS.inc(...)`` so the disabled cost is a
single attribute load and a falsy branch — benchmark timings with
instrumentation off must not regress.

Metric names are dotted strings, stable across releases (they are part
of the trace/EXPLAIN ANALYZE contract documented in EXPERIMENTS.md):

================================  =========================================
``querycache.hits`` / ``.misses`` compiled-query cache outcomes
``querycache.evictions``          LRU entries dropped at capacity
``btree.node_visits``             interior+leaf nodes touched by descents
``btree.leaf_scans``              leaves walked by range scans
``index.probes``                  XML index range probes executed
``index.entries_scanned``         index entries touched across all probes
``relindex.lookups``              relational index lookups
``pathsummary.builds``            per-document summaries (re)built
``pathsummary.hits``              step chains answered from a summary
``docs.scanned``                  XML documents materialized from columns
``rows.scanned``                  relational rows examined
``bufferpool.hits``               accesses that found the tree resident
``bufferpool.misses``             accesses that had to re-materialize
``bufferpool.evictions``          documents evicted by the LRU budget
``bufferpool.spills``             column payloads written to spool files
``bufferpool.loads``              column payloads read back from spool
``bufferpool.resident_bytes``     (gauge) bytes charged against the
                                  buffer-pool budget
``columnar.materializations``     XDM trees rebuilt from column stores
``queries.xquery`` / ``.sql``     statements executed
``query.seconds`` (histogram)     end-to-end statement wall time
``rwlock.read_acquires``          database read-lock acquisitions
``rwlock.write_acquires``         database write-lock acquisitions
``rwlock.read_wait_seconds``      contended reader waits (histogram)
``rwlock.write_wait_seconds``     contended writer waits (histogram)
``parallel.fanouts``              partition-parallel executions
``parallel.partitions``           worker partitions across all fanouts
``parallel.serial_fallbacks``     parallel entry points that ran serially
``parallel.fallback_reason.<r>``  fallbacks broken down by reason (see
                                  ``repro.planner.parallel.FALLBACK_REASONS``)
``parallel.seconds`` (histogram)  partition-parallel wall time
``process.fanouts``               process-pool partition executions
``process.partitions``            replica partitions across all fanouts
``process.seconds`` (histogram)   process-pool fan-out wall time
``replication.shipped_records``   WAL records streamed to replicas
``replication.bootstrap_seconds`` checkpoint-ship + replica recovery time
``replication.replica_lag_records`` (gauge) required minus applied LSN at
                                  the last fan-out (0 = replicas current)
``wal.appends``                   logical records appended to the WAL
``wal.fsyncs``                    WAL fsync calls (group commit batches)
``wal.bytes_written``             encoded record bytes written
``wal.torn_bytes_truncated``      torn-tail bytes discarded by recovery
``checkpoint.writes``             atomic checkpoints written
``checkpoint.bytes_written``      serialized checkpoint bytes
``checkpoint.loads``              checkpoints read back during recovery
``recovery.runs``                 database-directory recoveries
``recovery.records_replayed``     WAL records re-applied past checkpoint
``recovery.records_skipped``      stale records below the checkpoint LSN
``recovery.seconds`` (histogram)  end-to-end recovery wall time
``server.connections``            TCP connections accepted by ``serve``
``server.sessions``               (gauge) sessions currently open
``server.queries``                statements dispatched by the server
``server.admitted``               statements that won an execution slot
``server.shed``                   statements rejected by admission
                                  control (queue full, SQLSTATE 53300)
``server.queue_depth``            (gauge) statements waiting for a slot
``server.client_disconnects``     clients that vanished mid-query (the
                                  running statement is cancelled)
``server.query_seconds``          (histogram) per-statement wall time
                                  as the server observed it
``parallel.workers_demoted``      pool workers forcibly reaped (hung,
                                  EOF, or send failure)
``bufferpool.spill_deletes``      spool files deleted when their
                                  document was discarded
``sanitizer.violations``          total runtime-sanitizer findings
                                  (``REPRO_SANITIZE=1``; always 0 in a
                                  healthy run)
``sanitizer.lock_order``          lock-order cycles seen at acquire time
``sanitizer.upgrade``             read→write upgrade attempts observed
``sanitizer.fork``                locks held across a Process fork
``sanitizer.snapshot_mutation``   in-place mutation of a pinned
                                  snapshot's row list
``sanitizer.wal_order``           WAL appends outside the writer section
                                  or with non-contiguous LSNs
``autopilot.observations``        statements recorded by the workload
                                  profiler
``autopilot.candidates``          (gauge) index candidates at the last
                                  advise cycle
``autopilot.builds``              indexes built online by ``apply``
``autopilot.calibration_factor``  (gauge) cost-model correction factor
                                  after the last calibration pass
``autopilot.policy_cycles``       background auto-index policy cycles
``autopilot.policy_errors``       policy cycles that swallowed an error
                                  (always 0 in a healthy run)
================================  =========================================

All mutation goes through one :class:`threading.Lock`; the compiled
query cache takes its own lock first and then calls in here, never the
reverse, so the ordering is acyclic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["MetricsRegistry", "METRICS", "enabled_metrics"]


class _Histogram:
    """Streaming count/sum/min/max — enough for per-stage timings."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "avg": (self.total / self.count) if self.count else None,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    ``enabled`` is a plain attribute read without the lock: call sites
    use it as a cheap guard, and a stale read merely delays the first
    recorded sample by one operation — acceptable for process metrics.
    """

    __slots__ = ("enabled", "_lock", "_counters", "_gauges", "_histograms")

    def __init__(self):
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- recording ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    # -- reading --------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A point-in-time copy: ``{"counters", "gauges", "histograms"}``.

        Derived ratios that tests and dashboards always want are
        included under ``"derived"`` (e.g. the query-cache hit ratio).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {name: histogram.as_dict()
                          for name, histogram in self._histograms.items()}
        derived: dict[str, float] = {}
        cache_total = (counters.get("querycache.hits", 0) +
                       counters.get("querycache.misses", 0))
        if cache_total:
            derived["querycache.hit_ratio"] = (
                counters.get("querycache.hits", 0) / cache_total)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "derived": derived}

    def render(self) -> str:
        """Human-readable snapshot, one ``name value`` per line."""
        snap = self.snapshot()
        lines = ["metrics:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name} {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            lines.append(f"  {name} {snap['gauges'][name]}")
        for name in sorted(snap["histograms"]):
            entry = snap["histograms"][name]
            lines.append(
                f"  {name} count={entry['count']} sum={entry['sum']:.6f} "
                f"min={entry['min']:.6f} max={entry['max']:.6f}")
        for name in sorted(snap["derived"]):
            lines.append(f"  {name} {snap['derived'][name]:.3f}")
        return "\n".join(lines)


#: The process-wide registry every engine layer records into.
METRICS = MetricsRegistry()


@contextmanager
def enabled_metrics(registry: MetricsRegistry = METRICS, *,
                    fresh: bool = True):
    """Enable ``registry`` for the duration of a block (tests, CLI).

    ``fresh=True`` resets collected values on entry so the block
    observes only its own activity.  The previous enabled state is
    restored on exit.
    """
    was_enabled = registry.enabled
    if fresh:
        registry.reset()
    registry.enable()
    try:
        yield registry
    finally:
        if not was_enabled:
            registry.disable()
