"""Span-based structured tracing with nested per-stage timings.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
execution stage (parse → plan → index probe → residual predicate →
evaluate → serialize) — and serializes them as JSON.  Tracing is
strictly opt-in: the engine entry points accept ``tracer=None`` and
skip all span bookkeeping when no tracer is passed, so the disabled
cost is a ``None`` check.

Trace JSON schema (version 1)::

    {
      "trace_version": 1,
      "statement": "<query text>",
      "language": "xquery" | "sql",
      "total_ms": 12.3,
      "spans": [
        {
          "name": "plan",
          "start_ms": 0.01,          # offset from trace start
          "duration_ms": 0.85,
          "attrs": {"probes": 2},    # JSON-scalar values only
          "children": [ ...same shape... ]
        }
      ]
    }

:func:`validate_trace` checks an arbitrary object against this schema
and returns a list of problems (empty = valid); CI's smoke step and
the unit tests both call it.
"""

from __future__ import annotations

import json
import time

__all__ = ["Span", "Tracer", "TRACE_VERSION", "validate_trace"]

TRACE_VERSION = 1


class Span:
    """One timed stage; children are stages nested inside it."""

    __slots__ = ("name", "attrs", "start", "duration", "children")

    def __init__(self, name: str, start: float, **attrs):
        self.name = name
        self.attrs: dict[str, object] = attrs
        self.start = start
        self.duration: float = 0.0
        self.children: list["Span"] = []

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered while the span runs."""
        self.attrs.update(attrs)
        return self

    def to_dict(self, origin: float) -> dict:
        return {
            "name": self.name,
            "start_ms": round((self.start - origin) * 1000.0, 4),
            "duration_ms": round(self.duration * 1000.0, 4),
            "attrs": dict(self.attrs),
            "children": [child.to_dict(origin) for child in self.children],
        }


class Tracer:
    """Collects a span tree for one statement execution."""

    def __init__(self, statement: str = "", language: str = "xquery",
                 clock=time.perf_counter):
        self.statement = statement
        self.language = language
        self._clock = clock
        self._origin = clock()
        self._stack: list[Span] = []
        self.roots: list[Span] = []

    def span(self, name: str, **attrs) -> "_SpanContext":
        """Context manager opening a nested span::

            with tracer.span("plan", candidates=3) as span:
                ...
                span.set(probes=len(probes))
        """
        return _SpanContext(self, name, attrs)

    def attach(self, other: "Tracer", **attrs) -> None:
        """Graft another tracer's root spans under the current span.

        A Tracer is not thread-safe (one mutable ``_stack``), so the
        partition-parallel executor gives each worker its own Tracer
        and the orchestrator attaches the finished trees afterwards,
        stamping every grafted root with ``attrs`` (e.g. ``worker=2``)
        for per-worker span attribution.  Worker spans keep their own
        wall-clock ``start`` values, which share this tracer's clock
        origin because both tracers use ``time.perf_counter``.
        """
        for root in other.roots:
            root.attrs.update(attrs)
            if self._stack:
                self._stack[-1].children.append(root)
            else:
                self.roots.append(root)

    def attach_remote(self, spans: list[dict], **attrs) -> None:
        """Graft span *dicts* shipped from another process.

        The process-pool workers cannot send Tracer objects across the
        pipe, so they ship ``to_dict()["spans"]`` payloads instead.
        ``perf_counter`` origins are not comparable between processes,
        so each remote tree keeps its own worker-relative ``start_ms``
        offsets, rebased onto this tracer's origin — within one remote
        tree the relative timings are exact; across processes only
        durations are meaningful.  Every grafted root is stamped with
        ``attrs`` (e.g. ``worker=2``), mirroring :meth:`attach`.
        """
        for payload in spans:
            span = _span_from_dict(payload, self._origin)
            span.attrs.update(attrs)
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)

    # -- internal -------------------------------------------------------

    def _open(self, name: str, attrs: dict) -> Span:
        span = Span(name, self._clock(), **attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration = self._clock() - span.start
        # Tolerate out-of-order closes (an exception unwinding through
        # several spans): pop up to and including the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # -- output ---------------------------------------------------------

    def total_seconds(self) -> float:
        return self._clock() - self._origin

    def to_dict(self) -> dict:
        return {
            "trace_version": TRACE_VERSION,
            "statement": self.statement,
            "language": self.language,
            "total_ms": round(self.total_seconds() * 1000.0, 4),
            "spans": [span.to_dict(self._origin) for span in self.roots],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=False, default=str)


def _span_from_dict(payload: dict, origin: float) -> Span:
    """Rebuild a Span tree from its ``to_dict`` form (see
    :meth:`Tracer.attach_remote`)."""
    span = Span(payload["name"],
                origin + payload["start_ms"] / 1000.0,
                **payload.get("attrs", {}))
    span.duration = payload["duration_ms"] / 1000.0
    span.children = [_span_from_dict(child, origin)
                     for child in payload.get("children", [])]
    return span


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc is not None:
            self._span.attrs.setdefault("error", repr(exc))
        self._tracer._close(self._span)


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------

_SCALARS = (str, int, float, bool, type(None))


def _validate_span(span, path: str, problems: list[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span must be an object")
        return
    for key, kind in (("name", str), ("start_ms", (int, float)),
                      ("duration_ms", (int, float)), ("attrs", dict),
                      ("children", list)):
        if key not in span:
            problems.append(f"{path}: missing {key!r}")
        elif not isinstance(span[key], kind):
            problems.append(f"{path}.{key}: expected "
                            f"{getattr(kind, '__name__', kind)}")
    if isinstance(span.get("duration_ms"), (int, float)) and \
            span["duration_ms"] < 0:
        problems.append(f"{path}.duration_ms: negative")
    for name, value in (span.get("attrs") or {}).items():
        if not isinstance(value, _SCALARS):
            problems.append(
                f"{path}.attrs[{name!r}]: non-scalar value "
                f"{type(value).__name__}")
    for position, child in enumerate(span.get("children") or []):
        _validate_span(child, f"{path}.children[{position}]", problems)


def validate_trace(payload) -> list[str]:
    """Check ``payload`` against the trace schema; [] means valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["trace must be a JSON object"]
    if payload.get("trace_version") != TRACE_VERSION:
        problems.append(f"trace_version must be {TRACE_VERSION}")
    if not isinstance(payload.get("statement"), str):
        problems.append("statement must be a string")
    if payload.get("language") not in ("xquery", "sql"):
        problems.append("language must be 'xquery' or 'sql'")
    if not isinstance(payload.get("total_ms"), (int, float)):
        problems.append("total_ms must be a number")
    spans = payload.get("spans")
    if not isinstance(spans, list) or not spans:
        problems.append("spans must be a non-empty list")
    else:
        for position, span in enumerate(spans):
            _validate_span(span, f"spans[{position}]", problems)
    return problems
