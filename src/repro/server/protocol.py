"""Length-prefixed JSON framing shared by server and client.

A frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The protocol is
strict request/response per connection: the client sends one request
frame and reads one response frame before sending the next, so no
request ids or interleaving rules are needed.

Requests are ``{"op": ..., ...}`` objects; see
:data:`repro.server.session.Session` for the op table.  Responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": {"type", "code",
"message"}, "engine": bool}`` — ``engine`` marks errors raised *by the
statement* (an ``err:XPDY0050`` is part of a query's canonical answer)
as opposed to protocol/admission/limit failures.

Defensive limits: an incoming frame longer than ``max_frame_bytes``
is rejected with SQLSTATE 08P01 before any allocation of the payload,
and a frame that ends mid-way (a torn write or a vanished client) is
surfaced as :class:`ConnectionError` so the serve loop just drops the
connection.
"""

from __future__ import annotations

import json
import struct

from ..errors import ProtocolError

__all__ = ["HEADER", "MAX_FRAME_BYTES", "encode_frame", "decode_payload",
           "check_frame_length", "read_frame_async", "read_frame_sync",
           "write_frame_sync"]

#: 4-byte big-endian unsigned frame length.
HEADER = struct.Struct(">I")

#: Default cap on a single frame (requests and responses alike).
MAX_FRAME_BYTES = 16 * 1024 * 1024


def encode_frame(payload: dict) -> bytes:
    """One wire frame for ``payload``: header + compact JSON."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"malformed frame payload: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def check_frame_length(length: int,
                       max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the limit of "
            f"{max_frame_bytes}")


async def read_frame_async(reader,
                           max_frame_bytes: int = MAX_FRAME_BYTES
                           ) -> dict | None:
    """Read one frame from an asyncio StreamReader.

    Returns ``None`` on clean EOF at a frame boundary.  A torn frame
    (EOF mid-header or mid-body) raises :class:`ConnectionError`; an
    oversized declared length raises :class:`ProtocolError` *before*
    the body is read, so a hostile length cannot balloon memory.
    """
    import asyncio
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionError("torn frame header") from None
    (length,) = HEADER.unpack(header)
    check_frame_length(length, max_frame_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ConnectionError("torn frame body") from None
    return decode_payload(body)


def read_frame_sync(sock_file,
                    max_frame_bytes: int = MAX_FRAME_BYTES) -> dict:
    """Read one frame from a blocking binary file (client side)."""
    header = sock_file.read(HEADER.size)
    if len(header) < HEADER.size:
        raise ConnectionError("connection closed mid-frame")
    (length,) = HEADER.unpack(header)
    check_frame_length(length, max_frame_bytes)
    body = sock_file.read(length)
    if len(body) < length:
        raise ConnectionError("connection closed mid-frame")
    return decode_payload(body)


def write_frame_sync(sock, payload: dict) -> None:
    sock.sendall(encode_frame(payload))
