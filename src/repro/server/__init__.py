"""The network front door: ``repro serve``.

An asyncio server speaking a small length-prefixed JSON protocol (see
:mod:`repro.server.protocol`), with per-session state and prepared
statements (:mod:`repro.server.session`), a bounded admission queue
(:mod:`repro.server.admission`), per-query deadlines and row/byte
limits enforced inside the evaluator (:mod:`repro.xquery.guard`), and
graceful drain on SIGTERM.  :mod:`repro.server.client` is the matching
blocking client used by tests, the CLI, and benchmarks.
"""

from .client import ServerClient, render_payload
from .server import ReproServer, ServerThread

__all__ = ["ReproServer", "ServerThread", "ServerClient",
           "render_payload"]
