"""The asyncio serve loop: sessions, admission, deadlines, drain.

Architecture: the event loop owns all connection and session state;
engine execution (parse/plan/evaluate) happens on a small thread pool
sized to the admission controller's ``max_active``, so at most that
many statements occupy interpreter threads at once.  The sequence for
one statement is::

    read frame -> admission.acquire() (shed: 53300, never waits when
    full) -> build QueryGuard from per-request limits and server
    defaults -> run_in_executor(session.run_*) -> admission.release()
    -> write response frame

Reads execute on the session's pinned snapshot under the database's
*shared* read lock; writes go through the database's own entry points
(exclusive write lock + WAL when durable).  Client disconnect during a
statement is detected by a 1-byte EOF watcher and converted into
:meth:`QueryGuard.cancel`, so an abandoned query stops burning the
engine at its next tick instead of running to completion.

Graceful drain (SIGTERM or :meth:`ReproServer.drain`): stop accepting
connections, answer new statements with SQLSTATE 57P01, wait for every
admitted statement to finish, flush the WAL (``database.sync()``), and
close remaining connections.  In-flight work is *finished*, never
killed — the drain deadline is the operator's problem (process
supervisor), not ours.
"""

from __future__ import annotations

import asyncio
import threading
import time

from ..errors import ReproError, ServerError
from ..obs.metrics import METRICS
from ..xquery.guard import QueryGuard
from .admission import AdmissionQueue
from .protocol import MAX_FRAME_BYTES, encode_frame, read_frame_async
from .session import Session

__all__ = ["ReproServer", "ServerThread"]

#: Errors in this family describe the *server's* handling of a request
#: (shed, timeout, limit, malformed frame) — the client raises them.
#: Anything else raised while a statement runs is an *engine* error and
#: part of the statement's canonical answer (e.g. Query 25's XPDY0050).
_SERVER_SIDE = ("53300", "57014", "54000", "08P01", "57P01", "58000")


def _error_payload(error: ReproError, engine: bool) -> dict:
    return {"ok": False,
            "error": {"type": type(error).__name__,
                      "code": getattr(error, "sqlstate", "58000"),
                      "message": str(error)},
            "engine": engine}


class ReproServer:
    """One database behind one listening socket."""

    def __init__(self, database, host: str = "127.0.0.1", port: int = 0,
                 max_active: int = 4, max_queue: int = 16,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 default_timeout: float | None = None,
                 default_max_rows: int | None = None,
                 default_max_bytes: int | None = None):
        self.database = database
        self.host = host
        self.port = port
        self.max_frame_bytes = max_frame_bytes
        self.default_timeout = default_timeout
        self.default_max_rows = default_max_rows
        self.default_max_bytes = default_max_bytes
        self.admission = AdmissionQueue(max_active=max_active,
                                        max_queue=max_queue)
        self.sessions: dict[int, Session] = {}
        self._next_session = 1
        self._server: asyncio.base_events.Server | None = None
        self._executor = None
        self._draining = False
        self._drained = asyncio.Event()
        #: Requests read off a socket whose response is not yet
        #: written.  Admission tracks *engine* occupancy; this tracks
        #: the wire, so drain cannot declare victory between an
        #: engine completion and its response frame hitting the pipe.
        self._inflight = 0
        self._quiescent = asyncio.Event()
        self._quiescent.set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        #: Always-on counters surfaced by the ``stats`` op.
        self.stats = {"connections": 0, "queries": 0, "errors": 0,
                      "disconnects_mid_query": 0}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        from concurrent.futures import ThreadPoolExecutor
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission.max_active,
            thread_name_prefix="repro-engine")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_until_drained(self) -> None:
        """Run until :meth:`drain` completes (the CLI's main loop)."""
        assert self._server is not None
        async with self._server:
            await self._drained.wait()

    async def drain(self) -> None:
        """Stop accepting, finish in-flight statements, flush the WAL."""
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self.admission.drained()
        await self._quiescent.wait()
        # Flush durable state while the engine is quiet: a drained
        # server that gets SIGKILLed a moment later must lose nothing.
        sync = getattr(self.database, "sync", None)
        if sync is not None:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, sync)
        for session in list(self.sessions.values()):
            session.close()
        self.sessions.clear()
        for writer in list(self._conn_writers):
            writer.close()
        if self._executor is not None:
            # shutdown(wait=True) joins worker threads; run it off the
            # event loop (and NOT on self._executor — it would wait on
            # itself).  The pool is quiescent here, so this is a join
            # of idle workers, but a stuck statement must not freeze
            # heartbeats for every other connection.
            executor = self._executor
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: executor.shutdown(wait=True))
        self._drained.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT trigger a graceful drain (CLI entry point)."""
        import signal
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain()))

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        session_id = self._next_session
        self._next_session += 1
        session = Session(session_id, self.database)
        self.sessions[session_id] = session
        self._conn_writers.add(writer)
        self.stats["connections"] += 1
        if METRICS.enabled:
            METRICS.inc("server.connections")
            METRICS.set_gauge("server.sessions", len(self.sessions))
        try:
            while True:
                try:
                    request = await read_frame_async(
                        reader, self.max_frame_bytes)
                except ConnectionError:
                    break
                except ReproError as error:
                    # Oversized/malformed frame: answer, then drop the
                    # connection — framing state is unrecoverable.
                    await self._write(writer,
                                      _error_payload(error, False))
                    break
                if request is None:  # clean EOF
                    break
                if not await self._respond(session, request, reader,
                                           writer):
                    break
        finally:
            self._conn_writers.discard(writer)
            self.sessions.pop(session_id, None)
            session.close()
            if METRICS.enabled:
                METRICS.set_gauge("server.sessions", len(self.sessions))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, session: Session, request: dict,
                       reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request and write its response; False means
        the connection is finished.  Counted as in-flight from frame
        receipt to response write so drain waits for the *wire*, not
        just the engine."""
        self._inflight += 1
        self._quiescent.clear()
        try:
            try:
                response = await self._dispatch(session, request,
                                                reader)
            except _ClientGone:
                return False
            except ReproError as error:
                self.stats["errors"] += 1
                response = _error_payload(error, False)
            if response is None:  # explicit close op
                return False
            try:
                await self._write(writer, response)
            except ConnectionError:
                return False
            return True
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._quiescent.set()

    async def _write(self, writer: asyncio.StreamWriter,
                     payload: dict) -> None:
        try:
            writer.write(encode_frame(payload))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            raise ConnectionError("client went away") from None

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, session: Session, request: dict,
                        reader: asyncio.StreamReader) -> dict | None:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "hello":
            return {"ok": True, "session": session.session_id,
                    "server": "repro", "max_frame_bytes":
                        self.max_frame_bytes}
        if op == "close":
            return None
        if op == "stats":
            return {"ok": True, "text": self.render_stats()}
        if op == "prolog":
            session.set_prolog(request.get("text", ""))
            return {"ok": True}
        if op == "set":
            session.set_variable(request.get("name"),
                                 request.get("value"))
            return {"ok": True}
        if op == "refresh":
            return {"ok": True, "version": session.refresh()}
        if op == "prepare":
            if self._draining:
                raise ServerError("server is shutting down", "57P01")
            prepared = session.prepare(request.get("statement"))
            return {"ok": True, "handle": prepared.handle,
                    "kind": prepared.kind}
        if op == "deallocate":
            session.deallocate(request.get("handle"))
            return {"ok": True}
        if op in ("query", "execute"):
            return await self._run_statement(session, request, reader)
        raise ServerError(f"unknown op {op!r}", "08P01")

    async def _run_statement(self, session: Session, request: dict,
                             reader: asyncio.StreamReader) -> dict:
        if self._draining:
            raise ServerError("server is shutting down", "57P01")
        await self.admission.acquire()
        started = time.monotonic()
        try:
            guard = self._build_guard(request)
            loop = asyncio.get_running_loop()
            if request["op"] == "query":
                work = loop.run_in_executor(
                    self._executor, session.run_statement,
                    request.get("statement"), guard,
                    request.get("use_indexes", True),
                    request.get("variables"))
            else:
                work = loop.run_in_executor(
                    self._executor, session.run_prepared,
                    request.get("handle"), guard,
                    request.get("use_indexes", True),
                    request.get("variables"))
            self.stats["queries"] += 1
            if METRICS.enabled:
                METRICS.inc("server.queries")
            return await self._await_with_eof_watch(work, guard, reader)
        finally:
            if METRICS.enabled:
                METRICS.observe("server.query_seconds",
                                time.monotonic() - started)
            self.admission.release()

    async def _await_with_eof_watch(self, work: "asyncio.Future",
                                    guard: QueryGuard,
                                    reader: asyncio.StreamReader) -> dict:
        """Await the engine, watching for client EOF to cancel.

        The protocol is strict request/response, so no client bytes are
        legal while a statement runs; a single-byte read therefore only
        completes on EOF (disconnect) or protocol abuse — both mean the
        statement's result has no recipient.
        """
        watch = asyncio.ensure_future(reader.read(1))
        try:
            done, _ = await asyncio.wait(
                {work, watch}, return_when=asyncio.FIRST_COMPLETED)
            if watch in done and not work.done():
                # Client vanished (or broke protocol) mid-statement:
                # trip the guard, let the engine unwind at its next
                # tick, then drop the connection.
                guard.cancel()
                self.stats["disconnects_mid_query"] += 1
                if METRICS.enabled:
                    METRICS.inc("server.client_disconnects")
                try:
                    await work
                except ReproError:
                    pass
                raise _ClientGone()
            try:
                return await work
            except ReproError as error:
                engine = getattr(error, "sqlstate",
                                 None) not in _SERVER_SIDE
                if not engine:
                    self.stats["errors"] += 1
                return _error_payload(error, engine)
        finally:
            if not watch.done():
                # Cancellation must *complete* before the serve loop
                # issues its next read, or the stream still counts the
                # watcher as a waiter.
                watch.cancel()
                try:
                    await watch
                except (asyncio.CancelledError, ConnectionError):
                    pass

    def _build_guard(self, request: dict) -> QueryGuard:
        def limit(key, default):
            value = request.get(key, default)
            if value is not None and (not isinstance(value, (int, float))
                                      or value <= 0):
                raise ServerError(f"invalid {key}: {value!r}", "08P01")
            return value

        return QueryGuard(
            timeout_seconds=limit("timeout", self.default_timeout),
            max_rows=limit("max_rows", self.default_max_rows),
            max_bytes=limit("max_bytes", self.default_max_bytes))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def render_stats(self) -> str:
        """Plaintext ``name value`` lines: always-on server counters,
        plus the process-wide METRICS registry when enabled."""
        lines = [
            f"server.sessions {len(self.sessions)}",
            f"server.connections {self.stats['connections']}",
            f"server.queries {self.stats['queries']}",
            f"server.errors {self.stats['errors']}",
            f"server.disconnects_mid_query "
            f"{self.stats['disconnects_mid_query']}",
            f"server.admitted {self.admission.admitted_count}",
            f"server.shed {self.admission.shed_count}",
            f"server.active {self.admission.active}",
            f"server.queue_depth {self.admission.queue_depth}",
            f"server.draining {int(self._draining)}",
        ]
        profiler = getattr(self.database, "workload_profiler", None)
        if profiler is not None:
            lines.append(
                f"autopilot.queries_observed {profiler.total_queries}")
            lines.append(
                f"autopilot.writes_observed {profiler.total_writes}")
            pilot = getattr(self.database, "_autopilot", None)
            if pilot is not None:
                lines.append(
                    f"autopilot.indexes_built {len(pilot.applied)}")
        if METRICS.enabled:
            rendered = METRICS.render()
            if rendered:
                lines.append(rendered)
        return "\n".join(lines)


class _ClientGone(Exception):
    """Internal: the client disconnected while its statement ran."""


class ServerThread:
    """Run a :class:`ReproServer` on a background thread (tests, CLI
    benchmarks).  ``with ServerThread(db) as (host, port): ...``"""

    def __init__(self, database, **kwargs):
        self.server = ReproServer(database, **kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self.address: tuple[str, int] | None = None

    def __enter__(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("server thread failed to start")
        assert self.address is not None
        return self.address

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.drain(),
                                                  self._loop)
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=60)
        self._loop = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.address = loop.run_until_complete(self.server.start())
            self._started.set()
            loop.run_forever()
        finally:
            self._started.set()  # unblock __enter__ on startup failure
            try:
                loop.close()
            finally:
                asyncio.set_event_loop(None)
