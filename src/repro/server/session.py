"""Per-connection session state and statement execution.

A :class:`Session` owns everything one connection accumulates:

* a **pinned snapshot** — reads run against a copy-on-write
  :class:`~repro.storage.snapshot.Snapshot` captured at connect time,
  so a session sees one consistent database version across statements
  regardless of concurrent writers.  The snapshot is re-pinned after
  the session's *own* writes (read-your-writes) or explicitly via the
  ``refresh`` op; other sessions keep their stable views.
* **prolog/namespace defaults** (``prolog`` op): declaration text
  prepended to every XQuery statement the session runs — the full text
  is what hits the compiled-query cache, so two sessions with the same
  prolog share one plan.
* **session variables** (``set`` op): transaction-free scalars bound
  as external variables (``$name``) in every XQuery evaluation.
* **prepared statements** (``prepare`` / ``execute`` / ``deallocate``):
  handles whose compiled plan is *pinned* in the shared compiled-query
  cache (:func:`repro.core.querycache.pin_query`) so LRU churn from
  ad-hoc traffic cannot evict a prepared plan.

Statement execution (:meth:`Session.run_statement`) happens on an
engine worker thread.  Reads evaluate on the pinned snapshot while
holding the database's *shared* read side — readers still run
concurrently, but in-place index structures (B+Trees) are protected
from torn observation during writes.  Writes route through the
database's ordinary entry points under the exclusive write lock (and
the WAL, when the database is durable).
"""

from __future__ import annotations

import re

from ..errors import ProtocolError, ReproError, SQLError
from ..xdm import atomic
from ..xmlio.serializer import serialize
from ..xquery.guard import QueryGuard, guarded

__all__ = ["Session", "classify_statement"]

_SQL_READ_HEADS = ("SELECT", "VALUES")
_WRITE_HEADS = ("INSERT", "DELETE", "CREATE", "DROP")

_DROP_TABLE_RE = re.compile(r"^\s*DROP\s+TABLE\s+(?P<name>\w+)\s*;?\s*$",
                            re.IGNORECASE)
_DROP_INDEX_RE = re.compile(r"^\s*DROP\s+INDEX\s+(?P<name>\w+)\s*;?\s*$",
                            re.IGNORECASE)


def classify_statement(text: str) -> str:
    """``'xquery'`` | ``'sql'`` (read) | ``'write'`` by statement head."""
    head = text.lstrip().upper()
    if head.startswith(_SQL_READ_HEADS):
        return "sql"
    if head.startswith(_WRITE_HEADS):
        return "write"
    return "xquery"


class _Prepared:
    __slots__ = ("handle", "statement", "kind", "pinned")

    def __init__(self, handle: int, statement: str, kind: str,
                 pinned: bool):
        self.handle = handle
        self.statement = statement
        self.kind = kind
        self.pinned = pinned


class Session:
    """One connection's state; statements execute serially per session
    (the protocol is strict request/response), so no internal lock."""

    def __init__(self, session_id: int, database):
        self.session_id = session_id
        self.database = database
        self.snapshot = database.snapshot()
        self.prolog_text = ""
        self.variables: dict[str, list] = {}
        self.prepared: dict[int, _Prepared] = {}
        self._next_handle = 1
        self.statements_run = 0

    # ------------------------------------------------------------------
    # Session state ops (cheap; run on the event loop)
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Re-pin the snapshot at the current database version."""
        self.snapshot = self.database.snapshot()
        return self.snapshot.version

    def set_prolog(self, text: str) -> None:
        if not isinstance(text, str):
            raise ProtocolError("prolog text must be a string")
        self.prolog_text = text

    def set_variable(self, name: str, value) -> None:
        if not isinstance(name, str) or not name:
            raise ProtocolError("variable name must be a non-empty "
                                "string")
        self.variables[name] = _as_items(value)

    def prepare(self, statement: str) -> _Prepared:
        kind = classify_statement(statement)
        full = self._full_text(statement, kind)
        pinned = False
        if kind == "xquery":
            from ..core.querycache import pin_query
            pin_query(full)  # parses now: a bad statement fails PREPARE
            pinned = True
        handle = self._next_handle
        self._next_handle += 1
        prepared = _Prepared(handle, full, kind, pinned)
        self.prepared[handle] = prepared
        return prepared

    def deallocate(self, handle: int) -> None:
        prepared = self.prepared.pop(handle, None)
        if prepared is None:
            raise ProtocolError(f"unknown prepared handle {handle}")
        if prepared.pinned:
            from ..core.querycache import unpin_query
            unpin_query(prepared.statement)

    def close(self) -> None:
        """Release every pinned plan (idempotent)."""
        prepared, self.prepared = self.prepared, {}
        from ..core.querycache import unpin_query
        for statement in prepared.values():
            if statement.pinned:
                unpin_query(statement.statement)

    # ------------------------------------------------------------------
    # Statement execution (runs on an engine worker thread)
    # ------------------------------------------------------------------

    def run_statement(self, statement: str, guard: QueryGuard,
                      use_indexes: bool = True,
                      variables: dict | None = None) -> dict:
        """Execute one statement text and build its response payload."""
        kind = classify_statement(statement)
        full = self._full_text(statement, kind)
        return self._run(full, kind, guard, use_indexes, variables)

    def run_prepared(self, handle: int, guard: QueryGuard,
                     use_indexes: bool = True,
                     variables: dict | None = None) -> dict:
        prepared = self.prepared.get(handle)
        if prepared is None:
            raise ProtocolError(f"unknown prepared handle {handle}")
        return self._run(prepared.statement, prepared.kind, guard,
                         use_indexes, variables)

    def _run(self, full: str, kind: str, guard: QueryGuard,
             use_indexes: bool, variables: dict | None) -> dict:
        self.statements_run += 1
        with guarded(guard):
            if kind == "write":
                return self._run_write(full)
            if kind == "sql":
                return self._run_sql(full, guard, use_indexes)
            return self._run_xquery(full, guard, use_indexes, variables)

    def _run_write(self, statement: str) -> dict:
        database = self.database
        match = _DROP_TABLE_RE.match(statement)
        if match:
            database.drop_table(match.group("name"))
            result = None
        else:
            match = _DROP_INDEX_RE.match(statement)
            if match:
                database.drop_index(match.group("name"))
                result = None
            else:
                result = database.execute(statement)
        # Read-your-writes: the session's next read must see this.
        self.refresh()
        affected = len(result) if hasattr(result, "__len__") else 1
        return {"ok": True, "kind": "write", "affected": affected,
                "version": database.version}

    def _run_sql(self, statement: str, guard: QueryGuard,
                 use_indexes: bool) -> dict:
        with self.database._rwlock.read():
            result = self.snapshot.sql(statement,
                                       use_indexes=use_indexes)
        guard.check_items(len(result.rows))
        columns = list(result.columns)
        rows: list[list] = []
        for row in result.serialize_rows():
            rendered = [None if value is None else str(value)
                        for value in row]
            guard.charge_bytes(sum(len(value) for value in rendered
                                   if value is not None))
            rows.append(rendered)
        return {"ok": True, "kind": "sql", "columns": columns,
                "rows": rows}

    def _run_xquery(self, statement: str, guard: QueryGuard,
                    use_indexes: bool, variables: dict | None) -> dict:
        bound = dict(self.variables)
        for name, value in (variables or {}).items():
            bound[name] = _as_items(value)
        with self.database._rwlock.read():
            result = self.snapshot.xquery(statement,
                                          use_indexes=use_indexes,
                                          variables=bound or None)
        guard.check_items(len(result.items))
        texts: list[str] = []
        for item in result.items:
            text = serialize(item)
            guard.charge_bytes(len(text))
            texts.append(text)
        return {"ok": True, "kind": "xquery", "items": texts,
                "docs_scanned": result.stats.docs_scanned}

    # ------------------------------------------------------------------

    def _full_text(self, statement: str, kind: str) -> str:
        if not isinstance(statement, str) or not statement.strip():
            raise ProtocolError("statement must be a non-empty string")
        if kind == "xquery" and self.prolog_text:
            return self.prolog_text + statement
        return statement


def _as_items(value) -> list:
    """A JSON scalar (or flat list of scalars) as an XDM sequence."""
    if isinstance(value, list):
        items: list = []
        for entry in value:
            items.extend(_as_items(entry))
        return items
    if isinstance(value, bool):
        return [atomic.boolean(value)]
    if isinstance(value, int):
        return [atomic.integer(value)]
    if isinstance(value, float):
        return [atomic.double(value)]
    if isinstance(value, str):
        return [atomic.string(value)]
    if value is None:
        return []
    raise ProtocolError(
        f"unsupported variable value of type {type(value).__name__}")


# Writes must be statements the engine can actually replay; surface
# anything else as a typed SQL error rather than a server crash.
def _unsupported(statement: str) -> SQLError:  # pragma: no cover
    return SQLError(f"unsupported statement: {statement[:60]!r}", "0A000")


_ = ReproError  # re-exported for type context in docstrings
