"""Bounded admission queue: backpressure that sheds instead of hanging.

A server facing "heavy traffic from millions of users" must bound two
things: how many statements *execute* concurrently (``max_active`` —
each one occupies an engine thread) and how many may *wait* for a slot
(``max_queue``).  A statement arriving when the queue is full is shed
immediately with :class:`~repro.errors.AdmissionError` (SQLSTATE
53300) — a fast typed failure the client can retry elsewhere, never an
unbounded wait.  This is the standard load-shedding shape: saturated
queues convert overload into latency for *everyone*; shedding keeps
latency bounded for the statements that do get in.

The controller lives entirely on the event loop (single-threaded), so
its counters need no lock; engine execution happens in worker threads
*after* admission.  A freed slot is handed **directly** to the oldest
waiter (``active`` never dips while a waiter exists), so a request
arriving between release and wake-up cannot over-admit past the cap.
``drained()`` lets graceful shutdown wait for all in-flight and queued
work to finish.
"""

from __future__ import annotations

import asyncio
from collections import deque

from ..errors import AdmissionError
from ..obs.metrics import METRICS

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO admission with a concurrency cap and a bounded wait queue."""

    def __init__(self, max_active: int = 4, max_queue: int = 16):
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_active = max_active
        self.max_queue = max_queue
        self.active = 0
        #: Always-on counters for the ``stats`` command; the METRICS
        #: mirrors follow the repo's enabled-gating convention.
        self.shed_count = 0
        self.admitted_count = 0
        self._waiters: deque[asyncio.Future] = deque()
        self._idle = asyncio.Event()
        self._idle.set()

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)

    async def acquire(self) -> None:
        """Admit the caller, queueing up to ``max_queue`` deep.

        Raises :class:`AdmissionError` *immediately* when the queue is
        full — by design this path never awaits, so a saturated server
        answers overload at wire speed.
        """
        if self.active < self.max_active and not self._waiters:
            self.active += 1
            self._note_admit()
            return
        if len(self._waiters) >= self.max_queue:
            self.shed_count += 1
            if METRICS.enabled:
                METRICS.inc("server.shed")
            raise AdmissionError(
                f"admission queue full ({self.max_active} active, "
                f"{len(self._waiters)} queued); statement shed")
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self._publish_gauge()
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # The slot was already transferred to us: give it back
                # so it is not leaked.
                self.release()
            else:
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
                self._publish_gauge()
            raise
        # ``release`` transferred its slot without decrementing
        # ``active``, so the count already includes us.
        self._note_admit()

    def release(self) -> None:
        """Free one execution slot, handing it to the oldest waiter."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                self._publish_gauge()
                return
        self.active -= 1
        if self.active == 0:
            self._idle.set()

    async def drained(self) -> None:
        """Resolve once nothing is active or queued (graceful drain)."""
        await self._idle.wait()

    # ------------------------------------------------------------------

    def _note_admit(self) -> None:
        self.admitted_count += 1
        self._idle.clear()
        if METRICS.enabled:
            METRICS.inc("server.admitted")
            METRICS.set_gauge("server.queue_depth", len(self._waiters))

    def _publish_gauge(self) -> None:
        if METRICS.enabled:
            METRICS.set_gauge("server.queue_depth", len(self._waiters))
