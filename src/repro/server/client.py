"""Blocking client for the ``repro serve`` protocol.

:class:`ServerClient` is the reference client used by tests, the CLI,
and benchmarks: one socket, strict request/response, typed errors
re-raised locally.  :func:`render_payload` turns a successful response
(or an in-band *engine* error) back into the exact text the in-process
API produces — ``run_paper_query`` over the wire must be byte-identical
to ``run_paper_query`` in process, and this function is where that
identity is enforced.
"""

from __future__ import annotations

import socket

from .. import errors
from .protocol import MAX_FRAME_BYTES, read_frame_sync, write_frame_sync

__all__ = ["ServerClient", "render_payload"]

#: Error type -> class, for re-raising server-side failures with the
#: same type the in-process API would raise.
_ERROR_TYPES = {
    name: getattr(errors, name)
    for name in dir(errors)
    if isinstance(getattr(errors, name), type)
    and issubclass(getattr(errors, name), errors.ReproError)
}


def render_payload(payload: dict) -> str:
    """The canonical text for a statement response.

    Matches :func:`repro.workload.paperqueries.run_paper_query`:
    SQL -> tab-joined header + rows with ``NULL`` for null cells;
    XQuery -> newline-joined serialized items; an in-band engine error
    -> ``error: {Type}: {message}``.
    """
    if not payload.get("ok"):
        error = payload.get("error", {})
        return f"error: {error.get('type')}: {error.get('message')}"
    kind = payload.get("kind")
    if kind == "sql":
        lines = ["\t".join(payload["columns"])]
        for row in payload["rows"]:
            lines.append("\t".join("NULL" if value is None else value
                                   for value in row))
        return "\n".join(lines)
    if kind == "xquery":
        return "\n".join(payload["items"])
    return f"ok: {kind}"


class ServerClient:
    """One connection to a :class:`~repro.server.ReproServer`.

    Statement responses are returned as raw payload dicts; *server*
    errors (shed, timeout, limits, protocol) are re-raised as their
    original typed exceptions, while *engine* errors stay in-band
    because they are part of a statement's canonical answer.
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        self.sock_file = self.sock.makefile("rb")

    # -- context manager ----------------------------------------------

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        try:
            self.sock_file.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    # -- raw request/response -----------------------------------------

    def request(self, payload: dict) -> dict:
        write_frame_sync(self.sock, payload)
        response = read_frame_sync(self.sock_file, self.max_frame_bytes)
        if not response.get("ok") and not response.get("engine"):
            raise self._as_exception(response)
        return response

    def _as_exception(self, response: dict) -> errors.ReproError:
        detail = response.get("error", {})
        cls = _ERROR_TYPES.get(detail.get("type"), errors.ServerError)
        message = detail.get("message", "server error")
        # The server already formatted the SQLSTATE prefix into the
        # message; re-wrapping would double it.
        error = errors.ReproError.__new__(cls)
        Exception.__init__(error, message)
        error.sqlstate = detail.get("code", "58000")
        return error

    # -- ops ----------------------------------------------------------

    def hello(self) -> dict:
        return self.request({"op": "hello"})

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> str:
        return self.request({"op": "stats"})["text"]

    def set_prolog(self, text: str) -> None:
        self.request({"op": "prolog", "text": text})

    def set_variable(self, name: str, value) -> None:
        self.request({"op": "set", "name": name, "value": value})

    def refresh(self) -> int:
        return self.request({"op": "refresh"})["version"]

    def prepare(self, statement: str) -> int:
        return self.request({"op": "prepare",
                             "statement": statement})["handle"]

    def deallocate(self, handle: int) -> None:
        self.request({"op": "deallocate", "handle": handle})

    def query(self, statement: str, **options) -> dict:
        return self.request({"op": "query", "statement": statement,
                             **options})

    def execute(self, handle: int, **options) -> dict:
        return self.request({"op": "execute", "handle": handle,
                             **options})

    def query_text(self, statement: str, **options) -> str:
        """Run a statement and render its canonical text."""
        return render_payload(self.query(statement, **options))

    def execute_text(self, handle: int, **options) -> str:
        return render_payload(self.execute(handle, **options))
