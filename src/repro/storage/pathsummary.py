"""Per-document path summaries — the structural acceleration layer.

A path summary maps every *distinct* root-to-node tag path of a
document (``order/lineitem/@price``, ``order/date/text()``, …) to the
list of nodes reachable along it, in document order, plus counts.  It
is built once at ingest with a single tree walk and answers three
questions that otherwise require full-tree scans:

* which nodes match ``//tag`` or a rooted path (``/order/lineitem``)?
  — the XQuery evaluator's fast path for predicate-free step chains;
* how many nodes/documents match an XMLPATTERN? — real cardinalities
  for the planner's selectivity estimates (see
  :mod:`repro.planner.cost`);
* which nodes does a new XML index cover? — index builds iterate the
  summary's few distinct paths instead of re-walking every node.

Validity is tied to the tree's structure stamp (see
``xdm.nodes._TreeStamp``): any mutation beneath the document
invalidates the stamp in O(1) and the summary is rebuilt lazily on
next access, mirroring the lazy ``(pre, post)`` renumbering.
"""

from __future__ import annotations

from typing import Iterator

from ..core.patterns import (LinearPattern, PathComponent, PathPattern,
                             parse_xmlpattern)
from ..obs.metrics import METRICS
from ..xdm.nodes import DocumentNode, Node

__all__ = ["PathSummary", "PatternMatcher", "build_summary", "get_summary",
           "indexable_nodes"]

PathKey = tuple  # tuple[PathComponent, ...]

#: Interning table for distinct path tuples.  Documents of one workload
#: share a handful of path shapes; interning makes equal paths *the
#: same object*, so match memos can key on ``id(path)`` instead of
#: hashing nested dataclasses on every lookup.
_PATH_INTERN: dict[PathKey, PathKey] = {}


def _intern_path(path: PathKey) -> PathKey:
    return _PATH_INTERN.setdefault(path, path)


class PatternMatcher:
    """Memoized pattern-vs-path matching keyed on interned path identity.

    One NFA simulation per (matcher, distinct path shape); every later
    ask is an id-keyed dict hit.  The memo stores the path tuple
    alongside the verdict, keeping it alive so its ``id`` can never be
    recycled for a different path.
    """

    __slots__ = ("pattern", "_verdicts")

    def __init__(self, pattern):
        self.pattern = pattern
        self._verdicts: dict[int, tuple[PathKey, bool]] = {}

    def matches(self, path: PathKey) -> bool:
        entry = self._verdicts.get(id(path))
        if entry is None:
            verdict = self.pattern.matches_path(list(path))
            self._verdicts[id(path)] = (path, verdict)
            return verdict
        return entry[1]


def _as_matcher(pattern) -> PatternMatcher:
    if isinstance(pattern, PatternMatcher):
        return pattern
    return PatternMatcher(pattern)


def _component_of(node: Node) -> PathComponent:
    name = node.name
    if name is None:
        return PathComponent(node.kind)
    return PathComponent(node.kind, name.uri, name.local)


def indexable_nodes(document: DocumentNode
                    ) -> Iterator[tuple[Node, list[PathComponent]]]:
    """All nodes of a document with their root-to-node path components.

    The path is built incrementally during the walk — O(depth) per node
    instead of O(depth²) via Node.path_steps().
    """
    stack: list[tuple[Node, list[PathComponent]]] = [
        (child, [_component_of(child)]) for child in
        reversed(document.children)]
    while stack:
        node, components = stack.pop()
        yield node, components
        for attribute in node.attributes:
            yield attribute, components + [_component_of(attribute)]
        for child in reversed(node.children):
            stack.append((child, components + [_component_of(child)]))


class PathSummary:
    """Distinct root-to-node paths of one document, with node lists."""

    __slots__ = ("entries", "node_count", "_by_tag", "_stamp")

    def __init__(self, entries: dict[PathKey, list[Node]], stamp):
        #: path components tuple -> nodes along that path, doc order.
        self.entries = entries
        self.node_count = sum(len(nodes) for nodes in entries.values())
        #: (kind, uri, local) -> merged node lists for `//tag` lookups.
        by_tag: dict[tuple[str, str, str], list[Node]] = {}
        for path, nodes in entries.items():
            tail = path[-1]
            by_tag.setdefault((tail.kind, tail.uri, tail.local),
                              []).extend(nodes)
        self._by_tag = by_tag
        self._stamp = stamp

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, document: DocumentNode) -> "PathSummary":
        # Numbering first: the summary's validity is the tree stamp,
        # and node lists rely on cached document-order keys for merges.
        document.structure()
        entries: dict[PathKey, list[Node]] = {}
        for node, components in indexable_nodes(document):
            entries.setdefault(_intern_path(tuple(components)),
                               []).append(node)
        return cls(entries, document._stamp)

    def is_stale(self) -> bool:
        return not self._stamp.valid

    # -- lookups --------------------------------------------------------

    def distinct_paths(self) -> list[PathKey]:
        return list(self.entries)

    def counts(self) -> dict[PathKey, int]:
        return {path: len(nodes) for path, nodes in self.entries.items()}

    def _matching_keys(self, pattern) -> list[PathKey]:
        matcher = _as_matcher(pattern)
        return [path for path in self.entries if matcher.matches(path)]

    def nodes_matching(self, pattern
                       ) -> Iterator[tuple[Node, PathKey]]:
        """(node, path) pairs whose path matches ``pattern``.

        ``pattern`` is a :class:`PatternMatcher` (preferred when the
        call repeats across documents), or anything with
        ``matches_path``.  Yields path-by-path; within a path, nodes
        come in document order.
        """
        for path in self._matching_keys(pattern):
            for node in self.entries[path]:
                yield node, path

    def nodes_for(self, pattern) -> list[Node]:
        """All nodes matching ``pattern``, in document order."""
        matched = self._matching_keys(pattern)
        if not matched:
            return []
        if len(matched) == 1:
            return list(self.entries[matched[0]])
        nodes: list[Node] = []
        for path in matched:
            nodes.extend(self.entries[path])
        nodes.sort(key=lambda node: node.document_order_key())
        return nodes

    def nodes_for_tag(self, kind: str, uri: str | None,
                      local: str) -> list[Node]:
        """``//tag`` in one lookup: nodes whose path *ends* with the tag.

        ``uri=None`` wildcards the namespace (``*:local``).
        """
        if uri is not None:
            return list(self._by_tag.get((kind, uri, local), []))
        nodes: list[Node] = []
        groups = 0
        for (tag_kind, _tag_uri, tag_local), group in self._by_tag.items():
            if tag_kind == kind and tag_local == local:
                nodes.extend(group)
                groups += 1
        if groups > 1:
            nodes.sort(key=lambda node: node.document_order_key())
        return nodes

    def count_matching(self, pattern) -> int:
        """Number of nodes whose path matches ``pattern``."""
        return sum(len(self.entries[path])
                   for path in self._matching_keys(pattern))

    def has_matching(self, pattern) -> bool:
        return bool(self._matching_keys(pattern))


def build_summary(document: DocumentNode) -> PathSummary:
    """Build (or rebuild) and register the summary for ``document``."""
    summary = PathSummary.build(document)
    document.path_summary = summary
    if METRICS.enabled:
        METRICS.inc("pathsummary.builds")
    return summary


def get_summary(document, build: bool = False) -> PathSummary | None:
    """The document's registered summary, rebuilt if stale.

    With ``build=False`` (the evaluator's setting) documents that were
    never ingested — e.g. freshly constructed elements — return None
    and take the unaccelerated path; only ingest-registered documents
    pay the (amortized) rebuild cost after mutations.
    """
    if not isinstance(document, DocumentNode):
        return None
    summary = document.path_summary
    if summary is None:
        return build_summary(document) if build else None
    if summary.is_stale():
        return build_summary(document)
    return summary


def pattern_for(pattern_text: str) -> PathPattern:
    """Parse an XMLPATTERN (memoized upstream) for cardinality lookups."""
    return parse_xmlpattern(pattern_text)


def linear_pattern(steps) -> LinearPattern:
    """Assemble a LinearPattern from pattern steps (evaluator fast path)."""
    return LinearPattern(tuple(steps))
