"""Columnar accelerator-table storage for stored documents.

The paper's premise is that XPath performance lives or dies by the
physical layout of the accelerator table.  A :class:`ColumnStore` is
that table for one document: parallel ``array`` columns holding the
``(pre, post, level, parent, kind, tag-id, text-offset)`` encoding of
every node, built with a single walk at ingest time.  ``pre`` is the
implicit column — slot *i* of every array describes the node with
pre-order number *i* — so structural queries become range arithmetic:

* the descendants of slot ``s`` are exactly slots ``s+1 ..
  subtree_end[s]`` (contiguous, because pre-order lays a subtree out
  as one run);
* ``following`` is everything from ``subtree_end[s]`` to the end of
  the arrays; ``preceding`` is every earlier non-ancestor slot;
* axis steps therefore run as C-level range scans over ``array``
  slices instead of recursive Python object-graph walks.

Two further structures ride on the columns:

* **Path-partitioned clustering** (Arion et al., PAPERS.md): every
  slot carries a ``path_id`` into the document's distinct
  root-to-node paths, and ``partitions[path_id]`` lists the slots of
  that path in document order.  An XMLPATTERN is tested once per
  *distinct path* and then the matching partitions are scanned — the
  layout the XML index builds and path summaries read.
* **A text heap**: text, attribute, comment and PI content lives in
  one shared string addressed by ``(text_lo, text_hi)`` offsets, so
  an evicted document's values survive without any node objects.

Node objects are *views*: :meth:`ColumnStore.materialize` rebuilds the
XDM tree from the columns on demand (after buffer-pool eviction, or on
a replica bootstrapped from shipped columns), restoring the original
``node_id`` of every node from the ``node_ids`` column so node
identity and document-order keys are stable across eviction cycles.
"""

from __future__ import annotations

import base64
from array import array
from typing import Iterator

from ..core.patterns import PathComponent
from ..obs.metrics import METRICS
from ..xdm.nodes import (AttributeNode, CommentNode, DocumentNode,
                         ElementNode, Node, ProcessingInstructionNode,
                         TextNode, reserve_node_ids)
from ..xdm.qname import QName
from .pathsummary import PathSummary, _intern_path

__all__ = ["ColumnStore", "get_store", "ingest_document",
           "store_for_node", "KIND_DOCUMENT", "KIND_ELEMENT",
           "KIND_ATTRIBUTE", "KIND_TEXT", "KIND_COMMENT", "KIND_PI"]

#: Node-kind codes stored in the ``kind`` column (one signed byte).
KIND_DOCUMENT = 0
KIND_ELEMENT = 1
KIND_ATTRIBUTE = 2
KIND_TEXT = 3
KIND_COMMENT = 4
KIND_PI = 5

_KIND_CODES = {
    "document": KIND_DOCUMENT,
    "element": KIND_ELEMENT,
    "attribute": KIND_ATTRIBUTE,
    "text": KIND_TEXT,
    "comment": KIND_COMMENT,
    "processing-instruction": KIND_PI,
}

#: Kinds whose content lives in the text heap.
_HEAP_KINDS = (KIND_ATTRIBUTE, KIND_TEXT, KIND_COMMENT, KIND_PI)

#: Rough per-node cost of a materialized XDM view (object headers,
#: slot storage, child-list entries) used for buffer-pool accounting.
MATERIALIZED_NODE_BYTES = 400


def _component_of(node: Node) -> PathComponent:
    name = node.name
    if name is None:
        return PathComponent(node.kind)
    return PathComponent(node.kind, name.uri, name.local)


def _b64(column: array) -> str:
    return base64.b64encode(column.tobytes()).decode("ascii")


def _unb64(typecode: str, data: str) -> array:
    column = array(typecode)
    column.frombytes(base64.b64decode(data.encode("ascii")))
    return column


class ColumnStore:
    """The accelerator-table columns of one document.

    The arrays are parallel over pre-order slots.  ``nodes`` (slot →
    materialized node view) and ``stamp`` (the backing tree's
    structure stamp) are populated while a materialization is live and
    dropped by :meth:`detach` at eviction; the columns themselves are
    the durable, compact representation.
    """

    __slots__ = ("post", "level", "parent", "kind", "name_id", "ns_id",
                 "path_id", "text_lo", "text_hi", "subtree_end",
                 "node_ids", "text", "names", "nsscopes", "paths",
                 "partitions", "document_uri", "stamp", "nodes")

    def __init__(self):
        self.post = array("q")
        self.level = array("q")
        self.parent = array("q")
        self.kind = array("b")
        self.name_id = array("q")
        self.ns_id = array("q")
        self.path_id = array("q")
        self.text_lo = array("q")
        self.text_hi = array("q")
        self.subtree_end = array("q")
        self.node_ids = array("q")
        #: Shared content heap for text/attribute/comment/PI values.
        self.text = ""
        #: name_id -> QName (None slot for unnamed kinds is never used;
        #: unnamed nodes store -1).
        self.names: list[QName] = []
        #: ns_id -> in-scope namespace bindings of an element.
        self.nsscopes: list[dict[str, str]] = []
        #: path_id -> interned root-to-node path tuple.
        self.paths: list[tuple] = []
        #: path_id -> slots along that path, in document order — the
        #: path-partitioned clustering axis scans and index builds use.
        self.partitions: list[array] = []
        self.document_uri = ""
        self.stamp = None
        self.nodes: list[Node] | None = None

    def __len__(self) -> int:
        return len(self.kind)

    def __repr__(self) -> str:
        state = "attached" if self.nodes is not None else "detached"
        return (f"<ColumnStore {len(self)} slots, "
                f"{len(self.paths)} paths, {state}>")

    # ------------------------------------------------------------------
    # Construction from a live tree
    # ------------------------------------------------------------------

    @classmethod
    def from_document(cls, document: DocumentNode) -> "ColumnStore":
        """Capture ``document``'s columns with one pre-order walk.

        Numbering (``(pre, post, level)``) is taken from the tree's
        existing interval encoding — ``document.structure()`` first
        ensures it is current — so slot *i* is exactly the node with
        pre number *i*.  The walk visits a node, then its attributes,
        then its children, mirroring ``xdm.nodes._number_tree``.
        The store is attached to the document (``document.column_store``)
        and a :class:`PathSummary` derived from the partitions replaces
        any stale summary.
        """
        document.structure()
        store = cls()
        store.document_uri = document.document_uri
        name_ids: dict[tuple[str, str, str], int] = {}
        ns_ids: dict[tuple, int] = {}
        path_ids: dict[tuple, int] = {}
        heap: list[str] = []
        heap_length = 0
        nodes: list[Node] = []
        # (node, parent_slot, path-so-far)
        stack: list[tuple[Node, int, tuple]] = [(document, -1, ())]
        while stack:
            node, parent_slot, path = stack.pop()
            slot = len(nodes)
            nodes.append(node)
            kind_code = _KIND_CODES[node.kind]
            store.kind.append(kind_code)
            store.post.append(node._post)
            store.level.append(node._level)
            store.parent.append(parent_slot)
            store.node_ids.append(node.node_id)

            name = node.name
            if name is None:
                store.name_id.append(-1)
            else:
                key = (name.uri, name.local, name.prefix)
                name_id = name_ids.get(key)
                if name_id is None:
                    name_id = name_ids[key] = len(store.names)
                    store.names.append(name)
                store.name_id.append(name_id)

            if kind_code == KIND_ELEMENT:
                scope = node.in_scope_namespaces
                ns_key = tuple(sorted(scope.items()))
                ns_id = ns_ids.get(ns_key)
                if ns_id is None:
                    ns_id = ns_ids[ns_key] = len(store.nsscopes)
                    store.nsscopes.append(dict(scope))
                store.ns_id.append(ns_id)
            else:
                store.ns_id.append(-1)

            if kind_code in _HEAP_KINDS:
                content = (node.content if kind_code in (
                    KIND_TEXT, KIND_COMMENT, KIND_PI)
                    else node.string_value())
                store.text_lo.append(heap_length)
                heap.append(content)
                heap_length += len(content)
                store.text_hi.append(heap_length)
            else:
                store.text_lo.append(-1)
                store.text_hi.append(-1)

            if kind_code == KIND_DOCUMENT:
                store.path_id.append(-1)
            else:
                interned = _intern_path(path)
                path_id = path_ids.get(interned)
                if path_id is None:
                    path_id = path_ids[interned] = len(store.paths)
                    store.paths.append(interned)
                    store.partitions.append(array("q"))
                store.path_id.append(path_id)
                store.partitions[path_id].append(slot)

            for child in reversed(node.children):
                stack.append(
                    (child, slot, path + (_component_of(child),)))
            for attribute in reversed(node.attributes):
                stack.append(
                    (attribute, slot, path + (_component_of(attribute),)))
        store.text = "".join(heap)
        store._compute_subtree_ends()
        store.nodes = nodes
        store.stamp = document._stamp
        document.column_store = store
        document.path_summary = store.build_summary()
        return store

    def _compute_subtree_ends(self) -> None:
        """``subtree_end[s]`` = one past the last slot of ``s``'s
        subtree — the upper bound of every descendant range scan."""
        count = len(self.kind)
        sizes = [1] * count
        parent = self.parent
        for slot in range(count - 1, 0, -1):
            sizes[parent[slot]] += sizes[slot]
        self.subtree_end = array(
            "q", (slot + sizes[slot] for slot in range(count)))

    # ------------------------------------------------------------------
    # Validity & summaries
    # ------------------------------------------------------------------

    def is_attached(self) -> bool:
        """True while a live, unmutated materialization backs us."""
        return (self.nodes is not None and self.stamp is not None
                and self.stamp.valid)

    def build_summary(self) -> PathSummary:
        """A :class:`PathSummary` over the materialized views, derived
        from the path partitions without another tree walk."""
        assert self.nodes is not None
        nodes = self.nodes
        entries = {path: [nodes[slot] for slot in self.partitions[pid]]
                   for pid, path in enumerate(self.paths)}
        if METRICS.enabled:
            METRICS.inc("pathsummary.builds")
        return PathSummary(entries, self.stamp)

    # ------------------------------------------------------------------
    # Axis range scans
    # ------------------------------------------------------------------

    def descendants_or_self(self, node: Node) -> list[Node]:
        """``descendant-or-self`` as one contiguous range scan.

        Attribute slots (numbered between their element and its
        children) are filtered out, matching the axis definition."""
        assert self.nodes is not None
        slot = node._order[1]
        end = self.subtree_end[slot]
        nodes = self.nodes
        kind = self.kind
        return [nodes[s] for s in range(slot, end)
                if kind[s] != KIND_ATTRIBUTE]

    def following(self, node: Node) -> list[Node]:
        """Every node after ``node``'s subtree: slots from
        ``subtree_end`` to the end of the columns, minus attributes."""
        assert self.nodes is not None
        start = self.subtree_end[node._order[1]]
        nodes = self.nodes
        kind = self.kind
        return [nodes[s] for s in range(start, len(kind))
                if kind[s] != KIND_ATTRIBUTE]

    def preceding(self, node: Node) -> list[Node]:
        """Earlier non-ancestor slots, in document order.

        Ancestors have a larger ``post`` (they finish after us), so a
        single ``post`` comparison excludes them from the prefix scan.
        """
        assert self.nodes is not None
        slot = node._order[1]
        post_bound = self.post[slot]
        nodes = self.nodes
        kind = self.kind
        post = self.post
        return [nodes[s] for s in range(slot)
                if kind[s] != KIND_ATTRIBUTE and post[s] < post_bound]

    def nodes_matching(self, matcher) -> Iterator[tuple[Node, tuple]]:
        """(node, path) pairs whose path matches — one pattern test per
        distinct path, then a clustered partition scan per hit."""
        assert self.nodes is not None
        nodes = self.nodes
        for path_id, path in enumerate(self.paths):
            if matcher.matches(path):
                for slot in self.partitions[path_id]:
                    yield nodes[slot], path

    def text_of(self, slot: int) -> str:
        """String value of a slot straight from the columns.

        Heap-backed kinds read their offsets; elements and the
        document concatenate the text-node slots of their descendant
        range — no node views required."""
        lo = self.text_lo[slot]
        if lo >= 0:
            return self.text[lo:self.text_hi[slot]]
        parts: list[str] = []
        kind = self.kind
        text_lo = self.text_lo
        text_hi = self.text_hi
        for s in range(slot + 1, self.subtree_end[slot]):
            if kind[s] == KIND_TEXT:
                parts.append(self.text[text_lo[s]:text_hi[s]])
        return "".join(parts)

    # ------------------------------------------------------------------
    # Materialization (columns -> XDM views)
    # ------------------------------------------------------------------

    def materialize(self, schema=None) -> DocumentNode:
        """Rebuild the XDM tree from the columns.

        Node views are created in pre order and linked through the
        ``parent`` column; every view's ``node_id`` is restored from
        the ``node_ids`` column so identity and document-order keys
        survive eviction/rematerialization cycles.  ``schema`` (a
        registered validation schema) is re-applied afterwards so
        schema-typed values are identical to the original ingest.
        """
        count = len(self.kind)
        nodes: list[Node] = []
        text = self.text
        for slot in range(count):
            kind_code = self.kind[slot]
            if kind_code == KIND_DOCUMENT:
                node: Node = DocumentNode(document_uri=self.document_uri)
            elif kind_code == KIND_ELEMENT:
                node = ElementNode(
                    self.names[self.name_id[slot]],
                    in_scope_namespaces=self.nsscopes[self.ns_id[slot]])
            elif kind_code == KIND_ATTRIBUTE:
                node = AttributeNode(
                    self.names[self.name_id[slot]],
                    text[self.text_lo[slot]:self.text_hi[slot]])
            elif kind_code == KIND_TEXT:
                node = TextNode(text[self.text_lo[slot]:self.text_hi[slot]])
            elif kind_code == KIND_COMMENT:
                node = CommentNode(
                    text[self.text_lo[slot]:self.text_hi[slot]])
            else:
                node = ProcessingInstructionNode(
                    self.names[self.name_id[slot]].local,
                    text[self.text_lo[slot]:self.text_hi[slot]])
            node.node_id = self.node_ids[slot]
            parent_slot = self.parent[slot]
            if parent_slot >= 0:
                parent = nodes[parent_slot]
                node.parent = parent
                if kind_code == KIND_ATTRIBUTE:
                    parent._attributes.append(node)
                else:
                    parent._children.append(node)
            nodes.append(node)
        document = nodes[0]
        assert isinstance(document, DocumentNode)
        document.structure()
        self.nodes = nodes
        self.stamp = document._stamp
        document.column_store = self
        document.path_summary = self.build_summary()
        if schema is not None:
            from ..schema.validator import validate
            validate(document, schema)
        if METRICS.enabled:
            METRICS.inc("columnar.materializations")
        return document

    def detach(self) -> None:
        """Drop the materialized views (buffer-pool eviction): only the
        compact columns remain resident."""
        self.nodes = None
        self.stamp = None

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Approximate resident size of the columns + text heap."""
        columns = (self.post, self.level, self.parent, self.kind,
                   self.name_id, self.ns_id, self.path_id, self.text_lo,
                   self.text_hi, self.subtree_end, self.node_ids)
        total = sum(column.itemsize * len(column) for column in columns)
        total += sum(partition.itemsize * len(partition)
                     for partition in self.partitions)
        total += len(self.text)
        return total

    def materialized_nbytes(self) -> int:
        """Estimated extra bytes a live materialization costs."""
        return len(self.kind) * MATERIALIZED_NODE_BYTES + len(self.text)

    # ------------------------------------------------------------------
    # Payload (spill files and replica shipping)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-safe encoding of the columns.

        ``subtree_end`` and the partitions are derived columns and are
        recomputed on load instead of shipped."""
        return {
            "uri": self.document_uri,
            "post": _b64(self.post),
            "level": _b64(self.level),
            "parent": _b64(self.parent),
            "kind": _b64(self.kind),
            "name_id": _b64(self.name_id),
            "ns_id": _b64(self.ns_id),
            "path_id": _b64(self.path_id),
            "text_lo": _b64(self.text_lo),
            "text_hi": _b64(self.text_hi),
            "node_ids": _b64(self.node_ids),
            "text": self.text,
            "names": [[name.uri, name.local, name.prefix]
                      for name in self.names],
            "nsscopes": [sorted(scope.items())
                         for scope in self.nsscopes],
            "paths": [[[component.kind, component.uri, component.local]
                       for component in path] for path in self.paths],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnStore":
        store = cls()
        store.document_uri = payload["uri"]
        store.post = _unb64("q", payload["post"])
        store.level = _unb64("q", payload["level"])
        store.parent = _unb64("q", payload["parent"])
        store.kind = _unb64("b", payload["kind"])
        store.name_id = _unb64("q", payload["name_id"])
        store.ns_id = _unb64("q", payload["ns_id"])
        store.path_id = _unb64("q", payload["path_id"])
        store.text_lo = _unb64("q", payload["text_lo"])
        store.text_hi = _unb64("q", payload["text_hi"])
        store.node_ids = _unb64("q", payload["node_ids"])
        store.text = payload["text"]
        store.names = [QName(uri, local, prefix)
                       for uri, local, prefix in payload["names"]]
        store.nsscopes = [dict((prefix, uri) for prefix, uri in scope)
                          for scope in payload["nsscopes"]]
        store.paths = [
            _intern_path(tuple(PathComponent(kind, uri, local)
                               for kind, uri, local in path))
            for path in payload["paths"]]
        store.partitions = [array("q") for _ in store.paths]
        for slot, path_id in enumerate(store.path_id):
            if path_id >= 0:
                store.partitions[path_id].append(slot)
        store._compute_subtree_ends()
        if len(store.node_ids):
            # Payloads may come from another process (replica shipping):
            # keep locally minted ids disjoint from the restored ones.
            reserve_node_ids(max(store.node_ids))
        return store


# ---------------------------------------------------------------------------
# Lookup / ingest helpers
# ---------------------------------------------------------------------------


def get_store(document) -> ColumnStore | None:
    """The document's attached column store, if it is still current.

    Returns None for non-document roots, never-ingested documents, and
    documents mutated since the store was built (the structure stamp
    no longer matches) — callers then fall back to object-graph paths.
    """
    if not isinstance(document, DocumentNode):
        return None
    store = document.column_store
    if (store is not None and store.nodes is not None
            and store.stamp is not None
            and store.stamp is document._stamp and store.stamp.valid):
        return store
    return None


def store_for_node(node: Node) -> ColumnStore | None:
    """The current column store covering ``node``, if any.

    The axis fast paths use this from arbitrary tree positions: the
    node must carry a valid structure stamp that is *the same object*
    as its root document's attached store — guaranteeing the node's
    cached ``pre`` number is a live slot index into the columns.
    """
    stamp = node._stamp
    if stamp is None or not stamp.valid:
        return None
    root = node
    while root.parent is not None:
        root = root.parent
    if not isinstance(root, DocumentNode):
        return None
    store = root.column_store
    if (store is not None and store.nodes is not None
            and store.stamp is stamp):
        return store
    return None


def ingest_document(document: DocumentNode) -> ColumnStore:
    """Attach (or reuse) the column store for an ingested document.

    A document arriving with a current store — e.g. materialized from
    replica-shipped columns — is reused as-is; otherwise one capture
    walk builds columns, partitions, and the path summary together.
    """
    store = get_store(document)
    if store is not None:
        if document.path_summary is None:
            document.path_summary = store.build_summary()
        return store
    return ColumnStore.from_document(document)
