"""Buffer pool: keep the working set, not the database, in memory.

Every ingested document costs two kinds of memory: its compact
:class:`~repro.storage.columnar.ColumnStore` (a handful of ``array``
columns plus one text heap) and — roughly an order of magnitude larger
— the materialized XDM object tree queries navigate.  The pool tracks
both against one configurable byte budget and evicts least-recently
used documents when the budget is exceeded:

* **Tier 1 (always):** eviction drops the materialized tree; the
  columns stay resident and the next access re-materializes from them
  (same ``node_id`` for every node, so index postings and
  document-order keys survive).
* **Tier 2 (spill directory set):** eviction also writes the column
  payload to ``<spill_dir>/doc-<id>.cols`` through the durability
  layer's :mod:`~repro.durability.fsio` helpers and drops the columns;
  the next access reads them back.  Spill files are pure cache — the
  authoritative copy is the checkpoint + WAL — so they are written
  without fsync and never read unless this pool wrote them first.

A document mutated since its columns were captured is re-captured
before its tree is dropped, so eviction never loses updates.

Budget ``None`` disables the pool entirely: documents are never
registered and every access is a plain attribute read, preserving the
un-pooled engine's performance exactly.

Observability (``bufferpool.*`` in :mod:`repro.obs.metrics`):
``hits`` (accesses finding a live tree), ``misses`` (accesses that had
to re-materialize), ``evictions``, ``spills`` / ``loads`` /
``spill_deletes`` (tier-2 writes / reads / removals), and the
``resident_bytes`` gauge.  Spill files are deleted when their document
is discarded (row deleted, table dropped) and when the pool is closed
— an orphaned spill file both leaks disk and, because doc_ids restart
with every process, could alias a future document.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict

from ..obs.metrics import METRICS
from .columnar import ColumnStore

__all__ = ["BufferPool"]


class BufferPool:
    """LRU cache of materialized documents under one byte budget.

    Thread-safe and a leaf in the lock order: every method takes only
    the pool's own lock and calls nothing that acquires the database
    RWLock, so it may be entered from either side of that lock.
    """

    def __init__(self, budget_bytes: int | None = None,
                 spill_dir=None):
        self.budget_bytes = budget_bytes
        self.spill_dir = spill_dir
        self._lock = threading.Lock()
        #: doc_id -> StoredDocument, least-recently used first.
        self._lru: "OrderedDict[int, object]" = OrderedDict()
        self._charged: dict[int, int] = {}
        #: doc_ids with a spill file on disk.  Spill files are pure
        #: cache, but they must be *deleted* when their document leaves
        #: the pool: doc_ids are process-local counters, so an orphan
        #: from a dead document can collide with a future document's id
        #: and be read back as its (stale) columns — besides leaking
        #: disk for every deleted row.
        self._spilled: set[int] = set()
        self.resident_bytes = 0
        self._spill_ready = False

    @property
    def enabled(self) -> bool:
        return self.budget_bytes is not None

    def __repr__(self) -> str:
        return (f"<BufferPool budget={self.budget_bytes} "
                f"resident={self.resident_bytes} "
                f"docs={len(self._lru)}>")

    # ------------------------------------------------------------------
    # Registration & access (called from StoredDocument)
    # ------------------------------------------------------------------

    def admit(self, stored) -> None:
        """Register a freshly ingested document (tree + columns live)."""
        if not self.enabled:
            return
        with self._lock:
            self._charge(stored)
            self._evict_to_fit(keep=stored)
            self._publish_gauge()

    def discard(self, stored) -> None:
        """Forget a deleted document (its rows left the table): drop
        its pool entry *and* its spill file, if one was written."""
        if not self.enabled:
            return
        with self._lock:
            self._lru.pop(stored.doc_id, None)
            self.resident_bytes -= self._charged.pop(stored.doc_id, 0)
            self._remove_spill(stored.doc_id)
            self._publish_gauge()

    def close(self) -> None:
        """Discard the pool's on-disk cache: every spill file this
        pool wrote is removed.  The database owning the pool calls
        this on shutdown; spill files never outlive their pool
        (doc_ids restart per process, so a survivor could alias a
        future document)."""
        if not self.enabled:
            return
        with self._lock:
            for doc_id in list(self._spilled):
                self._remove_spill(doc_id)

    def release(self, stored) -> None:
        """A bulk scan (index build) is done with this document.

        Scan-resistance for index builds: a build touches every
        document exactly once, so letting each one ride the LRU both
        blows past the budget transiently (the previous scan document
        is still charged when the next one loads) and evicts the whole
        pre-build working set.  Builders call this after finishing a
        document; when the pool is over budget the *scanned* document
        is evicted immediately instead of a colder — but hotter in
        truth — working-set entry."""
        if not self.enabled:
            return
        with self._lock:
            if (self.resident_bytes > self.budget_bytes
                    and self._charged.get(stored.doc_id, 0) > 0):
                self._evict(stored)
                self._publish_gauge()

    def touch(self, stored) -> None:
        """An access found the materialized tree live: LRU bump + hit."""
        if not self.enabled:
            return
        with self._lock:
            if stored.doc_id in self._lru:
                self._lru.move_to_end(stored.doc_id)
                if METRICS.enabled:
                    METRICS.inc("bufferpool.hits")

    def load(self, stored):
        """Bring an evicted document back: re-materialize (reading the
        spill file first when the columns themselves were dropped),
        then evict colder documents to stay within budget."""
        with self._lock:
            document = stored._document
            if document is not None:
                # Another thread re-materialized while we waited.
                self._lru.move_to_end(stored.doc_id)
                if METRICS.enabled:
                    METRICS.inc("bufferpool.hits")
                return document
            if METRICS.enabled:
                METRICS.inc("bufferpool.misses")
            store = stored._store
            if store is None:
                store = self._read_spill(stored.doc_id)
                stored._store = store
            document = store.materialize(stored._schema)
            stored._document = document
            self._charge(stored)
            self._evict_to_fit(keep=stored)
            self._publish_gauge()
            return document

    # ------------------------------------------------------------------
    # Eviction (lock held)
    # ------------------------------------------------------------------

    def _charge(self, stored) -> None:
        cost = self._cost_of(stored)
        self.resident_bytes += cost - self._charged.get(stored.doc_id, 0)
        self._charged[stored.doc_id] = cost
        self._lru[stored.doc_id] = stored
        self._lru.move_to_end(stored.doc_id)

    @staticmethod
    def _cost_of(stored) -> int:
        store = stored._store
        if store is None:
            return 0
        cost = store.nbytes()
        if stored._document is not None:
            cost += store.materialized_nbytes()
        return cost

    def _evict_to_fit(self, keep) -> None:
        assert self.budget_bytes is not None
        while self.resident_bytes > self.budget_bytes:
            victim = None
            for doc_id in self._lru:
                if doc_id != keep.doc_id:
                    candidate = self._lru[doc_id]
                    if self._charged.get(doc_id, 0) > 0:
                        victim = candidate
                        break
            if victim is None:
                return
            self._evict(victim)

    def _evict(self, stored) -> None:
        store = stored._store
        document = stored._document
        if document is not None and store is not None:
            if not (store.stamp is document._stamp
                    and store.stamp is not None and store.stamp.valid):
                # Mutated since capture: re-snapshot the columns so the
                # updated content survives the tree drop.
                store = ColumnStore.from_document(document)
                stored._store = store
            store.detach()
            stored._document = None
        if self.spill_dir is not None and store is not None:
            self._write_spill(stored.doc_id, store)
            stored._store = None
        if METRICS.enabled:
            METRICS.inc("bufferpool.evictions")
        self.resident_bytes -= self._charged.get(stored.doc_id, 0)
        self._charged[stored.doc_id] = 0
        self._lru.move_to_end(stored.doc_id, last=False)

    def _publish_gauge(self) -> None:
        if METRICS.enabled:
            METRICS.set_gauge("bufferpool.resident_bytes",
                              self.resident_bytes)

    # ------------------------------------------------------------------
    # Tier-2 spill files
    # ------------------------------------------------------------------
    # fsio is imported lazily: the storage layer must stay importable
    # without dragging in durability, and only tier-2 pools touch disk.

    def _spill_path(self, doc_id: int) -> str:
        import os
        return os.path.join(os.fspath(self.spill_dir),
                            f"doc-{doc_id}.cols")

    def _write_spill(self, doc_id: int, store: ColumnStore) -> None:
        from ..durability import fsio
        if not self._spill_ready:
            fsio.ensure_dir(self.spill_dir)
            self._spill_ready = True
        payload = json.dumps(store.to_payload(),
                             separators=(",", ":")).encode("utf-8")
        fsio.write_bytes(self._spill_path(doc_id), payload)
        self._spilled.add(doc_id)
        if METRICS.enabled:
            METRICS.inc("bufferpool.spills")

    def _remove_spill(self, doc_id: int) -> None:
        """Delete one spill file (lock held; no-op when never spilled)."""
        if doc_id not in self._spilled:
            return
        import os
        self._spilled.discard(doc_id)
        try:
            os.remove(self._spill_path(doc_id))
        except FileNotFoundError:
            pass
        if METRICS.enabled:
            METRICS.inc("bufferpool.spill_deletes")

    def _read_spill(self, doc_id: int) -> ColumnStore:
        from ..durability import fsio
        payload = json.loads(
            fsio.read_bytes(self._spill_path(doc_id)).decode("utf-8"))
        if METRICS.enabled:
            METRICS.inc("bufferpool.loads")
        return ColumnStore.from_payload(payload)
