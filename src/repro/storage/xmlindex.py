"""Typed, tolerant XML value indexes (paper §2.1).

An XML index is declared with ``CREATE INDEX name ON table(xml-column)
USING XMLPATTERN 'pattern' AS type`` where type is one of ``VARCHAR``,
``DOUBLE``, ``DATE``, ``TIMESTAMP``.  Exactly as the paper describes:

* an entry is created for each node matching the pattern **and**
  convertible to the index type; a failed cast silently skips the node
  ("tolerant" behaviour — the U.S./Canadian postal-code scenario);
* a VARCHAR index therefore contains *all* matching nodes, since any
  node value casts to a string — which is why varchar indexes can
  answer purely structural predicates with a full-range scan;
* list-typed values are rejected at insert time (footnote 5: "our
  index implementation prohibits the list types from occurring in the
  indexed documents");
* each entry also records the node's concrete root-to-node path so a
  scan can apply the query's *more restrictive* path as a residual
  filter (§2.2: the index on ``//lineitem/@price`` answering a
  ``//order/lineitem/@price`` predicate).

Concurrency contract: the underlying B+Trees are mutated in place (no
copy-on-write), so index maintenance runs only on the write side of the
database's reader-writer lock, and scans are safe exactly because every
query entry point holds the read side for its full duration — a
:class:`~repro.storage.snapshot.Snapshot` pins rows and catalog but
*not* index interiors, and must only be queried while its creator keeps
writers excluded (see the partition-parallel executor).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator

from ..core.patterns import PathComponent, PathPattern, parse_xmlpattern
from ..errors import CastError, SchemaValidationError
from ..obs.metrics import METRICS
from ..xdm.atomic import (AtomicValue, T_DATE, T_DATETIME, T_DOUBLE,
                          T_STRING, cast)
from ..xdm.nodes import DocumentNode, Node
from .btree import BPlusTree
from .columnar import get_store
from .pathsummary import (PatternMatcher, get_summary,
                          indexable_nodes as _indexable_nodes)

#: SQL index type keyword -> xdm atomic type used for key casting.
INDEX_TYPE_TO_XDM = {
    "VARCHAR": T_STRING,
    "DOUBLE": T_DOUBLE,
    "DATE": T_DATE,
    "TIMESTAMP": T_DATETIME,
}


@dataclass(frozen=True)
class IndexEntry:
    """One posting: which document, which node, along which path."""

    doc_id: int
    node_id: int
    path: tuple[PathComponent, ...]


class XmlIndex:
    """A path-specific typed value index over one XML column."""

    def __init__(self, name: str, table: str, column: str,
                 pattern_text: str, index_type: str, order: int = 64):
        index_type = index_type.upper()
        if index_type not in INDEX_TYPE_TO_XDM:
            raise SchemaValidationError(
                f"unsupported XML index type {index_type!r}")
        self.name = name
        self.table = table
        self.column = column
        #: The original XMLPATTERN text — the checkpoint records it so
        #: recovery can replay the defining DDL instead of serializing
        #: B+Tree pages.
        self.pattern_text = pattern_text
        self.pattern: PathPattern = parse_xmlpattern(pattern_text)
        #: Long-lived matcher: one NFA run per distinct path shape over
        #: the whole life of the index, id-keyed hits afterwards.
        self._pattern_matcher = PatternMatcher(self.pattern)
        self.index_type = index_type
        self.xdm_type = INDEX_TYPE_TO_XDM[index_type]
        self.tree = BPlusTree(order=order)
        #: Entries skipped by tolerant casting (observability for tests).
        self.skipped_nodes = 0
        #: doc_id -> number of entries, for cost estimation.
        self._doc_entry_counts: dict[int, int] = {}

    def __repr__(self) -> str:
        return (f"<XmlIndex {self.name} ON {self.table}({self.column}) "
                f"USING XMLPATTERN '{self.pattern}' AS {self.index_type}>")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def index_document(self, doc_id: int, document: DocumentNode) -> None:
        for node, components in self._matching_nodes(document):
            key = self._key_for(node)
            if key is None:
                self.skipped_nodes += 1
                continue
            self.tree.insert(key, IndexEntry(doc_id, node.node_id,
                                             tuple(components)))
            self._doc_entry_counts[doc_id] = \
                self._doc_entry_counts.get(doc_id, 0) + 1

    def remove_document(self, doc_id: int, document: DocumentNode) -> None:
        for node, components in self._matching_nodes(document):
            key = self._key_for(node)
            if key is None:
                continue
            if self.tree.delete(key, IndexEntry(doc_id, node.node_id,
                                                tuple(components))):
                remaining = self._doc_entry_counts.get(doc_id, 0) - 1
                if remaining > 0:
                    self._doc_entry_counts[doc_id] = remaining
                else:
                    self._doc_entry_counts.pop(doc_id, None)

    def _matching_nodes(self, document: DocumentNode):
        """(node, path) pairs of the document matching this index's
        pattern — preferably as a clustered range scan over the
        document's columnar store (the pattern is tested once per
        *distinct* path, then only the matching path partitions are
        scanned), via the path summary when only that exists, falling
        back to a full object walk otherwise."""
        store = get_store(document)
        if store is not None:
            return store.nodes_matching(self._pattern_matcher)
        summary = get_summary(document, build=True)
        if summary is not None:
            return summary.nodes_matching(self._pattern_matcher)
        return ((node, components) for node, components
                in _indexable_nodes(document)
                if self.pattern.matches_path(components))

    def distinct_doc_count(self) -> int:
        """Number of documents with at least one entry in this index."""
        return len(self._doc_entry_counts)

    def _key_for(self, node: Node):
        """Cast a node's value to the index key space; None = skip."""
        values = node.typed_value()
        if len(values) > 1:
            # List types are prohibited in indexed documents (§3.10 fn 5).
            raise SchemaValidationError(
                f"list-typed node {node!r} cannot be indexed by "
                f"{self.name}")
        if not values:
            return None
        try:
            return atomic_to_key(cast(values[0], self.xdm_type))
        except CastError:
            return None

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def scan(self, low=None, high=None, low_inclusive: bool = True,
             high_inclusive: bool = True,
             path_filter: PathPattern | None = None
             ) -> Iterator[IndexEntry]:
        """Range scan; optionally post-filter entries by a (more
        restrictive) query path pattern."""
        for _key, entry in self.tree.scan(low, high, low_inclusive,
                                          high_inclusive):
            if path_filter is not None and \
                    not path_filter.matches_path(list(entry.path)):
                continue
            yield entry

    def matching_documents(self, low=None, high=None,
                           low_inclusive: bool = True,
                           high_inclusive: bool = True,
                           path_filter: PathPattern | None = None,
                           stats=None) -> set[int]:
        """Document ids with at least one entry in the range — the
        I(P, D) pre-filter of Definition 1."""
        docs: set[int] = set()
        scanned = 0
        for entry in self.scan(low, high, low_inclusive, high_inclusive,
                               path_filter):
            scanned += 1
            docs.add(entry.doc_id)
        if stats is not None:
            stats.index_entries_scanned += scanned
            stats.record_index_use(self.name)
        if METRICS.enabled:
            METRICS.inc("index.probes")
            METRICS.inc("index.entries_scanned", scanned)
        return docs

    def key_for_value(self, value: AtomicValue):
        """Cast a query-side comparison value into this index's key
        space (raises CastError if incompatible)."""
        return atomic_to_key(cast(value, self.xdm_type))

    def __len__(self) -> int:
        return len(self.tree)


def atomic_to_key(value: AtomicValue):
    """Map an atomic value onto a B+Tree key.

    Timestamps are normalized to naive UTC so that aware and naive
    values never raise on comparison inside the tree.
    """
    if value.type_name == T_DATETIME:
        stamp: _dt.datetime = value.value
        if stamp.tzinfo is not None:
            stamp = stamp.astimezone(_dt.timezone.utc).replace(tzinfo=None)
        return stamp
    return value.value
