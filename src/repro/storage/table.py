"""Relational tables with native XML-typed columns."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import CatalogError, SQLError
from ..sql.values import SQLType, coerce_to_type
from ..xdm.nodes import DocumentNode

_DOC_IDS = itertools.count(1)
_ROW_IDS = itertools.count(1)


class StoredDocument:
    """An XML document stored in an XML column.

    ``doc_id`` is the unit of index postings and of Definition 1's
    pre-filtering: probing an index yields a set of doc_ids.

    The XDM tree behind :attr:`document` is a *view* over the
    document's columnar store (see :mod:`repro.storage.columnar`).
    When the database runs with a buffer pool, a cold document's tree
    (and, with a spill directory, its columns) may have been evicted;
    the property transparently re-materializes it — with identical
    node ids — so callers never observe the difference beyond latency.
    """

    __slots__ = ("doc_id", "schema_name", "_document", "_store",
                 "_schema", "_pool")

    def __init__(self, doc_id: int, document: DocumentNode,
                 schema_name: str | None = None):
        self.doc_id = doc_id
        self.schema_name = schema_name
        self._document: DocumentNode | None = document
        #: Columnar store backing the document (set at catalog ingest).
        self._store = None
        #: Registered validation Schema, re-applied on re-materialize.
        self._schema = None
        #: Owning BufferPool, or None when the database is un-pooled.
        self._pool = None

    @property
    def document(self) -> DocumentNode:
        document = self._document
        pool = self._pool
        if document is not None:
            if pool is not None:
                pool.touch(self)
            return document
        return pool.load(self)

    def __repr__(self) -> str:
        state = "resident" if self._document is not None else "evicted"
        return f"<StoredDocument #{self.doc_id} {state}>"


@dataclass
class Row:
    row_id: int
    values: dict[str, object] = field(default_factory=dict)


class Table:
    """A heap table: ordered rows, typed columns, XML columns allowed.

    ``rows`` is copy-on-write: mutators replace the list instead of
    mutating it in place, so a snapshot that captured the old reference
    keeps a frozen, fully consistent row set (see
    :mod:`repro.storage.snapshot`)."""

    def __init__(self, name: str, columns: list[tuple[str, str]]):
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        self.name = name.lower()
        self.columns: dict[str, SQLType] = {}
        for column_name, type_text in columns:
            key = column_name.lower()
            if key in self.columns:
                raise CatalogError(
                    f"duplicate column {column_name!r} in {name!r}")
            self.columns[key] = SQLType.parse(type_text)
        self.rows: list[Row] = []

    def column_type(self, column: str) -> SQLType:
        try:
            return self.columns[column.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {column!r} in table {self.name!r}") from None

    def xml_columns(self) -> list[str]:
        return [name for name, sql_type in self.columns.items()
                if sql_type.is_xml]

    def new_row(self, values: dict[str, object]) -> Row:
        row = Row(next(_ROW_IDS))
        for column_name, value in values.items():
            key = column_name.lower()
            sql_type = self.column_type(key)
            if sql_type.is_xml:
                if value is not None and \
                        not isinstance(value, StoredDocument):
                    raise SQLError(
                        f"column {key} expects a stored XML document")
                row.values[key] = value
            else:
                row.values[key] = coerce_to_type(value, sql_type)
        for column_name in self.columns:
            row.values.setdefault(column_name, None)
        self.rows = self.rows + [row]
        return row

    def remove_row(self, row: Row) -> None:
        if row not in self.rows:
            raise ValueError(f"row {row.row_id} not in table {self.name}")
        self.rows = [kept for kept in self.rows if kept is not row]

    def __len__(self) -> int:
        return len(self.rows)


def next_doc_id() -> int:
    return next(_DOC_IDS)
